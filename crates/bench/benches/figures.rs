//! One Criterion bench per table/figure of the paper, at reduced scale
//! (1 simulated second, 1 seed) so `cargo bench` exercises every
//! experiment's full code path. The full-scale numbers come from the
//! `fig*` binaries (`cargo run --release -p airguard-bench --bin fig4`
//! etc.) and are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};

use airguard_mac::Selfish;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn quick(sc: StandardScenario, proto: Protocol, pm: f64) -> ScenarioConfig {
    ScenarioConfig::new(sc)
        .protocol(proto)
        .misbehavior_percent(pm)
        .sim_time_secs(1)
}

fn bench_intro_claim(c: &mut Criterion) {
    c.bench_function("intro_claim/quarter_window_802.11", |b| {
        b.iter(|| {
            ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Dot11)
                .strategy(Selfish::QuarterWindow)
                .sim_time_secs(1)
                .seed(1)
                .run()
        });
    });
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_diagnosis_accuracy");
    g.sample_size(10);
    g.bench_function("zero_flow_pm50", |b| {
        b.iter(|| {
            quick(StandardScenario::ZeroFlow, Protocol::Correct, 50.0)
                .seed(1)
                .run()
        });
    });
    g.bench_function("two_flow_pm50", |b| {
        b.iter(|| {
            quick(StandardScenario::TwoFlow, Protocol::Correct, 50.0)
                .seed(1)
                .run()
        });
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_throughput_vs_pm");
    g.sample_size(10);
    g.bench_function("dot11_pm80", |b| {
        b.iter(|| {
            quick(StandardScenario::ZeroFlow, Protocol::Dot11, 80.0)
                .seed(1)
                .run()
        });
    });
    g.bench_function("correct_pm80", |b| {
        b.iter(|| {
            quick(StandardScenario::ZeroFlow, Protocol::Correct, 80.0)
                .seed(1)
                .run()
        });
    });
    g.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7_network_size");
    g.sample_size(10);
    for n in [1usize, 8, 32] {
        g.bench_function(format!("zero_flow_n{n}"), |b| {
            b.iter(|| {
                let r = quick(StandardScenario::ZeroFlow, Protocol::Correct, 0.0)
                    .n_senders(n)
                    .seed(1)
                    .run();
                (r.avg_throughput_bps(), r.fairness_index())
            });
        });
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_responsiveness");
    g.sample_size(10);
    g.bench_function("two_flow_pm80_series", |b| {
        b.iter(|| {
            let r = quick(StandardScenario::TwoFlow, Protocol::Correct, 80.0)
                .seed(1)
                .run();
            r.series
                .bins()
                .iter()
                .map(airguard_metrics::series::Bin::percent)
                .sum::<f64>()
        });
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_random_topology");
    g.sample_size(10);
    g.bench_function("correct_pm50", |b| {
        b.iter(|| {
            quick(StandardScenario::Random, Protocol::Correct, 50.0)
                .seed(1)
                .run()
        });
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_intro_claim,
    bench_fig4,
    bench_fig5,
    bench_fig6_fig7,
    bench_fig8,
    bench_fig9
);
criterion_main!(figures);
