//! Micro-benchmarks of the simulator's hot paths: event queue churn,
//! per-listener channel sampling, reception tracking, the deterministic
//! retry function, monitor bookkeeping, and whole-simulation event rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use airguard_core::retry_fn;
use airguard_mac::MacTiming;
use airguard_phy::{Medium, PhyConfig, Position};
use airguard_sim::{MasterSeed, NodeId, Scheduler, SimDuration};

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            for i in 0..10_000u64 {
                s.schedule_at(airguard_sim::SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = s.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        });
    });
    g.bench_function("schedule_cancel_10k", |b| {
        b.iter(|| {
            let mut s = Scheduler::new();
            let ids: Vec<_> = (0..10_000u64)
                .map(|i| s.schedule_in(SimDuration::from_micros(i + 1), i))
                .collect();
            for id in ids {
                s.cancel(id);
            }
            s.len()
        });
    });
    g.finish();
}

fn bench_medium(c: &mut Criterion) {
    let mut g = c.benchmark_group("medium");
    // 64 listeners scattered across sense range.
    let positions: Vec<Position> = (0..65)
        .map(|i| Position::new(f64::from(i) * 12.0, 0.0))
        .collect();
    let mut medium = Medium::new(
        PhyConfig::paper_default(),
        positions,
        MasterSeed::new(1).stream("bench", 0),
    );
    g.throughput(Throughput::Elements(64));
    g.bench_function("start_tx_64_listeners", |b| {
        b.iter(|| medium.start_tx(NodeId::new(0)).listeners.len());
    });
    g.finish();
}

fn bench_retry_fn(c: &mut Criterion) {
    let timing = MacTiming::dsss_2mbps();
    c.bench_function("retry_fn/expected_total_attempt7", |b| {
        b.iter(|| retry_fn::expected_total_backoff(17, NodeId::new(5), 7, &timing));
    });
}

fn bench_full_sim(c: &mut Criterion) {
    use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
    let mut g = c.benchmark_group("full_sim");
    g.sample_size(10);
    // ~45k scheduler events per simulated second in this configuration.
    g.bench_function("two_flow_correct_1s", |b| {
        b.iter(|| {
            ScenarioConfig::new(StandardScenario::TwoFlow)
                .protocol(Protocol::Correct)
                .misbehavior_percent(50.0)
                .sim_time_secs(1)
                .seed(1)
                .run()
                .events
        });
    });
    g.finish();
}

criterion_group!(
    kernel,
    bench_scheduler,
    bench_medium,
    bench_retry_fn,
    bench_full_sim
);
criterion_main!(kernel);
