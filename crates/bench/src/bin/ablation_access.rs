//! Thin wrapper: `ablation_access` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_access`
//! (same flags as `airguard-bench`, figure fixed to `ablation_access`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("ablation_access"));
}
