//! Ablation (footnote 2): the scheme without the RTS/CTS handshake.
//! Basic access carries the attempt number in DATA; detection and
//! correction must survive, and raw capacity improves.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_access`

use airguard_bench::{f2, kbps, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_mac::AccessMode;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Ablation: RTS/CTS vs basic access (ZERO-FLOW)",
        &[
            "access", "PM%", "correct%", "misdiag%", "MSB Kbps", "AVG Kbps",
        ],
    );
    for (name, access) in [
        ("rts-cts", AccessMode::RtsCts),
        ("basic", AccessMode::Basic),
    ] {
        for pm in [0.0, 50.0, 80.0] {
            let reports = run_seeds(
                &ScenarioConfig::new(StandardScenario::ZeroFlow)
                    .protocol(Protocol::Correct)
                    .access(access)
                    .misbehavior_percent(pm)
                    .sim_time_secs(secs),
                &seeds,
            );
            t.row(&[
                name.into(),
                format!("{pm:.0}"),
                f2(mean_of(&reports, |r| {
                    r.diagnosis().correct_diagnosis_percent()
                })),
                f2(mean_of(&reports, |r| r.diagnosis().misdiagnosis_percent())),
                kbps(mean_of(
                    &reports,
                    airguard_net::RunReport::msb_throughput_bps,
                )),
                kbps(mean_of(
                    &reports,
                    airguard_net::RunReport::avg_throughput_bps,
                )),
            ]);
        }
    }
    t.print();
    t.write_csv("ablation_access");
}
