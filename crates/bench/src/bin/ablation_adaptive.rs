//! Thin wrapper: `ablation_adaptive` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_adaptive`
//! (same flags as `airguard-bench`, figure fixed to `ablation_adaptive`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("ablation_adaptive"));
}
