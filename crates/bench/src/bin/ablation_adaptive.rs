//! Ablation (§6 future work): adaptive THRESH selection. The monitor
//! scales its threshold with the observed channel noise of unflagged
//! senders — cutting TWO-FLOW misdiagnosis while keeping detection.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_adaptive`

use airguard_bench::{f2, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_core::monitor::AdaptiveConfig;
use airguard_core::CorrectConfig;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Ablation: static vs adaptive THRESH (TWO-FLOW)",
        &["variant", "PM%", "correct%", "misdiag%"],
    );
    for (name, adaptive) in [
        ("static THRESH=20", None),
        ("adaptive", Some(AdaptiveConfig::default())),
    ] {
        for pm in [0.0, 40.0, 80.0] {
            let mut cfg = CorrectConfig::paper_default();
            cfg.monitor.adaptive = adaptive;
            let reports = run_seeds(
                &ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .correct_config(cfg)
                    .misbehavior_percent(pm)
                    .sim_time_secs(secs),
                &seeds,
            );
            t.row(&[
                name.into(),
                format!("{pm:.0}"),
                f2(mean_of(&reports, |r| {
                    r.diagnosis().correct_diagnosis_percent()
                })),
                f2(mean_of(&reports, |r| r.diagnosis().misdiagnosis_percent())),
            ]);
        }
    }
    t.print();
    t.write_csv("ablation_adaptive");
}
