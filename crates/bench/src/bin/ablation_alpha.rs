//! Thin wrapper: `ablation_alpha` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_alpha`
//! (same flags as `airguard-bench`, figure fixed to `ablation_alpha`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("ablation_alpha"));
}
