//! Ablation (§4.1): the deviation tolerance α. Too small lets cheaters
//! hide; too large misdiagnoses honest senders in asymmetric channels.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_alpha`

use airguard_bench::{f2, kbps, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_core::{CorrectConfig, CorrectionConfig};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Ablation: alpha sweep (TWO-FLOW, PM=50 for diag columns)",
        &[
            "alpha",
            "correct%",
            "misdiag%",
            "MSB Kbps",
            "honest misdiag% (PM=0)",
        ],
    );
    for alpha in [0.5, 0.7, 0.8, 0.9, 0.95, 1.0] {
        let mut cfg = CorrectConfig::paper_default();
        cfg.monitor.correction = CorrectionConfig {
            alpha,
            ..CorrectionConfig::paper_default()
        };
        let cheat = run_seeds(
            &ScenarioConfig::new(StandardScenario::TwoFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg)
                .misbehavior_percent(50.0)
                .sim_time_secs(secs),
            &seeds,
        );
        let honest = run_seeds(
            &ScenarioConfig::new(StandardScenario::TwoFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg)
                .sim_time_secs(secs),
            &seeds,
        );
        t.row(&[
            format!("{alpha:.2}"),
            f2(mean_of(&cheat, |r| {
                r.diagnosis().correct_diagnosis_percent()
            })),
            f2(mean_of(&cheat, |r| r.diagnosis().misdiagnosis_percent())),
            kbps(mean_of(&cheat, airguard_net::RunReport::msb_throughput_bps)),
            f2(mean_of(&honest, |r| r.diagnosis().misdiagnosis_percent())),
        ]);
    }
    t.print();
    t.write_csv("ablation_alpha");
}
