//! Thin wrapper: `ablation_channel` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_channel`
//! (same flags as `airguard-bench`, figure fixed to `ablation_channel`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("ablation_channel"));
}
