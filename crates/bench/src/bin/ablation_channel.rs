//! Ablation: channel-model sensitivity. The paper uses log-distance
//! (β = 2) shadowing; here the same experiments run over a two-ray
//! ground mean (ns-2's default outdoor model) with recalibrated
//! thresholds, showing the scheme does not depend on the propagation
//! law.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_channel`

use airguard_bench::{f2, kbps, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_phy::pathloss::{Shadowing, DEFAULT_TX_POWER_MW};
use airguard_phy::{Dbm, Meters, PhyConfig};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let two_ray = PhyConfig::calibrated(
        Shadowing::two_ray(1.0),
        Dbm::from_milliwatts(DEFAULT_TX_POWER_MW),
        Meters::new(250.0),
        Meters::new(550.0),
    );
    let mut t = Table::new(
        "Ablation: propagation model (TWO-FLOW)",
        &["channel", "PM%", "correct%", "misdiag%", "MSB Kbps"],
    );
    for (name, phy) in [
        ("log-distance (paper)", PhyConfig::paper_default()),
        ("two-ray ground", two_ray),
    ] {
        for pm in [0.0, 50.0, 80.0] {
            let reports = run_seeds(
                &ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .phy(phy)
                    .misbehavior_percent(pm)
                    .sim_time_secs(secs),
                &seeds,
            );
            t.row(&[
                name.into(),
                format!("{pm:.0}"),
                f2(mean_of(&reports, |r| {
                    r.diagnosis().correct_diagnosis_percent()
                })),
                f2(mean_of(&reports, |r| r.diagnosis().misdiagnosis_percent())),
                kbps(mean_of(
                    &reports,
                    airguard_net::RunReport::msb_throughput_bps,
                )),
            ]);
        }
    }
    t.print();
    t.write_csv("ablation_channel");
}
