//! Thin wrapper: `ablation_fading` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_fading`
//! (same flags as `airguard-bench`, figure fixed to `ablation_fading`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("ablation_fading"));
}
