//! Ablation: temporal coherence of shadowing. The paper (via ns-2)
//! redraws the Gaussian deviate per transmission; physical log-normal
//! shadowing is static per link. Coherent fading turns marginal links
//! into *persistent* carrier-sense asymmetries — the stress case for
//! the misdiagnosis tradeoff.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_fading`

use airguard_bench::{f2, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_phy::Fading;

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Ablation: shadowing coherence (TWO-FLOW)",
        &["fading", "PM%", "correct%", "misdiag%"],
    );
    for (name, fading) in [
        ("per-transmission (paper)", Fading::PerTransmission),
        ("coherent per link", Fading::Coherent),
    ] {
        for pm in [0.0, 50.0] {
            let reports = run_seeds(
                &ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .fading(fading)
                    .misbehavior_percent(pm)
                    .sim_time_secs(secs),
                &seeds,
            );
            t.row(&[
                name.into(),
                format!("{pm:.0}"),
                f2(mean_of(&reports, |r| {
                    r.diagnosis().correct_diagnosis_percent()
                })),
                f2(mean_of(&reports, |r| r.diagnosis().misdiagnosis_percent())),
            ]);
        }
    }
    t.print();
    t.write_csv("ablation_fading");
}
