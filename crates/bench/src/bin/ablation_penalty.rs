//! Thin wrapper: `ablation_penalty` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_penalty`
//! (same flags as `airguard-bench`, figure fixed to `ablation_penalty`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("ablation_penalty"));
}
