//! Ablation (§4.2): penalty shape. `P = D` alone lets moderate cheaters
//! keep an edge; the paper's capped-extra penalty pins them to fair
//! share; an aggressive 2·D penalty over-punishes honest noise.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_penalty`

use airguard_bench::{f2, kbps, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_core::{CorrectConfig, CorrectionConfig};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let shapes: [(&str, f64, f64); 4] = [
        ("none (diagnosis only)", 0.0, 0.0),
        ("P = D", 1.0, 0.0),
        ("P = D + min(D,8) [paper]", 1.0, 8.0),
        ("P = 2D + min(D,8)", 2.0, 8.0),
    ];
    let mut t = Table::new(
        "Ablation: penalty shape (ZERO-FLOW, PM=60)",
        &[
            "penalty",
            "MSB Kbps",
            "AVG Kbps",
            "fairness",
            "honest AVG Kbps (PM=0)",
        ],
    );
    for (name, scale, cap) in shapes {
        let mut cfg = CorrectConfig::paper_default();
        cfg.monitor.correction = CorrectionConfig {
            penalty_scale: scale,
            extra_cap: cap,
            ..CorrectionConfig::paper_default()
        };
        let cheat = run_seeds(
            &ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg)
                .misbehavior_percent(60.0)
                .sim_time_secs(secs),
            &seeds,
        );
        let honest = run_seeds(
            &ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg)
                .sim_time_secs(secs),
            &seeds,
        );
        t.row(&[
            name.into(),
            kbps(mean_of(&cheat, airguard_net::RunReport::msb_throughput_bps)),
            kbps(mean_of(&cheat, airguard_net::RunReport::avg_throughput_bps)),
            f2(mean_of(&cheat, airguard_net::RunReport::fairness_index)),
            kbps(mean_of(
                &honest,
                airguard_net::RunReport::avg_throughput_bps,
            )),
        ]);
    }
    t.print();
    t.write_csv("ablation_penalty");
}
