//! Thin wrapper: `ablation_threshold` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_threshold`
//! (same flags as `airguard-bench`, figure fixed to `ablation_threshold`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("ablation_threshold"));
}
