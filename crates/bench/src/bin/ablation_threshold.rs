//! Ablation (§4.3/§5): the diagnosis window W and threshold THRESH —
//! the speed/false-positive tradeoff.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin ablation_threshold`

use airguard_bench::{f2, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_core::{CorrectConfig, DiagnosisConfig};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Ablation: (W, THRESH) grid (TWO-FLOW, PM=50)",
        &["W", "THRESH", "correct%", "misdiag%"],
    );
    for w in [3usize, 5, 10] {
        for thresh in [10.0, 20.0, 40.0] {
            let mut cfg = CorrectConfig::paper_default();
            cfg.monitor.diagnosis = DiagnosisConfig::new(w, thresh);
            let reports = run_seeds(
                &ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .correct_config(cfg)
                    .misbehavior_percent(50.0)
                    .sim_time_secs(secs),
                &seeds,
            );
            t.row(&[
                w.to_string(),
                format!("{thresh:.0}"),
                f2(mean_of(&reports, |r| {
                    r.diagnosis().correct_diagnosis_percent()
                })),
                f2(mean_of(&reports, |r| r.diagnosis().misdiagnosis_percent())),
            ]);
        }
    }
    t.print();
    t.write_csv("ablation_threshold");
}
