//! Thin wrapper: `chaos` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin chaos`
//! (same flags as `airguard-bench`, figure fixed to `chaos`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("chaos"));
}
