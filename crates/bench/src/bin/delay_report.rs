//! Thin wrapper: `delay_report` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin delay_report`
//! (same flags as `airguard-bench`, figure fixed to `delay_report`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("delay_report"));
}
