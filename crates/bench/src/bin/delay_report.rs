//! Extension experiment: the *delay* side of selfish misbehavior (§3.1
//! defines it as seeking "higher throughput or lower delay"). Reports
//! mean MAC delay of the cheater vs honest senders, 802.11 vs CORRECT.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin delay_report`

use airguard_bench::{f2, mean_of, pm_sweep, run_seeds, seed_set, sim_secs, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Extension: mean MAC delay (ms) vs PM, ZERO-FLOW",
        &[
            "PM%",
            "802.11-MSB",
            "802.11-AVG",
            "CORRECT-MSB",
            "CORRECT-AVG",
        ],
    );
    for pm in pm_sweep() {
        let mut cells = vec![format!("{pm:.0}")];
        for proto in [Protocol::Dot11, Protocol::Correct] {
            let reports = run_seeds(
                &ScenarioConfig::new(StandardScenario::ZeroFlow)
                    .protocol(proto)
                    .misbehavior_percent(pm)
                    .sim_time_secs(secs),
                &seeds,
            );
            cells.push(f2(mean_of(&reports, airguard_net::RunReport::msb_delay_ms)));
            cells.push(f2(mean_of(&reports, airguard_net::RunReport::avg_delay_ms)));
        }
        t.row(&cells);
    }
    t.print();
    t.write_csv("delay_report");
}
