//! Thin wrapper: `detection_latency` through the unified driver.
//!
//! Regenerate with:
//! `cargo run --release -p airguard-bench --bin detection_latency`
//! (same flags as `airguard-bench`, figure fixed to
//! `detection_latency`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("detection_latency"));
}
