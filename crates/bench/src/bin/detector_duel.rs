//! Thin wrapper: `detector_duel` through the unified driver.
//!
//! Regenerate with:
//! `cargo run --release -p airguard-bench --bin detector_duel`
//! (same flags as `airguard-bench`, figure fixed to `detector_duel`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("detector_duel"));
}
