//! Fig. 4: diagnosis accuracy vs magnitude of misbehavior (PM), for the
//! ZERO-FLOW and TWO-FLOW scenarios under the proposed protocol.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig4`

use airguard_bench::{
    f2, mean_of, pm_sweep, run_seeds, seed_set, sim_secs, write_report_jsonl, Table,
};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut summaries = Vec::new();
    let mut t = Table::new(
        "Fig. 4: correct diagnosis % and misdiagnosis % vs PM",
        &[
            "PM%",
            "zero:correct%",
            "zero:misdiag%",
            "two:correct%",
            "two:misdiag%",
        ],
    );
    for pm in pm_sweep() {
        let mut cells = vec![format!("{pm:.0}")];
        for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
            let cfg = ScenarioConfig::new(sc)
                .protocol(Protocol::Correct)
                .misbehavior_percent(pm)
                .sim_time_secs(secs);
            let reports = run_seeds(&cfg, &seeds);
            for r in &reports {
                let mut s = r.summary.clone();
                s.label = format!("fig4/{sc:?}/pm{pm:.0}");
                summaries.push(s);
            }
            cells.push(f2(mean_of(&reports, |r| {
                r.diagnosis().correct_diagnosis_percent()
            })));
            cells.push(f2(mean_of(&reports, |r| {
                r.diagnosis().misdiagnosis_percent()
            })));
        }
        t.row(&cells);
    }
    t.print();
    t.write_csv("fig4");
    write_report_jsonl("fig4", &summaries);
}
