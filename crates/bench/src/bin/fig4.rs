//! Thin wrapper: `fig4` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig4`
//! (same flags as `airguard-bench`, figure fixed to `fig4`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("fig4"));
}
