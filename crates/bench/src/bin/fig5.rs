//! Fig. 5: throughput of the misbehaving node (MSB) and the average
//! well-behaved node (AVG), IEEE 802.11 vs the proposed scheme
//! (CORRECT), vs PM. Fig. 3 topology, 8 senders, node 3 misbehaving.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig5`

use airguard_bench::{kbps, mean_of, pm_sweep, run_seeds, seed_set, sim_secs, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Fig. 5: throughput (Kbps) vs PM, 802.11 vs CORRECT",
        &[
            "PM%",
            "802.11-MSB",
            "802.11-AVG",
            "CORRECT-MSB",
            "CORRECT-AVG",
        ],
    );
    for pm in pm_sweep() {
        let mut cells = vec![format!("{pm:.0}")];
        for proto in [Protocol::Dot11, Protocol::Correct] {
            let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(proto)
                .misbehavior_percent(pm)
                .sim_time_secs(secs);
            let reports = run_seeds(&cfg, &seeds);
            cells.push(kbps(mean_of(
                &reports,
                airguard_net::RunReport::msb_throughput_bps,
            )));
            cells.push(kbps(mean_of(
                &reports,
                airguard_net::RunReport::avg_throughput_bps,
            )));
        }
        t.row(&cells);
    }
    t.print();
    t.write_csv("fig5");
}
