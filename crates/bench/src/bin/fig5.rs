//! Thin wrapper: `fig5` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig5`
//! (same flags as `airguard-bench`, figure fixed to `fig5`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("fig5"));
}
