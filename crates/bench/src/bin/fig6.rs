//! Thin wrapper: `fig6` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig6`
//! (same flags as `airguard-bench`, figure fixed to `fig6`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("fig6"));
}
