//! Thin wrapper: `fig7` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig7`
//! (same flags as `airguard-bench`, figure fixed to `fig7`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("fig7"));
}
