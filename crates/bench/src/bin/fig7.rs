//! Fig. 7: Jain's fairness index for network sizes 1–64 without
//! misbehavior, 802.11 vs CORRECT, ZERO-FLOW and TWO-FLOW.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig7`

use airguard_bench::{mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let mut t = Table::new(
        "Fig. 7: Jain's fairness index vs network size, no misbehavior",
        &[
            "senders",
            "zero:802.11",
            "zero:CORRECT",
            "two:802.11",
            "two:CORRECT",
        ],
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let mut cells = vec![n.to_string()];
        for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
            for proto in [Protocol::Dot11, Protocol::Correct] {
                let cfg = ScenarioConfig::new(sc)
                    .protocol(proto)
                    .n_senders(n)
                    .sim_time_secs(secs);
                let reports = run_seeds(&cfg, &seeds);
                cells.push(format!(
                    "{:.4}",
                    mean_of(&reports, airguard_net::RunReport::fairness_index)
                ));
            }
        }
        t.row(&cells);
    }
    t.print();
    t.write_csv("fig7");
}
