//! Thin wrapper: `fig8` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig8`
//! (same flags as `airguard-bench`, figure fixed to `fig8`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("fig8"));
}
