//! Fig. 8: responsiveness of the diagnosis scheme — correct diagnosis %
//! per one-second interval, TWO-FLOW, PM ∈ {40, 80}, pooled over the
//! seed set.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig8`

use airguard_bench::{run_seeds, seed_set, sim_secs, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let pms = [40.0, 80.0];
    let mut pooled = Vec::new();
    for &pm in &pms {
        let cfg = ScenarioConfig::new(StandardScenario::TwoFlow)
            .protocol(Protocol::Correct)
            .misbehavior_percent(pm)
            .sim_time_secs(secs);
        let reports = run_seeds(&cfg, &seeds);
        let mut merged = reports[0].series.clone();
        for r in &reports[1..] {
            merged.merge(&r.series);
        }
        pooled.push(merged);
    }
    let mut t = Table::new(
        "Fig. 8: correct diagnosis % per 1 s interval (TWO-FLOW)",
        &["t(s)", "PM=40%", "PM=80%"],
    );
    for (i, (b40, b80)) in pooled[0].bins().iter().zip(pooled[1].bins()).enumerate() {
        t.row(&[
            i.to_string(),
            format!("{:.1}", b40.percent()),
            format!("{:.1}", b80.percent()),
        ]);
    }
    t.print();
    t.write_csv("fig8");
}
