//! Fig. 9: protocol performance on random topologies — 40 nodes in
//! 1500 m × 700 m, 5 random misbehaving, each node running a backlogged
//! CBR flow to a neighbor. (a) diagnosis accuracy vs PM under CORRECT;
//! (b) MSB/AVG throughput vs PM for 802.11 and CORRECT.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig9`

use airguard_bench::{f2, kbps, mean_of, pm_sweep, run_seeds, seed_set, sim_secs, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();

    let mut a = Table::new(
        "Fig. 9(a): diagnosis accuracy vs PM, random topologies",
        &["PM%", "correct%", "misdiag%"],
    );
    let mut b = Table::new(
        "Fig. 9(b): throughput (Kbps) vs PM, random topologies",
        &[
            "PM%",
            "802.11-MSB",
            "802.11-AVG",
            "CORRECT-MSB",
            "CORRECT-AVG",
        ],
    );
    for pm in pm_sweep() {
        let correct_cfg = ScenarioConfig::new(StandardScenario::Random)
            .protocol(Protocol::Correct)
            .misbehavior_percent(pm)
            .sim_time_secs(secs);
        let correct = run_seeds(&correct_cfg, &seeds);
        a.row(&[
            format!("{pm:.0}"),
            f2(mean_of(&correct, |r| {
                r.diagnosis().correct_diagnosis_percent()
            })),
            f2(mean_of(&correct, |r| r.diagnosis().misdiagnosis_percent())),
        ]);

        let dot11_cfg = ScenarioConfig::new(StandardScenario::Random)
            .protocol(Protocol::Dot11)
            .misbehavior_percent(pm)
            .sim_time_secs(secs);
        let dot11 = run_seeds(&dot11_cfg, &seeds);
        b.row(&[
            format!("{pm:.0}"),
            kbps(mean_of(&dot11, airguard_net::RunReport::msb_throughput_bps)),
            kbps(mean_of(&dot11, airguard_net::RunReport::avg_throughput_bps)),
            kbps(mean_of(
                &correct,
                airguard_net::RunReport::msb_throughput_bps,
            )),
            kbps(mean_of(
                &correct,
                airguard_net::RunReport::avg_throughput_bps,
            )),
        ]);
    }
    a.print();
    a.write_csv("fig9a");
    b.print();
    b.write_csv("fig9b");
}
