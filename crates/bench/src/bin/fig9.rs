//! Thin wrapper: `fig9` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin fig9`
//! (same flags as `airguard-bench`, figure fixed to `fig9`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("fig9"));
}
