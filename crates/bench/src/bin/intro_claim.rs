//! §1 intro claim: under plain 802.11, one of 8 senders drawing backoff
//! from [0, CW/4] degrades the throughput of the other 7 by up to ~50 %.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin intro_claim`

use airguard_bench::{kbps, mean_of, run_seeds, seed_set, sim_secs, Table};
use airguard_mac::Selfish;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let seeds = seed_set();
    let secs = sim_secs();
    let base = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Dot11)
        .sim_time_secs(secs);

    let fair = run_seeds(&base, &seeds);
    let fair_share = mean_of(&fair, airguard_net::RunReport::avg_throughput_bps);

    let cheat = run_seeds(&base.clone().strategy(Selfish::QuarterWindow), &seeds);
    let msb = mean_of(&cheat, airguard_net::RunReport::msb_throughput_bps);
    let avg = mean_of(&cheat, airguard_net::RunReport::avg_throughput_bps);

    let mut t = Table::new(
        "Intro claim: one [0, CW/4] cheater among 8 senders (802.11)",
        &["series", "Kbps", "vs fair share"],
    );
    t.row(&[
        "fair share (all honest)".into(),
        kbps(fair_share),
        "100.0%".into(),
    ]);
    t.row(&[
        "cheater (MSB)".into(),
        kbps(msb),
        format!("{:.1}%", 100.0 * msb / fair_share),
    ]);
    t.row(&[
        "honest avg (AVG)".into(),
        kbps(avg),
        format!("{:.1}%", 100.0 * avg / fair_share),
    ]);
    t.print();
    t.write_csv("intro_claim");
    println!(
        "\nHonest senders degraded to {:.1}% of fair share (paper: \"as much as 50%\").",
        100.0 * avg / fair_share
    );
}
