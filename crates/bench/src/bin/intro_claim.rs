//! Thin wrapper: `intro_claim` through the unified driver.
//!
//! Regenerate with: `cargo run --release -p airguard-bench --bin intro_claim`
//! (same flags as `airguard-bench`, figure fixed to `intro_claim`).

fn main() {
    std::process::exit(airguard_bench::cli::bin_main("intro_claim"));
}
