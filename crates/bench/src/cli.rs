//! The unified `airguard-bench` command line.
//!
//! One driver regenerates any registered figure:
//!
//! ```text
//! airguard-bench --list
//! airguard-bench --figure fig4 --seeds 30 --secs 50 --jsonl
//! airguard-bench                       # every figure, paper settings
//! ```
//!
//! The 18 per-figure binaries call [`bin_main`] with their figure name
//! forced and accept the same flags. Seed count, horizon, and detector
//! selection fall back to the `AIRGUARD_SEEDS` / `AIRGUARD_SECS` /
//! `AIRGUARD_DETECTOR` environment variables; malformed values are
//! *rejected with an error*, never silently defaulted.

use std::io::Write as _;
use std::time::Instant;

use airguard_core::DetectorConfig;
use airguard_exp::{run_experiment, write_report_jsonl, Experiment, ResultCache, RunOptions};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_obs::{records_to_chrome_trace, PhaseProfiler};

use crate::figures;
use crate::{PAPER_SECS, PAPER_SEEDS};

/// One stdout line. The CLI owns the console; the figure/table layer
/// below stays print-free apart from `Table::print`. Each line is
/// staged with its newline and written with a single locked
/// `write_all`, so lines from concurrent processes sharing the stream
/// never interleave mid-line.
fn out(line: &str) {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let _ = std::io::stdout().lock().write_all(buf.as_bytes());
}

/// One stderr line (progress, warnings, failures); atomic per line
/// like [`out`].
fn err(line: &str) {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let _ = std::io::stderr().lock().write_all(buf.as_bytes());
}

const USAGE: &str = "\
usage: airguard-bench [--figure NAME]... [options]

options:
  --figure NAME    run one registered figure (repeatable; default: all)
                   NAME `hotpath` runs the perf harness instead
                   (events/sec trajectory -> BENCH_hotpath.json)
                   NAME `scale` runs the spatial-sharding harness
                   (campus scaling + worker identity -> BENCH_shard.json)
                   NAME `live_replay` runs the streaming-service harness
                   (replay throughput + p99 latency -> BENCH_live.json)
  --list           list registered figures and exit
  --seeds N        seed-set size (default 30, or AIRGUARD_SEEDS)
  --secs N         simulated seconds per run (default 50, or AIRGUARD_SECS)
  --workers N      worker threads (default: one per core)
  --detector KIND  restrict the detector_duel figure to one deviation
                   detector: window, cusum, or cw (default: all three,
                   or AIRGUARD_DETECTOR); other figures are unaffected
  --shard-workers N  intra-run shard workers for spatial scenarios and
                   the `scale` harness (default 1, or
                   AIRGUARD_SHARD_WORKERS); never changes results
  --jsonl          write results/<name>.report.jsonl telemetry
  --no-cache       ignore and do not update results/cache
  --cache-dir DIR  result cache location (default results/cache)
  --retries N      extra attempts per failed cell, reseeded per attempt
                   (default 0)
  --watchdog-secs N  wall-clock seconds one cell may run before the
                   watchdog kills it (default: unbounded)
  --max-events N   virtual-event budget per cell run (default: unbounded)
  --no-resume      re-run cells a previous (possibly killed) sweep
                   recorded as failed in the progress manifest
  --quiet          suppress the per-experiment [exp] progress line
  --profile        enable the hot-path phase profiler and print its
                   per-experiment report (wall time, diagnostic only)
  --trace-out PATH run one fully-observed ZERO-FLOW scenario (PM=50,
                   seed 1, --secs horizon) and write its causal trace
                   as Chrome trace-event / Perfetto JSON to PATH; runs
                   no figures unless --figure is also given
  --help           show this help";

/// Everything the flag parser produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cli {
    /// Selected figure names; empty means every registered figure.
    pub figures: Vec<String>,
    /// `--list`: print the registry and exit.
    pub list: bool,
    /// `--help`: print usage and exit.
    pub help: bool,
    /// Seed-set size.
    pub seeds: u64,
    /// Simulated seconds per run.
    pub secs: u64,
    /// Worker threads; 0 means one per core.
    pub workers: usize,
    /// Intra-run shard workers for spatial scenarios and the `scale`
    /// harness. Determinism contract: can never change a result byte.
    pub shard_workers: usize,
    /// Validated detector kind restricting the `detector_duel` grid
    /// (`window`/`cusum`/`cw`); `None` runs all three.
    pub detector: Option<String>,
    /// Write the telemetry report even when the figure doesn't default
    /// to it.
    pub jsonl: bool,
    /// Disable the result cache.
    pub no_cache: bool,
    /// Cache location override.
    pub cache_dir: Option<String>,
    /// Extra attempts per failed cell.
    pub retries: u32,
    /// Per-cell wall-clock watchdog deadline, seconds.
    pub watchdog_secs: Option<u64>,
    /// Per-cell virtual-event budget.
    pub max_events: Option<u64>,
    /// Re-run cells the progress manifest recorded as failed.
    pub no_resume: bool,
    /// Suppress the per-experiment `[exp]` progress line on stderr.
    pub quiet: bool,
    /// Enable phase profiling and print the per-experiment report.
    pub profile: bool,
    /// Write a Chrome trace-event JSON of one observed run to this
    /// path.
    pub trace_out: Option<String>,
}

/// Parses a positive integer, rejecting junk and zero with a clear
/// message naming the source (`--seeds`, `AIRGUARD_SECS`, …).
fn parse_positive(source: &str, value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(0) => Err(format!("{source}: expected a positive integer, got 0")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{source}: expected a positive integer, got {value:?}"
        )),
    }
}

/// Parses a non-negative integer (zero allowed), rejecting junk with a
/// clear message naming the source.
fn parse_nonnegative(source: &str, value: &str) -> Result<u64, String> {
    value
        .trim()
        .parse::<u64>()
        .map_err(|_| format!("{source}: expected a non-negative integer, got {value:?}"))
}

/// Reads `name` from the environment; unset is `None`, malformed is an
/// error (never a silent default).
pub(crate) fn env_positive(name: &str) -> Result<Option<u64>, String> {
    match std::env::var(name) {
        Ok(v) => parse_positive(name, &v).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("{name}: value is not valid unicode"))
        }
    }
}

/// Validates a detector kind, naming the source (`--detector`,
/// `AIRGUARD_DETECTOR`) in the rejection.
fn parse_detector(source: &str, value: &str) -> Result<String, String> {
    let kind = value.trim();
    DetectorConfig::from_kind(kind)
        .map(|d| d.kind().to_owned())
        .map_err(|e| format!("{source}: {e}"))
}

/// Reads `AIRGUARD_DETECTOR`; unset is `None`, malformed is an error
/// (never a silent default), mirroring [`env_positive`].
fn env_detector() -> Result<Option<String>, String> {
    let name = "AIRGUARD_DETECTOR";
    match std::env::var(name) {
        Ok(v) => parse_detector(name, &v).map(Some),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("{name}: value is not valid unicode"))
        }
    }
}

/// Parses `args` (no argv[0]). `forced_figure` is set by the thin
/// per-figure binaries; they reject `--figure`/`--list`.
///
/// # Errors
///
/// Returns a usage-style message on unknown flags, malformed numbers,
/// or malformed `AIRGUARD_SEEDS`/`AIRGUARD_SECS` values.
pub fn parse(args: &[String], forced_figure: Option<&str>) -> Result<Cli, String> {
    let env_shard = match env_positive("AIRGUARD_SHARD_WORKERS")? {
        Some(n) => usize::try_from(n)
            .map_err(|_| format!("AIRGUARD_SHARD_WORKERS: value {n} out of range"))?,
        None => 1,
    };
    let mut cli = Cli {
        figures: forced_figure.iter().map(|s| (*s).to_owned()).collect(),
        list: false,
        help: false,
        seeds: env_positive("AIRGUARD_SEEDS")?.unwrap_or(PAPER_SEEDS),
        secs: env_positive("AIRGUARD_SECS")?.unwrap_or(PAPER_SECS),
        workers: 0,
        shard_workers: env_shard,
        detector: env_detector()?,
        jsonl: false,
        no_cache: false,
        cache_dir: None,
        retries: 0,
        watchdog_secs: None,
        max_events: None,
        no_resume: false,
        quiet: false,
        profile: false,
        trace_out: None,
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag}: missing value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--figure" => {
                let name = value("--figure", &mut it)?;
                if forced_figure.is_some() {
                    return Err(format!(
                        "--figure: this binary is fixed to one figure; use `airguard-bench --figure {name}`"
                    ));
                }
                cli.figures.push(name);
            }
            "--list" => {
                if forced_figure.is_some() {
                    return Err("--list: use `airguard-bench --list`".to_owned());
                }
                cli.list = true;
            }
            "--help" | "-h" => cli.help = true,
            "--seeds" => cli.seeds = parse_positive("--seeds", &value("--seeds", &mut it)?)?,
            "--secs" => cli.secs = parse_positive("--secs", &value("--secs", &mut it)?)?,
            "--workers" => {
                let v = value("--workers", &mut it)?;
                cli.workers = usize::try_from(parse_positive("--workers", &v)?)
                    .map_err(|_| format!("--workers: value {v:?} out of range"))?;
            }
            "--shard-workers" => {
                let v = value("--shard-workers", &mut it)?;
                cli.shard_workers = usize::try_from(parse_positive("--shard-workers", &v)?)
                    .map_err(|_| format!("--shard-workers: value {v:?} out of range"))?;
            }
            "--detector" => {
                cli.detector = Some(parse_detector(
                    "--detector",
                    &value("--detector", &mut it)?,
                )?);
            }
            "--jsonl" => cli.jsonl = true,
            "--no-cache" => cli.no_cache = true,
            "--cache-dir" => cli.cache_dir = Some(value("--cache-dir", &mut it)?),
            "--retries" => {
                let v = value("--retries", &mut it)?;
                cli.retries = u32::try_from(parse_nonnegative("--retries", &v)?)
                    .map_err(|_| format!("--retries: value {v:?} out of range"))?;
            }
            "--watchdog-secs" => {
                cli.watchdog_secs = Some(parse_positive(
                    "--watchdog-secs",
                    &value("--watchdog-secs", &mut it)?,
                )?);
            }
            "--max-events" => {
                cli.max_events = Some(parse_positive(
                    "--max-events",
                    &value("--max-events", &mut it)?,
                )?);
            }
            "--no-resume" => cli.no_resume = true,
            "--quiet" => cli.quiet = true,
            "--profile" => cli.profile = true,
            "--trace-out" => cli.trace_out = Some(value("--trace-out", &mut it)?),
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    Ok(cli)
}

/// Resolves the selected experiments, preserving registry order.
fn select(figures: &[String]) -> Result<Vec<Experiment>, String> {
    if figures.is_empty() {
        return Ok(figures::all());
    }
    figures
        .iter()
        .map(|name| {
            figures::find(name).ok_or_else(|| {
                format!("unknown figure {name:?} (run `airguard-bench --list` for the registry)")
            })
        })
        .collect()
}

/// Runs one fully-observed, profiled ZERO-FLOW scenario and writes
/// its causal trace as Chrome trace-event JSON (open in Perfetto or
/// `chrome://tracing`). Returns the profiler so the caller can print
/// the phase report.
fn write_trace(path: &str, secs: u64) -> Result<(usize, PhaseProfiler), String> {
    let profiler = PhaseProfiler::enabled();
    let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .misbehavior_percent(50.0)
        .sim_time_secs(secs)
        .seed(1);
    let (_report, sink) = cfg.run_observed_profiled(profiler.clone());
    let records = sink.records();
    let json = records_to_chrome_trace(&records);
    std::fs::write(path, json.as_bytes()).map_err(|e| format!("failed to write {path}: {e}"))?;
    Ok((records.len(), profiler))
}

/// Runs one parsed invocation; returns the process exit code.
#[must_use]
pub fn run(cli: &Cli) -> i32 {
    if cli.help {
        out(USAGE);
        return 0;
    }
    if cli.list {
        for e in figures::all() {
            out(&format!(
                "{:<20} {:>3} points  {}",
                e.name,
                e.points.len(),
                e.title
            ));
        }
        out(&format!(
            "{:<20} perf harness  events/sec trajectory -> {}",
            "hotpath",
            crate::hotpath::REPORT_PATH
        ));
        out(&format!(
            "{:<20} perf harness  spatial-sharding scaling -> {}",
            "scale",
            crate::scale::REPORT_PATH
        ));
        out(&format!(
            "{:<20} perf harness  streaming-service replay -> {}",
            "live_replay",
            crate::live_replay::REPORT_PATH
        ));
        return 0;
    }
    // The perf harness is not a sweep: run it directly, keep any other
    // selected figures flowing through the engine below.
    let mut exit = 0;
    if let Some(path) = &cli.trace_out {
        match write_trace(path, cli.secs) {
            Ok((records, profiler)) => {
                out(&format!("[trace] {records} records -> {path}"));
                err(profiler.report().trim_end());
            }
            Err(msg) => {
                err(&format!("airguard-bench: {msg}"));
                exit = 1;
            }
        }
        // A trace capture is a dedicated run; only fall through to the
        // sweep engine when figures were explicitly selected.
        if cli.figures.is_empty() {
            return exit;
        }
    }
    let mut figures: Vec<String> = cli.figures.clone();
    if let Some(at) = figures.iter().position(|f| f == "hotpath") {
        figures.remove(at);
        match crate::hotpath::run(cli.seeds, cli.secs, cli.workers) {
            Ok(lines) => {
                for line in &lines {
                    out(line);
                }
            }
            Err(msg) => {
                err(&format!("airguard-bench: {msg}"));
                exit = 1;
            }
        }
        if figures.is_empty() {
            return exit;
        }
    }
    if let Some(at) = figures.iter().position(|f| f == "scale") {
        figures.remove(at);
        match crate::scale::run(cli.secs, cli.shard_workers) {
            Ok(lines) => {
                for line in &lines {
                    out(line);
                }
            }
            Err(msg) => {
                err(&format!("airguard-bench: {msg}"));
                exit = 1;
            }
        }
        if figures.is_empty() {
            return exit;
        }
    }
    if let Some(at) = figures.iter().position(|f| f == "live_replay") {
        figures.remove(at);
        match crate::live_replay::run(cli.shard_workers) {
            Ok(lines) => {
                for line in &lines {
                    out(line);
                }
            }
            Err(msg) => {
                err(&format!("airguard-bench: {msg}"));
                exit = 1;
            }
        }
        if figures.is_empty() {
            return exit;
        }
    }
    let mut exps = match select(&figures) {
        Ok(exps) => exps,
        Err(msg) => {
            err(&format!("airguard-bench: {msg}"));
            return 2;
        }
    };
    // The (already validated) detector restriction swaps the full duel
    // grid for its one-detector slice; every other figure keeps its
    // registered points and cache digests.
    if let Some(kind) = &cli.detector {
        for exp in &mut exps {
            if exp.name == "detector_duel" {
                *exp = figures::detector_duel::experiment_for(Some(kind));
            }
        }
    }

    let mut opts = RunOptions::new(cli.seeds, cli.secs);
    opts.workers = cli.workers;
    opts.profiler = cli.profile.then(PhaseProfiler::enabled);
    opts.retries = cli.retries;
    opts.watchdog_secs = cli.watchdog_secs;
    opts.max_events = cli.max_events;
    opts.resume = !cli.no_resume;
    opts.cache = if cli.no_cache {
        None
    } else {
        let root: std::path::PathBuf = cli
            .cache_dir
            .as_ref()
            .map_or_else(ResultCache::default_root, Into::into);
        // The crash-safe sweep progress manifest lives next to the
        // cache, so killing and rerunning a sweep resumes both
        // completed (cache) and known-failed (manifest) cells.
        opts.manifest_dir = Some(root.join("manifest"));
        Some(ResultCache::new(root))
    };

    for exp in exps {
        let start = Instant::now();
        let outcome = run_experiment(&exp, &opts);
        for fig in &outcome.rendered.figures {
            fig.table.print();
        }
        for note in &outcome.rendered.notes {
            out(&format!("\n{note}"));
        }
        for fig in &outcome.rendered.figures {
            if let Err(e) = fig.table.write_csv(&fig.name) {
                err(&format!(
                    "airguard-bench: failed to write results/{}.csv: {e}",
                    fig.name
                ));
                exit = 1;
            }
        }
        if cli.jsonl || exp.jsonl_default {
            if let Err(e) = write_report_jsonl(exp.name, &outcome.report_lines) {
                err(&format!(
                    "airguard-bench: failed to write results/{}.report.jsonl: {e}",
                    exp.name
                ));
                exit = 1;
            }
        }
        for warning in &outcome.warnings {
            err(&format!("airguard-bench: warning: {warning}"));
        }
        for failure in &outcome.failures {
            err(&format!("airguard-bench: {failure}"));
            exit = 1;
        }
        if let Some(profiler) = &opts.profiler {
            err(&format!("[profile] {}", exp.name));
            err(profiler.report().trim_end());
            // Per-experiment accounting: the shared profiler restarts
            // from zero for the next sweep.
            profiler.clear();
        }
        if !cli.quiet {
            err(&format!(
                "[exp] {}: {} (workers={}, {:.1} s)",
                exp.name,
                outcome.progress,
                opts.effective_workers(),
                start.elapsed().as_secs_f64()
            ));
        }
    }
    exit
}

/// Entry point for the unified `airguard-bench` binary.
#[must_use]
pub fn cli_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args, None) {
        Ok(cli) => run(&cli),
        Err(msg) => {
            err(&format!("airguard-bench: {msg}"));
            err(USAGE);
            2
        }
    }
}

/// Entry point for the thin per-figure binaries (`fig4`, `fig5`, …).
#[must_use]
pub fn bin_main(figure: &str) -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args, Some(figure)) {
        Ok(cli) => run(&cli),
        Err(msg) => {
            err(&format!("{figure}: {msg}"));
            err(USAGE);
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn defaults_are_the_paper_settings() {
        let cli = parse(&[], None).expect("parses");
        assert_eq!(cli.seeds, PAPER_SEEDS);
        assert_eq!(cli.secs, PAPER_SECS);
        assert!(cli.figures.is_empty());
        assert!(!cli.jsonl && !cli.no_cache && !cli.list);
    }

    #[test]
    fn flags_parse() {
        let cli = parse(
            &args(&[
                "--figure",
                "fig4",
                "--seeds",
                "3",
                "--secs",
                "2",
                "--workers",
                "4",
                "--jsonl",
                "--no-cache",
                "--cache-dir",
                "/tmp/c",
            ]),
            None,
        )
        .expect("parses");
        assert_eq!(cli.figures, vec!["fig4".to_owned()]);
        assert_eq!((cli.seeds, cli.secs, cli.workers), (3, 2, 4));
        assert!(cli.jsonl && cli.no_cache);
        assert_eq!(cli.cache_dir.as_deref(), Some("/tmp/c"));
    }

    #[test]
    fn hardening_flags_parse() {
        let cli = parse(
            &args(&[
                "--retries",
                "2",
                "--watchdog-secs",
                "90",
                "--max-events",
                "5000000",
                "--no-resume",
            ]),
            None,
        )
        .expect("parses");
        assert_eq!(cli.retries, 2);
        assert_eq!(cli.watchdog_secs, Some(90));
        assert_eq!(cli.max_events, Some(5_000_000));
        assert!(cli.no_resume);
    }

    #[test]
    fn hardening_defaults_are_inert() {
        let cli = parse(&[], None).expect("parses");
        assert_eq!(cli.retries, 0);
        assert_eq!(cli.watchdog_secs, None);
        assert_eq!(cli.max_events, None);
        assert!(!cli.no_resume);
    }

    #[test]
    fn impossible_hardening_values_are_rejected() {
        assert!(parse(&args(&["--retries", "-1"]), None)
            .unwrap_err()
            .contains("non-negative integer"));
        assert!(parse(&args(&["--retries", "many"]), None)
            .unwrap_err()
            .contains("non-negative integer"));
        assert!(parse(&args(&["--watchdog-secs", "0"]), None)
            .unwrap_err()
            .contains("got 0"));
        assert!(parse(&args(&["--watchdog-secs"]), None)
            .unwrap_err()
            .contains("missing value"));
        assert!(parse(&args(&["--max-events", "0"]), None)
            .unwrap_err()
            .contains("got 0"));
        assert!(parse(&args(&["--max-events", "lots"]), None)
            .unwrap_err()
            .contains("positive integer"));
        // `--retries 0` is a meaningful request (no retries), not junk.
        assert_eq!(
            parse(&args(&["--retries", "0"]), None)
                .expect("parses")
                .retries,
            0
        );
    }

    #[test]
    fn shard_workers_flag_parses_and_defaults_to_one() {
        assert_eq!(parse(&[], None).expect("parses").shard_workers, 1);
        let cli = parse(&args(&["--shard-workers", "4"]), None).expect("parses");
        assert_eq!(cli.shard_workers, 4);
        assert!(parse(&args(&["--shard-workers", "0"]), None)
            .unwrap_err()
            .contains("got 0"));
        assert!(parse(&args(&["--shard-workers", "lots"]), None)
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&args(&["--shard-workers"]), None)
            .unwrap_err()
            .contains("missing value"));
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        assert!(parse(&args(&["--seeds", "many"]), None)
            .unwrap_err()
            .contains("positive integer"));
        assert!(parse(&args(&["--secs", "0"]), None)
            .unwrap_err()
            .contains("got 0"));
        assert!(parse(&args(&["--seeds"]), None)
            .unwrap_err()
            .contains("missing value"));
        assert!(parse(&args(&["--frobnicate"]), None)
            .unwrap_err()
            .contains("unknown flag"));
    }

    #[test]
    fn forced_figure_binaries_reject_selection_flags() {
        let cli = parse(&args(&["--seeds", "2"]), Some("fig4")).expect("parses");
        assert_eq!(cli.figures, vec!["fig4".to_owned()]);
        assert!(parse(&args(&["--figure", "fig5"]), Some("fig4")).is_err());
        assert!(parse(&args(&["--list"]), Some("fig4")).is_err());
    }

    #[test]
    fn unknown_figures_are_reported() {
        let msg = select(&["no_such".to_owned()]).unwrap_err();
        assert!(msg.contains("unknown figure"));
        assert_eq!(select(&[]).expect("all").len(), 18);
    }

    #[test]
    fn detector_flag_validates_and_normalizes() {
        for kind in ["window", "cusum", "cw"] {
            let cli = parse(&args(&["--detector", kind]), None).expect("parses");
            assert_eq!(cli.detector.as_deref(), Some(kind));
        }
        // Surrounding whitespace is tolerated, junk is not.
        let cli = parse(&args(&["--detector", " cusum "]), None).expect("parses");
        assert_eq!(cli.detector.as_deref(), Some("cusum"));
        let msg = parse(&args(&["--detector", "ewma"]), None).unwrap_err();
        assert!(msg.contains("--detector"), "{msg}");
        assert!(msg.contains("window, cusum, or cw"), "{msg}");
        assert!(parse(&args(&["--detector"]), None)
            .unwrap_err()
            .contains("missing value"));
    }

    #[test]
    fn detector_env_is_validated_not_silently_defaulted() {
        // The env reader shares `parse_detector`, so the malformed path
        // is pinned without mutating process-global state (other tests
        // call `parse` concurrently and would race on the variable).
        let msg = parse_detector("AIRGUARD_DETECTOR", "ewma").unwrap_err();
        assert!(msg.contains("AIRGUARD_DETECTOR"), "{msg}");
        assert!(msg.contains("window, cusum, or cw"), "{msg}");
        // Unset (the default in the test environment) means "all".
        assert_eq!(parse(&[], None).expect("parses").detector, None);
        // A set-and-valid round trip, restored before returning; keeps
        // the value valid throughout so racing `parse` calls still
        // succeed.
        std::env::set_var("AIRGUARD_DETECTOR", "cw");
        let seen = env_detector();
        std::env::remove_var("AIRGUARD_DETECTOR");
        assert_eq!(seen.expect("valid"), Some("cw".to_owned()));
    }

    #[test]
    fn observability_flags_parse() {
        let cli = parse(
            &args(&["--quiet", "--profile", "--trace-out", "/tmp/trace.json"]),
            None,
        )
        .expect("parses");
        assert!(cli.quiet && cli.profile);
        assert_eq!(cli.trace_out.as_deref(), Some("/tmp/trace.json"));
        assert!(parse(&args(&["--trace-out"]), None)
            .unwrap_err()
            .contains("missing value"));
    }

    #[test]
    fn observability_defaults_are_inert() {
        let cli = parse(&[], None).expect("parses");
        assert!(!cli.quiet && !cli.profile);
        assert_eq!(cli.trace_out, None);
    }
}
