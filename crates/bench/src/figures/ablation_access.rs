//! Ablation (footnote 2): the scheme without the RTS/CTS handshake.
//! Basic access carries the attempt number in DATA; detection and
//! correction must survive, and raw capacity improves.

use airguard_exp::{f2, kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_mac::AccessMode;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

const MODES: [(&str, AccessMode); 2] = [
    ("rts-cts", AccessMode::RtsCts),
    ("basic", AccessMode::Basic),
];
const PMS: [f64; 3] = [0.0, 50.0, 80.0];

fn axes(name: &str, pm: f64) -> Axes {
    Axes::new()
        .with("access", name)
        .with("pm", format!("{pm:.0}"))
}

/// The access-mode ablation grid.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "ablation_access",
        "Ablation: RTS/CTS vs basic access (ZERO-FLOW)",
    );
    e.render = render;
    for (name, access) in MODES {
        for pm in PMS {
            e.push(
                &axes(name, pm),
                ScenarioConfig::new(StandardScenario::ZeroFlow)
                    .protocol(Protocol::Correct)
                    .access(access)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Ablation: RTS/CTS vs basic access (ZERO-FLOW)",
        &[
            "access", "PM%", "correct%", "misdiag%", "MSB Kbps", "AVG Kbps",
        ],
    );
    for (name, _) in MODES {
        for pm in PMS {
            let a = axes(name, pm);
            t.row(&[
                name.into(),
                format!("{pm:.0}"),
                f2(r.mean(&a, metric::CORRECT_PCT)),
                f2(r.mean(&a, metric::MISDIAG_PCT)),
                kbps(r.mean(&a, metric::MSB_BPS)),
                kbps(r.mean(&a, metric::AVG_BPS)),
            ]);
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "ablation_access".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
