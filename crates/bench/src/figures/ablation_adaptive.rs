//! Ablation (§6 future work): adaptive THRESH selection. The monitor
//! scales its threshold with the observed channel noise of unflagged
//! senders — cutting TWO-FLOW misdiagnosis while keeping detection.

use airguard_core::monitor::AdaptiveConfig;
use airguard_core::CorrectConfig;
use airguard_exp::{f2, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

const PMS: [f64; 3] = [0.0, 40.0, 80.0];

/// `(axis value, display name, adaptive config)` per variant.
fn variants() -> [(&'static str, &'static str, Option<AdaptiveConfig>); 2] {
    [
        ("static", "static THRESH=20", None),
        ("adaptive", "adaptive", Some(AdaptiveConfig::default())),
    ]
}

fn axes(variant: &str, pm: f64) -> Axes {
    Axes::new()
        .with("variant", variant)
        .with("pm", format!("{pm:.0}"))
}

/// The adaptive-threshold ablation grid.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "ablation_adaptive",
        "Ablation: static vs adaptive THRESH (TWO-FLOW)",
    );
    e.render = render;
    for (key, _, adaptive) in variants() {
        for pm in PMS {
            let mut cfg = CorrectConfig::paper_default();
            cfg.monitor.adaptive = adaptive;
            e.push(
                &axes(key, pm),
                ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .correct_config(cfg)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Ablation: static vs adaptive THRESH (TWO-FLOW)",
        &["variant", "PM%", "correct%", "misdiag%"],
    );
    for (key, display, _) in variants() {
        for pm in PMS {
            let a = axes(key, pm);
            t.row(&[
                display.into(),
                format!("{pm:.0}"),
                f2(r.mean(&a, metric::CORRECT_PCT)),
                f2(r.mean(&a, metric::MISDIAG_PCT)),
            ]);
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "ablation_adaptive".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
