//! Ablation (§4.1): the deviation tolerance α. Too small lets cheaters
//! hide; too large misdiagnoses honest senders in asymmetric channels.

use airguard_core::{CorrectConfig, CorrectionConfig};
use airguard_exp::{f2, kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

const ALPHAS: [f64; 6] = [0.5, 0.7, 0.8, 0.9, 0.95, 1.0];

fn axes(alpha: f64, mode: &str) -> Axes {
    Axes::new()
        .with("alpha", format!("{alpha:.2}"))
        .with("mode", mode)
}

fn cfg_for(alpha: f64) -> CorrectConfig {
    let mut cfg = CorrectConfig::paper_default();
    cfg.monitor.correction = CorrectionConfig {
        alpha,
        ..CorrectionConfig::paper_default()
    };
    cfg
}

/// The α sweep: each tolerance at PM=50 (cheat) and PM=0 (honest).
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "ablation_alpha",
        "Ablation: alpha sweep (TWO-FLOW, PM=50 for diag columns)",
    );
    e.render = render;
    for alpha in ALPHAS {
        e.push(
            &axes(alpha, "cheat"),
            ScenarioConfig::new(StandardScenario::TwoFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg_for(alpha))
                .misbehavior_percent(50.0),
        );
        e.push(
            &axes(alpha, "honest"),
            ScenarioConfig::new(StandardScenario::TwoFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg_for(alpha)),
        );
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Ablation: alpha sweep (TWO-FLOW, PM=50 for diag columns)",
        &[
            "alpha",
            "correct%",
            "misdiag%",
            "MSB Kbps",
            "honest misdiag% (PM=0)",
        ],
    );
    for alpha in ALPHAS {
        let cheat = axes(alpha, "cheat");
        let honest = axes(alpha, "honest");
        t.row(&[
            format!("{alpha:.2}"),
            f2(r.mean(&cheat, metric::CORRECT_PCT)),
            f2(r.mean(&cheat, metric::MISDIAG_PCT)),
            kbps(r.mean(&cheat, metric::MSB_BPS)),
            f2(r.mean(&honest, metric::MISDIAG_PCT)),
        ]);
    }
    Rendered {
        figures: vec![Figure {
            name: "ablation_alpha".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
