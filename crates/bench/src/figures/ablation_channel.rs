//! Ablation: channel-model sensitivity. The paper uses log-distance
//! (β = 2) shadowing; here the same experiments run over a two-ray
//! ground mean (ns-2's default outdoor model) with recalibrated
//! thresholds, showing the scheme does not depend on the propagation
//! law.

use airguard_exp::{f2, kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_phy::pathloss::{Shadowing, DEFAULT_TX_POWER_MW};
use airguard_phy::{Dbm, Meters, PhyConfig};

const PMS: [f64; 3] = [0.0, 50.0, 80.0];

fn two_ray() -> PhyConfig {
    PhyConfig::calibrated(
        Shadowing::two_ray(1.0),
        Dbm::from_milliwatts(DEFAULT_TX_POWER_MW),
        Meters::new(250.0),
        Meters::new(550.0),
    )
}

/// `(axis value, display name, phy config)` per channel model.
fn channels() -> [(&'static str, &'static str, PhyConfig); 2] {
    [
        (
            "logdist",
            "log-distance (paper)",
            PhyConfig::paper_default(),
        ),
        ("tworay", "two-ray ground", two_ray()),
    ]
}

fn axes(channel: &str, pm: f64) -> Axes {
    Axes::new()
        .with("channel", channel)
        .with("pm", format!("{pm:.0}"))
}

/// The propagation-model ablation grid.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new("ablation_channel", "Ablation: propagation model (TWO-FLOW)");
    e.render = render;
    for (key, _, phy) in channels() {
        for pm in PMS {
            e.push(
                &axes(key, pm),
                ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .phy(phy)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Ablation: propagation model (TWO-FLOW)",
        &["channel", "PM%", "correct%", "misdiag%", "MSB Kbps"],
    );
    for (key, display, _) in channels() {
        for pm in PMS {
            let a = axes(key, pm);
            t.row(&[
                display.into(),
                format!("{pm:.0}"),
                f2(r.mean(&a, metric::CORRECT_PCT)),
                f2(r.mean(&a, metric::MISDIAG_PCT)),
                kbps(r.mean(&a, metric::MSB_BPS)),
            ]);
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "ablation_channel".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
