//! Ablation: temporal coherence of shadowing. The paper (via ns-2)
//! redraws the Gaussian deviate per transmission; physical log-normal
//! shadowing is static per link. Coherent fading turns marginal links
//! into *persistent* carrier-sense asymmetries — the stress case for
//! the misdiagnosis tradeoff.

use airguard_exp::{f2, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_phy::Fading;

const PMS: [f64; 2] = [0.0, 50.0];

const FADINGS: [(&str, &str, Fading); 2] = [
    ("pertx", "per-transmission (paper)", Fading::PerTransmission),
    ("coherent", "coherent per link", Fading::Coherent),
];

fn axes(fading: &str, pm: f64) -> Axes {
    Axes::new()
        .with("fading", fading)
        .with("pm", format!("{pm:.0}"))
}

/// The shadowing-coherence ablation grid.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "ablation_fading",
        "Ablation: shadowing coherence (TWO-FLOW)",
    );
    e.render = render;
    for (key, _, fading) in FADINGS {
        for pm in PMS {
            e.push(
                &axes(key, pm),
                ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .fading(fading)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Ablation: shadowing coherence (TWO-FLOW)",
        &["fading", "PM%", "correct%", "misdiag%"],
    );
    for (key, display, _) in FADINGS {
        for pm in PMS {
            let a = axes(key, pm);
            t.row(&[
                display.into(),
                format!("{pm:.0}"),
                f2(r.mean(&a, metric::CORRECT_PCT)),
                f2(r.mean(&a, metric::MISDIAG_PCT)),
            ]);
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "ablation_fading".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
