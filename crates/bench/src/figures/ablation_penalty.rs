//! Ablation (§4.2): penalty shape. `P = D` alone lets moderate cheaters
//! keep an edge; the paper's capped-extra penalty pins them to fair
//! share; an aggressive 2·D penalty over-punishes honest noise.

use airguard_core::{CorrectConfig, CorrectionConfig};
use airguard_exp::{f2, kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

/// `(axis value, display name, penalty scale, extra cap)` per shape.
const SHAPES: [(&str, &str, f64, f64); 4] = [
    ("none", "none (diagnosis only)", 0.0, 0.0),
    ("pd", "P = D", 1.0, 0.0),
    ("paper", "P = D + min(D,8) [paper]", 1.0, 8.0),
    ("double", "P = 2D + min(D,8)", 2.0, 8.0),
];

fn axes(shape: &str, mode: &str) -> Axes {
    Axes::new().with("shape", shape).with("mode", mode)
}

fn cfg_for(scale: f64, cap: f64) -> CorrectConfig {
    let mut cfg = CorrectConfig::paper_default();
    cfg.monitor.correction = CorrectionConfig {
        penalty_scale: scale,
        extra_cap: cap,
        ..CorrectionConfig::paper_default()
    };
    cfg
}

/// The penalty-shape ablation: each shape at PM=60 (cheat) and PM=0.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "ablation_penalty",
        "Ablation: penalty shape (ZERO-FLOW, PM=60)",
    );
    e.render = render;
    for (key, _, scale, cap) in SHAPES {
        e.push(
            &axes(key, "cheat"),
            ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg_for(scale, cap))
                .misbehavior_percent(60.0),
        );
        e.push(
            &axes(key, "honest"),
            ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .correct_config(cfg_for(scale, cap)),
        );
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Ablation: penalty shape (ZERO-FLOW, PM=60)",
        &[
            "penalty",
            "MSB Kbps",
            "AVG Kbps",
            "fairness",
            "honest AVG Kbps (PM=0)",
        ],
    );
    for (key, display, _, _) in SHAPES {
        let cheat = axes(key, "cheat");
        let honest = axes(key, "honest");
        t.row(&[
            display.into(),
            kbps(r.mean(&cheat, metric::MSB_BPS)),
            kbps(r.mean(&cheat, metric::AVG_BPS)),
            f2(r.mean(&cheat, metric::FAIRNESS)),
            kbps(r.mean(&honest, metric::AVG_BPS)),
        ]);
    }
    Rendered {
        figures: vec![Figure {
            name: "ablation_penalty".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
