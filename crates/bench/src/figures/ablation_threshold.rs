//! Ablation (§4.3/§5): the diagnosis window W and threshold THRESH —
//! the speed/false-positive tradeoff.

use airguard_core::{CorrectConfig, DiagnosisConfig};
use airguard_exp::{f2, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

const WINDOWS: [usize; 3] = [3, 5, 10];
const THRESHES: [f64; 3] = [10.0, 20.0, 40.0];

fn axes(w: usize, thresh: f64) -> Axes {
    Axes::new()
        .with("w", w)
        .with("thresh", format!("{thresh:.0}"))
}

/// The (W, THRESH) grid at PM=50 on TWO-FLOW.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "ablation_threshold",
        "Ablation: (W, THRESH) grid (TWO-FLOW, PM=50)",
    );
    e.render = render;
    for w in WINDOWS {
        for thresh in THRESHES {
            let mut cfg = CorrectConfig::paper_default();
            cfg.monitor.diagnosis = DiagnosisConfig::new(w, thresh);
            e.push(
                &axes(w, thresh),
                ScenarioConfig::new(StandardScenario::TwoFlow)
                    .protocol(Protocol::Correct)
                    .correct_config(cfg)
                    .misbehavior_percent(50.0),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Ablation: (W, THRESH) grid (TWO-FLOW, PM=50)",
        &["W", "THRESH", "correct%", "misdiag%"],
    );
    for w in WINDOWS {
        for thresh in THRESHES {
            let a = axes(w, thresh);
            t.row(&[
                w.to_string(),
                format!("{thresh:.0}"),
                f2(r.mean(&a, metric::CORRECT_PCT)),
                f2(r.mean(&a, metric::MISDIAG_PCT)),
            ]);
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "ablation_threshold".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
