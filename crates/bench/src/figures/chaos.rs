//! Chaos grid: fault-injection intensity × misbehavior coefficient.
//!
//! The paper's robustness claim (§5.2) is that diagnosis stays accurate
//! under an imperfect channel. This grid probes the claim far past the
//! paper's shadowing model: every [`airguard_fault`] injector at once —
//! Gilbert–Elliott burst loss, node churn, control-frame corruption,
//! receiver clock drift — scaled by a single intensity knob and crossed
//! with the misbehavior coefficient. The `pm=0` rows are the
//! false-positive axis: every diagnosis there is a misdiagnosis by
//! construction, so `misdiag%` at `pm=0` *is* the false-positive
//! diagnosis rate per fault intensity.
//!
//! The `intensity=0` column builds a complete but all-zero `FaultPlan`:
//! [`FaultPlan::normalized`] collapses it to no plan at all, so those
//! cells share config digests (and cache entries, and bytes) with the
//! unfaulted baseline — the zero-cost guarantee of DESIGN.md §12.

use airguard_exp::{f2, kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{
    BurstLoss, ClockDrift, Corruption, CrashEvent, FaultPlan, Protocol, ScenarioConfig,
    StandardScenario,
};
use airguard_sim::SimDuration;

/// Fault intensity as a percentage of the full-chaos operating point.
const INTENSITIES: [u16; 4] = [0, 25, 50, 100];
const PMS: [f64; 3] = [0.0, 50.0, 90.0];

/// The composite fault plan at one intensity. All four injectors scale
/// together; at zero everything is a no-op and the plan normalizes
/// away entirely. Shared with the `detection_latency` grid so both
/// figures probe the same chaos operating points.
pub(crate) fn plan(intensity: u16) -> FaultPlan {
    let f = f64::from(intensity) / 100.0;
    let churn = if intensity == 0 {
        Vec::new()
    } else {
        vec![CrashEvent {
            // Node 1 is always a sender in the ZERO-FLOW circle; it
            // reboots mid-run with an outage that grows with intensity.
            node: 1,
            at: SimDuration::from_secs(1),
            down_for: SimDuration::from_micros(u64::from(intensity) * 20_000),
            // Full chaos also loses the stable storage holding the
            // monitor tables (a cold reboot).
            preserve_monitor: intensity < 100,
        }]
    };
    FaultPlan {
        burst_loss: Some(BurstLoss {
            p_enter: 0.02 * f,
            p_exit: 0.25,
            loss_good: 0.005 * f,
            loss_bad: 0.4 * f,
        }),
        churn,
        corruption: Some(Corruption {
            backoff_prob: 0.03 * f,
            backoff_max_delta: 8,
            attempt_prob: 0.03 * f,
            attempt_max_delta: 2,
        }),
        clock_drift: Some(ClockDrift {
            per_mille: i32::from(intensity) / 5,
            nodes: Vec::new(),
        }),
    }
}

fn axes(intensity: u16, pm: f64) -> Axes {
    Axes::new()
        .with("fault", intensity)
        .with("pm", format!("{pm:.0}"))
}

/// The chaos grid experiment.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "chaos",
        "Chaos grid: fault intensity x misbehavior (ZERO-FLOW)",
    );
    e.render = render;
    for intensity in INTENSITIES {
        for pm in PMS {
            let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .misbehavior_percent(pm)
                .fault(plan(intensity))
                .expect("chaos plans target node 1 of the standard topology with in-range probabilities"); // lint:allow(panic-expect) — registration-time config bug, not a runtime path
            e.push(&axes(intensity, pm), cfg);
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Chaos grid: fault intensity x misbehavior (ZERO-FLOW)",
        &["fault%", "PM%", "correct%", "misdiag%", "MSB Kbps"],
    );
    for intensity in INTENSITIES {
        for pm in PMS {
            let a = axes(intensity, pm);
            t.row(&[
                format!("{intensity}"),
                format!("{pm:.0}"),
                f2(r.mean(&a, metric::CORRECT_PCT)),
                f2(r.mean(&a, metric::MISDIAG_PCT)),
                kbps(r.mean(&a, metric::MSB_BPS)),
            ]);
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "chaos".into(),
            table: t,
        }],
        notes: vec![
            "misdiag% on the PM=0 rows is the false-positive diagnosis rate: every \
             sender is honest there, so any flagged node was flagged by injected \
             faults alone."
                .to_owned(),
        ],
    }
}
