//! Extension experiment: the *delay* side of selfish misbehavior (§3.1
//! defines it as seeking "higher throughput or lower delay"). Reports
//! mean MAC delay of the cheater vs honest senders, 802.11 vs CORRECT.

use airguard_exp::{f2, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

use super::proto_key;
use crate::pm_sweep;

fn axes(proto: Protocol, pm: f64) -> Axes {
    Axes::new()
        .with("proto", proto_key(proto))
        .with("pm", format!("{pm:.0}"))
}

/// The delay sweep: PM × {802.11, CORRECT} on ZERO-FLOW.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "delay_report",
        "Extension: mean MAC delay (ms) vs PM, ZERO-FLOW",
    );
    e.render = render;
    for proto in [Protocol::Dot11, Protocol::Correct] {
        for pm in pm_sweep() {
            e.push(
                &axes(proto, pm),
                ScenarioConfig::new(StandardScenario::ZeroFlow)
                    .protocol(proto)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Extension: mean MAC delay (ms) vs PM, ZERO-FLOW",
        &[
            "PM%",
            "802.11-MSB",
            "802.11-AVG",
            "CORRECT-MSB",
            "CORRECT-AVG",
        ],
    );
    for pm in pm_sweep() {
        let mut cells = vec![format!("{pm:.0}")];
        for proto in [Protocol::Dot11, Protocol::Correct] {
            let a = axes(proto, pm);
            cells.push(f2(r.mean(&a, metric::MSB_DELAY_MS)));
            cells.push(f2(r.mean(&a, metric::AVG_DELAY_MS)));
        }
        t.row(&cells);
    }
    Rendered {
        figures: vec![Figure {
            name: "delay_report".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
