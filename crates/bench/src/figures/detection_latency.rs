//! Detection latency: how long the monitor takes to react to a
//! cheater, swept over misbehavior coefficient × fault intensity.
//!
//! The paper reports *whether* misbehavior is diagnosed (Fig. 4/5);
//! this grid measures *how fast*, in virtual time. Every cell runs
//! with a masked telemetry sink ([`DETECTION_OBSERVE_MASK`]): the
//! runner folds the exchange-id-threaded event stream into per-station
//! spans and records two histograms per run —
//! onset→first-`PenaltyAdded` and onset→first-`DiagnosisFlagged`
//! latency (see `airguard_obs::SpanSet`). Rendering pools the
//! fixed-geometry buckets across seeds and reads the median and p99 as
//! bucket upper bounds, so the table (and CSV) is byte-identical for
//! any worker count or cache state.
//!
//! The fault axis reuses the chaos grid's composite plan: burst loss
//! and corruption destroy monitor observations, so detection latency
//! is expected to stretch with intensity — the quantitative cost of an
//! imperfect channel that the paper's §5.2 robustness claim leaves
//! unmeasured.

use airguard_exp::{f2, Axes, Experiment, ExperimentResult, Figure, PointResult, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_obs::{DETECTION_OBSERVE_MASK, DIAGNOSIS_LATENCY_HIST, PENALTY_LATENCY_HIST};

use super::chaos;

/// Fault intensity as a percentage of the full-chaos operating point.
const INTENSITIES: [u16; 3] = [0, 50, 100];
/// Misbehavior coefficients; all non-zero — a compliant sender has no
/// onset and therefore no latency to measure.
const PMS: [f64; 3] = [30.0, 60.0, 90.0];

fn axes(intensity: u16, pm: f64) -> Axes {
    Axes::new()
        .with("fault", intensity)
        .with("pm", format!("{pm:.0}"))
}

/// The detection-latency grid experiment.
///
/// # Panics
///
/// Panics at registration time if a chaos plan fails validation — a
/// sweep-definition bug, not a runtime path.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "detection_latency",
        "Detection latency: onset -> penalty/diagnosis vs PM x fault intensity",
    );
    e.render = render;
    e.jsonl_default = true;
    for intensity in INTENSITIES {
        for pm in PMS {
            let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .misbehavior_percent(pm)
                .fault(chaos::plan(intensity))
                .expect("chaos plans target node 1 of the standard topology with in-range probabilities") // lint:allow(panic-expect) — registration-time config bug, not a runtime path
                .observe(DETECTION_OBSERVE_MASK);
            e.push(&axes(intensity, pm), cfg);
        }
    }
    e
}

/// Pools one named histogram over a point's successful cells. Bounds
/// are fixed (`DETECTION_LATENCY_BOUNDS_US`) so pooling is a per-bucket
/// count sum; cells missing the histogram (no misbehavior onset
/// observed) contribute nothing.
pub(crate) fn pooled(point: &PointResult, name: &str) -> (Vec<u64>, Vec<u64>, u64) {
    let mut bounds: Vec<u64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut total = 0;
    for cell in point.ok_cells() {
        let Some(h) = cell.histograms.get(name) else {
            continue;
        };
        if bounds.is_empty() {
            bounds.clone_from(&h.bounds);
            counts = vec![0; h.counts.len()];
        }
        if h.bounds == bounds {
            for (acc, c) in counts.iter_mut().zip(&h.counts) {
                *acc += c;
            }
            total += h.total;
        }
    }
    (bounds, counts, total)
}

/// Deterministic quantile over pooled buckets, reported in
/// milliseconds: the inclusive upper bound of the bucket where the
/// cumulative count first reaches `ceil(q · total)`. Samples in the
/// overflow bucket saturate to the last bound; an empty histogram
/// reads 0.
pub(crate) fn percentile_ms(bounds: &[u64], counts: &[u64], total: u64, q: f64) -> f64 {
    if total == 0 || bounds.is_empty() {
        return 0.0;
    }
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (i, &count) in counts.iter().enumerate() {
        cumulative += count;
        if cumulative >= rank {
            let upper = bounds.get(i).copied().unwrap_or(bounds[bounds.len() - 1]);
            return upper as f64 / 1_000.0;
        }
    }
    bounds[bounds.len() - 1] as f64 / 1_000.0
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Detection latency (virtual ms): onset -> penalty/diagnosis",
        &[
            "fault%", "PM%", "pen p50", "pen p99", "diag p50", "diag p99", "samples",
        ],
    );
    for intensity in INTENSITIES {
        for pm in PMS {
            let point = r.point(&axes(intensity, pm));
            let (pb, pc, pt) = pooled(point, PENALTY_LATENCY_HIST);
            let (db, dc, dt) = pooled(point, DIAGNOSIS_LATENCY_HIST);
            t.row(&[
                format!("{intensity}"),
                format!("{pm:.0}"),
                f2(percentile_ms(&pb, &pc, pt, 0.50)),
                f2(percentile_ms(&pb, &pc, pt, 0.99)),
                f2(percentile_ms(&db, &dc, dt, 0.50)),
                f2(percentile_ms(&db, &dc, dt, 0.99)),
                format!("{pt}"),
            ]);
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "detection_latency".into(),
            table: t,
        }],
        notes: vec![
            "Latencies are virtual time from a cheater's first channel access to the \
             monitor's first PenaltyAdded / DiagnosisFlagged verdict, pooled over \
             seeds; p50/p99 are histogram bucket upper bounds, so the table is \
             byte-identical across reruns and worker counts."
                .to_owned(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_pm_times_fault_with_observation_enabled() {
        let e = experiment();
        assert_eq!(e.points.len(), INTENSITIES.len() * PMS.len());
        assert!(e.jsonl_default, "the latency report is the figure's point");
        for p in &e.points {
            assert!(
                p.cfg.identity().contains("observe_mask"),
                "every cell must run observed: {}",
                p.key
            );
        }
    }

    #[test]
    fn percentile_reads_bucket_upper_bounds() {
        let bounds = [1_000, 5_000, 10_000];
        // 10 samples: 2 in <=1ms, 6 in <=5ms, 1 in <=10ms, 1 overflow.
        let counts = [2, 6, 1, 1];
        assert_eq!(percentile_ms(&bounds, &counts, 10, 0.50), 5.0);
        assert_eq!(percentile_ms(&bounds, &counts, 10, 0.99), 10.0);
        // The overflow sample saturates to the last bound.
        assert_eq!(percentile_ms(&bounds, &counts, 10, 1.0), 10.0);
        assert_eq!(percentile_ms(&bounds, &counts, 0, 0.5), 0.0);
        assert_eq!(percentile_ms(&[], &[], 0, 0.5), 0.0);
    }

    #[test]
    fn pooling_sums_counts_across_cells() {
        use airguard_obs::HistogramSnapshot;
        use std::collections::BTreeMap;
        let hist = |counts: Vec<u64>, total: u64| HistogramSnapshot {
            bounds: vec![1_000, 5_000],
            counts,
            total,
            sum: 0,
        };
        let cell = |counts: Vec<u64>, total: u64| {
            let mut histograms = BTreeMap::new();
            histograms.insert(PENALTY_LATENCY_HIST.to_owned(), hist(counts, total));
            airguard_exp::CellMetrics {
                seed: 1,
                elapsed_us: 0,
                wall_us: 0,
                summary_digest: String::new(),
                scalars: BTreeMap::new(),
                series: Vec::new(),
                counters: BTreeMap::new(),
                histograms,
            }
        };
        let point = PointResult {
            key: "k".into(),
            digest: "d".into(),
            cells: vec![
                Ok(cell(vec![1, 2, 0], 3)),
                Err("failed".into()),
                Ok(cell(vec![0, 1, 1], 2)),
            ],
        };
        let (bounds, counts, total) = pooled(&point, PENALTY_LATENCY_HIST);
        assert_eq!(bounds, vec![1_000, 5_000]);
        assert_eq!(counts, vec![1, 3, 1]);
        assert_eq!(total, 5);
        let (nb, _, nt) = pooled(&point, DIAGNOSIS_LATENCY_HIST);
        assert!(nb.is_empty());
        assert_eq!(nt, 0);
    }
}
