//! Detector duel: the three deviation detectors head-to-head —
//! detection delay vs. false-positive rate, swept over misbehavior
//! coefficient × fault intensity.
//!
//! ROADMAP item 4 asks how the paper's window diagnosis compares with
//! sequential (CUSUM) testing and contention-window estimation. Every
//! cell runs the same observed ZERO-FLOW scenario as the
//! `detection_latency` grid, but with the monitor's
//! [`DeviationDetector`](airguard_core::DeviationDetector) swapped via
//! [`ScenarioConfig::detector`]: diagnosis latency lands in the
//! per-detector histogram named by
//! [`airguard_obs::detector_latency_hists`], while the false-positive
//! rate is the existing misdiagnosis percentage (honest senders flagged)
//! from the same run. Percentiles read pooled fixed-geometry buckets,
//! so the table and CSV are byte-identical for any worker count, cache
//! state, or shard-worker setting.
//!
//! `airguard-bench --detector KIND` (or `AIRGUARD_DETECTOR`) restricts
//! the grid to one detector; rendering then emits only the rows whose
//! points exist, keeping the full-grid output byte-for-byte unchanged.

use airguard_core::DetectorConfig;
use airguard_exp::{f2, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use airguard_obs::{detector_latency_hists, DETECTION_OBSERVE_MASK};

use super::chaos;
use super::detection_latency::{percentile_ms, pooled};

/// The contenders, in presentation order. Default knobs throughout —
/// the duel compares detection *schemes*, not tuning budgets.
const DETECTOR_KINDS: [&str; 3] = ["window", "cusum", "cw"];
/// Fault intensity as a percentage of the full-chaos operating point.
const INTENSITIES: [u16; 3] = [0, 50, 100];
/// Misbehavior coefficients; all non-zero so every cell has onsets to
/// time, while the honest senders in the same cell supply the
/// false-positive denominator.
const PMS: [f64; 3] = [30.0, 60.0, 90.0];

fn axes(detector: &str, intensity: u16, pm: f64) -> Axes {
    Axes::new()
        .with("detector", detector)
        .with("fault", intensity)
        .with("pm", format!("{pm:.0}"))
}

/// The full three-detector duel.
#[must_use]
pub fn experiment() -> Experiment {
    experiment_for(None)
}

/// The duel restricted to `only` (a detector kind), or the full grid
/// when `None`. The CLI's `--detector` flag routes through here.
///
/// # Panics
///
/// Panics at registration time if `only` names an unknown detector (the
/// CLI validates first) or a chaos plan fails validation — sweep
/// definition bugs, not runtime paths.
#[must_use]
pub fn experiment_for(only: Option<&str>) -> Experiment {
    let mut e = Experiment::new(
        "detector_duel",
        "Detector duel: window vs cusum vs cw - detection delay and false positives",
    );
    e.render = render;
    e.jsonl_default = true;
    for kind in DETECTOR_KINDS {
        if only.is_some_and(|o| o != kind) {
            continue;
        }
        let detector = DetectorConfig::from_kind(kind)
            .expect("DETECTOR_KINDS entries are the canonical kind names"); // lint:allow(panic-expect) — registration-time config bug, not a runtime path
        for intensity in INTENSITIES {
            for pm in PMS {
                let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
                    .protocol(Protocol::Correct)
                    .misbehavior_percent(pm)
                    .detector(detector)
                    .fault(chaos::plan(intensity))
                    .expect("chaos plans target node 1 of the standard topology with in-range probabilities") // lint:allow(panic-expect) — registration-time config bug, not a runtime path
                    .observe(DETECTION_OBSERVE_MASK);
                e.push(&axes(kind, intensity, pm), cfg);
            }
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Detector duel: diagnosis delay (virtual ms) and false-positive %",
        &[
            "detector", "fault%", "PM%", "diag p50", "diag p99", "correct%", "fp%", "samples",
        ],
    );
    for kind in DETECTOR_KINDS {
        let (_, diagnosis_hist) = detector_latency_hists(kind);
        for intensity in INTENSITIES {
            for pm in PMS {
                let a = axes(kind, intensity, pm);
                // A `--detector`-restricted run collected only one
                // detector's points; skip the others instead of
                // panicking in the lookup.
                let Some(point) = r.points.iter().find(|p| p.key == a.key()) else {
                    continue;
                };
                let (db, dc, dt) = pooled(point, &diagnosis_hist);
                t.row(&[
                    kind.to_owned(),
                    format!("{intensity}"),
                    format!("{pm:.0}"),
                    f2(percentile_ms(&db, &dc, dt, 0.50)),
                    f2(percentile_ms(&db, &dc, dt, 0.99)),
                    f2(r.mean(&a, metric::CORRECT_PCT)),
                    f2(r.mean(&a, metric::MISDIAG_PCT)),
                    format!("{dt}"),
                ]);
            }
        }
    }
    Rendered {
        figures: vec![Figure {
            name: "detector_duel".into(),
            table: t,
        }],
        notes: vec![
            "Each row is one detector x fault x PM cell of the same observed \
             ZERO-FLOW scenario: `diag p50`/`diag p99` are onset -> first \
             DiagnosisFlagged latencies (histogram bucket upper bounds pooled \
             over seeds, so byte-identical across reruns and worker counts), \
             `fp%` is the share of packets from honest senders that the \
             detector flagged, and `samples` counts diagnosed cheater onsets."
                .to_owned(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_covers_detector_times_fault_times_pm() {
        let e = experiment();
        assert_eq!(
            e.points.len(),
            DETECTOR_KINDS.len() * INTENSITIES.len() * PMS.len()
        );
        assert!(e.jsonl_default);
        for p in &e.points {
            assert!(
                p.cfg.identity().contains("observe_mask"),
                "every cell must run observed: {}",
                p.key
            );
        }
        // The detector must fork the cache digest: the same fault/pm
        // cell under different detectors are different points AND
        // different configs.
        let base = |key: &str| {
            e.points
                .iter()
                .find(|p| p.key.contains(key))
                .expect("grid point exists")
        };
        let w = base("detector=window,fault=0,pm=30");
        let c = base("detector=cusum,fault=0,pm=30");
        assert_ne!(w.cfg.config_digest(), c.cfg.config_digest());
    }

    #[test]
    fn restricting_to_one_detector_keeps_only_its_points() {
        let e = experiment_for(Some("cusum"));
        assert_eq!(e.points.len(), INTENSITIES.len() * PMS.len());
        for p in &e.points {
            assert!(p.key.starts_with("detector=cusum,"), "{}", p.key);
        }
    }

    #[test]
    fn detector_kinds_match_the_canonical_names() {
        for kind in DETECTOR_KINDS {
            let cfg = DetectorConfig::from_kind(kind).expect("canonical");
            assert_eq!(cfg.kind(), kind);
        }
    }
}
