//! Fig. 4: diagnosis accuracy vs magnitude of misbehavior (PM), for the
//! ZERO-FLOW and TWO-FLOW scenarios under the proposed protocol.

use airguard_exp::{f2, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

use super::sc_key;
use crate::pm_sweep;

fn axes(sc: StandardScenario, pm: f64) -> Axes {
    Axes::new()
        .with("scenario", sc_key(sc))
        .with("pm", format!("{pm:.0}"))
}

/// The fig4 sweep: PM × {ZERO-FLOW, TWO-FLOW} under CORRECT.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "fig4",
        "Fig. 4: correct diagnosis % and misdiagnosis % vs PM",
    );
    e.jsonl_default = true;
    e.render = render;
    for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
        for pm in pm_sweep() {
            e.push(
                &axes(sc, pm),
                ScenarioConfig::new(sc)
                    .protocol(Protocol::Correct)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Fig. 4: correct diagnosis % and misdiagnosis % vs PM",
        &[
            "PM%",
            "zero:correct%",
            "zero:misdiag%",
            "two:correct%",
            "two:misdiag%",
        ],
    );
    for pm in pm_sweep() {
        let mut cells = vec![format!("{pm:.0}")];
        for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
            let a = axes(sc, pm);
            cells.push(f2(r.mean(&a, metric::CORRECT_PCT)));
            cells.push(f2(r.mean(&a, metric::MISDIAG_PCT)));
        }
        t.row(&cells);
    }
    Rendered {
        figures: vec![Figure {
            name: "fig4".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
