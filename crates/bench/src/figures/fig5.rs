//! Fig. 5: throughput of the misbehaving node (MSB) and the average
//! well-behaved node (AVG), IEEE 802.11 vs the proposed scheme
//! (CORRECT), vs PM. Fig. 3 topology, 8 senders, node 3 misbehaving.

use airguard_exp::{kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

use super::proto_key;
use crate::pm_sweep;

fn axes(proto: Protocol, pm: f64) -> Axes {
    Axes::new()
        .with("proto", proto_key(proto))
        .with("pm", format!("{pm:.0}"))
}

/// The fig5 sweep: PM × {802.11, CORRECT} on ZERO-FLOW.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new("fig5", "Fig. 5: throughput (Kbps) vs PM, 802.11 vs CORRECT");
    e.render = render;
    for proto in [Protocol::Dot11, Protocol::Correct] {
        for pm in pm_sweep() {
            e.push(
                &axes(proto, pm),
                ScenarioConfig::new(StandardScenario::ZeroFlow)
                    .protocol(proto)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Fig. 5: throughput (Kbps) vs PM, 802.11 vs CORRECT",
        &[
            "PM%",
            "802.11-MSB",
            "802.11-AVG",
            "CORRECT-MSB",
            "CORRECT-AVG",
        ],
    );
    for pm in pm_sweep() {
        let mut cells = vec![format!("{pm:.0}")];
        for proto in [Protocol::Dot11, Protocol::Correct] {
            let a = axes(proto, pm);
            cells.push(kbps(r.mean(&a, metric::MSB_BPS)));
            cells.push(kbps(r.mean(&a, metric::AVG_BPS)));
        }
        t.row(&cells);
    }
    Rendered {
        figures: vec![Figure {
            name: "fig5".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
