//! Fig. 6: average per-node throughput *without* misbehavior for network
//! sizes 1–64, 802.11 vs CORRECT, ZERO-FLOW and TWO-FLOW.

use airguard_exp::{kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

use super::{proto_key, sc_key};

/// Network sizes swept by Figs. 6 and 7.
pub(crate) const SIZES: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

pub(crate) fn axes(sc: StandardScenario, proto: Protocol, n: usize) -> Axes {
    Axes::new()
        .with("scenario", sc_key(sc))
        .with("proto", proto_key(proto))
        .with("n", n)
}

/// Registers every scenario × protocol × size point shared by Figs. 6/7.
pub(crate) fn push_size_grid(e: &mut Experiment) {
    for n in SIZES {
        for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
            for proto in [Protocol::Dot11, Protocol::Correct] {
                e.push(
                    &axes(sc, proto, n),
                    ScenarioConfig::new(sc).protocol(proto).n_senders(n),
                );
            }
        }
    }
}

/// The fig6 sweep: network size × scenario × protocol, no misbehavior.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "fig6",
        "Fig. 6: avg per-node throughput (Kbps) vs network size, no misbehavior",
    );
    e.render = render;
    push_size_grid(&mut e);
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Fig. 6: avg per-node throughput (Kbps) vs network size, no misbehavior",
        &[
            "senders",
            "zero:802.11",
            "zero:CORRECT",
            "two:802.11",
            "two:CORRECT",
        ],
    );
    for n in SIZES {
        let mut cells = vec![n.to_string()];
        for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
            for proto in [Protocol::Dot11, Protocol::Correct] {
                cells.push(kbps(r.mean(&axes(sc, proto, n), metric::AVG_BPS)));
            }
        }
        t.row(&cells);
    }
    Rendered {
        figures: vec![Figure {
            name: "fig6".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
