//! Fig. 7: Jain's fairness index for network sizes 1–64 without
//! misbehavior, 802.11 vs CORRECT, ZERO-FLOW and TWO-FLOW.
//!
//! Runs the *same* grid as Fig. 6 — with the result cache enabled the
//! second of the two figures re-reads every cell instead of
//! re-simulating it.

use airguard_exp::{metric, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, StandardScenario};

use super::fig6::{axes, push_size_grid, SIZES};

/// The fig7 sweep: identical grid to fig6, rendered as fairness.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "fig7",
        "Fig. 7: Jain's fairness index vs network size, no misbehavior",
    );
    e.render = render;
    push_size_grid(&mut e);
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new(
        "Fig. 7: Jain's fairness index vs network size, no misbehavior",
        &[
            "senders",
            "zero:802.11",
            "zero:CORRECT",
            "two:802.11",
            "two:CORRECT",
        ],
    );
    for n in SIZES {
        let mut cells = vec![n.to_string()];
        for sc in [StandardScenario::ZeroFlow, StandardScenario::TwoFlow] {
            for proto in [Protocol::Dot11, Protocol::Correct] {
                cells.push(format!(
                    "{:.4}",
                    r.mean(&axes(sc, proto, n), metric::FAIRNESS)
                ));
            }
        }
        t.row(&cells);
    }
    Rendered {
        figures: vec![Figure {
            name: "fig7".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
