//! Fig. 8: responsiveness of the diagnosis scheme — correct diagnosis %
//! per one-second interval, TWO-FLOW, PM ∈ {40, 80}, pooled over the
//! seed set.

use airguard_exp::{Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

const PMS: [f64; 2] = [40.0, 80.0];

fn axes(pm: f64) -> Axes {
    Axes::new().with("pm", format!("{pm:.0}"))
}

/// The fig8 sweep: PM ∈ {40, 80} on TWO-FLOW under CORRECT.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "fig8",
        "Fig. 8: correct diagnosis % per 1 s interval (TWO-FLOW)",
    );
    e.render = render;
    for pm in PMS {
        e.push(
            &axes(pm),
            ScenarioConfig::new(StandardScenario::TwoFlow)
                .protocol(Protocol::Correct)
                .misbehavior_percent(pm),
        );
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let pooled40 = r.point(&axes(PMS[0])).pooled_series();
    let pooled80 = r.point(&axes(PMS[1])).pooled_series();
    let mut t = Table::new(
        "Fig. 8: correct diagnosis % per 1 s interval (TWO-FLOW)",
        &["t(s)", "PM=40%", "PM=80%"],
    );
    for (i, (b40, b80)) in pooled40.iter().zip(&pooled80).enumerate() {
        t.row(&[
            i.to_string(),
            format!("{:.1}", b40.percent()),
            format!("{:.1}", b80.percent()),
        ]);
    }
    Rendered {
        figures: vec![Figure {
            name: "fig8".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}
