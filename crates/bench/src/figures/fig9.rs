//! Fig. 9: protocol performance on random topologies — 40 nodes in
//! 1500 m × 700 m, 5 random misbehaving, each node running a backlogged
//! CBR flow to a neighbor. (a) diagnosis accuracy vs PM under CORRECT;
//! (b) MSB/AVG throughput vs PM for 802.11 and CORRECT.

use airguard_exp::{f2, kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

use super::proto_key;
use crate::pm_sweep;

fn axes(proto: Protocol, pm: f64) -> Axes {
    Axes::new()
        .with("proto", proto_key(proto))
        .with("pm", format!("{pm:.0}"))
}

/// The fig9 sweep: PM × {802.11, CORRECT} on random topologies.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "fig9",
        "Fig. 9: random topologies — accuracy and throughput",
    );
    e.render = render;
    for proto in [Protocol::Correct, Protocol::Dot11] {
        for pm in pm_sweep() {
            e.push(
                &axes(proto, pm),
                ScenarioConfig::new(StandardScenario::Random)
                    .protocol(proto)
                    .misbehavior_percent(pm),
            );
        }
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut a = Table::new(
        "Fig. 9(a): diagnosis accuracy vs PM, random topologies",
        &["PM%", "correct%", "misdiag%"],
    );
    let mut b = Table::new(
        "Fig. 9(b): throughput (Kbps) vs PM, random topologies",
        &[
            "PM%",
            "802.11-MSB",
            "802.11-AVG",
            "CORRECT-MSB",
            "CORRECT-AVG",
        ],
    );
    for pm in pm_sweep() {
        let correct = axes(Protocol::Correct, pm);
        let dot11 = axes(Protocol::Dot11, pm);
        a.row(&[
            format!("{pm:.0}"),
            f2(r.mean(&correct, metric::CORRECT_PCT)),
            f2(r.mean(&correct, metric::MISDIAG_PCT)),
        ]);
        b.row(&[
            format!("{pm:.0}"),
            kbps(r.mean(&dot11, metric::MSB_BPS)),
            kbps(r.mean(&dot11, metric::AVG_BPS)),
            kbps(r.mean(&correct, metric::MSB_BPS)),
            kbps(r.mean(&correct, metric::AVG_BPS)),
        ]);
    }
    Rendered {
        figures: vec![
            Figure {
                name: "fig9a".into(),
                table: a,
            },
            Figure {
                name: "fig9b".into(),
                table: b,
            },
        ],
        notes: Vec::new(),
    }
}
