//! §1 intro claim: under plain 802.11, one of 8 senders drawing backoff
//! from [0, CW/4] degrades the throughput of the other 7 by up to ~50 %.

use airguard_exp::{kbps, metric, Axes, Experiment, ExperimentResult, Figure, Rendered, Table};
use airguard_mac::Selfish;
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn axes(variant: &str) -> Axes {
    Axes::new().with("variant", variant)
}

/// The intro-claim pair: all-honest baseline vs one [0, CW/4] cheater.
#[must_use]
pub fn experiment() -> Experiment {
    let mut e = Experiment::new(
        "intro_claim",
        "Intro claim: one [0, CW/4] cheater among 8 senders (802.11)",
    );
    e.render = render;
    let base = ScenarioConfig::new(StandardScenario::ZeroFlow).protocol(Protocol::Dot11);
    e.push(&axes("fair"), base.clone());
    e.push(&axes("cheat"), base.strategy(Selfish::QuarterWindow));
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let fair_share = r.mean(&axes("fair"), metric::AVG_BPS);
    let msb = r.mean(&axes("cheat"), metric::MSB_BPS);
    let avg = r.mean(&axes("cheat"), metric::AVG_BPS);

    let mut t = Table::new(
        "Intro claim: one [0, CW/4] cheater among 8 senders (802.11)",
        &["series", "Kbps", "vs fair share"],
    );
    t.row(&[
        "fair share (all honest)".into(),
        kbps(fair_share),
        "100.0%".into(),
    ]);
    t.row(&[
        "cheater (MSB)".into(),
        kbps(msb),
        format!("{:.1}%", 100.0 * msb / fair_share),
    ]);
    t.row(&[
        "honest avg (AVG)".into(),
        kbps(avg),
        format!("{:.1}%", 100.0 * avg / fair_share),
    ]);
    Rendered {
        figures: vec![Figure {
            name: "intro_claim".into(),
            table: t,
        }],
        notes: vec![format!(
            "Honest senders degraded to {:.1}% of fair share (paper: \"as much as 50%\").",
            100.0 * avg / fair_share
        )],
    }
}
