//! Declarative sweep registrations: one [`Experiment`] per published
//! figure, table, or ablation of the paper.
//!
//! Each module builds its grid (`points`) and a render function; the
//! engine in `airguard-exp` owns seeds, scheduling, caching, and
//! collection. Registration order here is the `--list` order.

use airguard_exp::Experiment;
use airguard_net::{Protocol, StandardScenario};

pub mod ablation_access;
pub mod ablation_adaptive;
pub mod ablation_alpha;
pub mod ablation_channel;
pub mod ablation_fading;
pub mod ablation_penalty;
pub mod ablation_threshold;
pub mod chaos;
pub mod delay_report;
pub mod detection_latency;
pub mod detector_duel;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod intro_claim;

/// Every registered experiment, in presentation order.
#[must_use]
pub fn all() -> Vec<Experiment> {
    vec![
        intro_claim::experiment(),
        fig4::experiment(),
        fig5::experiment(),
        fig6::experiment(),
        fig7::experiment(),
        fig8::experiment(),
        fig9::experiment(),
        delay_report::experiment(),
        ablation_access::experiment(),
        ablation_adaptive::experiment(),
        ablation_alpha::experiment(),
        ablation_channel::experiment(),
        ablation_fading::experiment(),
        ablation_penalty::experiment(),
        ablation_threshold::experiment(),
        chaos::experiment(),
        detection_latency::experiment(),
        detector_duel::experiment(),
    ]
}

/// Looks an experiment up by registry name.
#[must_use]
pub fn find(name: &str) -> Option<Experiment> {
    all().into_iter().find(|e| e.name == name)
}

/// Short axis value naming a scenario.
pub(crate) fn sc_key(sc: StandardScenario) -> &'static str {
    match sc {
        StandardScenario::ZeroFlow => "zero",
        StandardScenario::TwoFlow => "two",
        StandardScenario::Random => "random",
        StandardScenario::Grid => "grid",
        StandardScenario::Campus => "campus",
        StandardScenario::Stadium => "stadium",
    }
}

/// Short axis value naming a protocol.
pub(crate) fn proto_key(proto: Protocol) -> &'static str {
    match proto {
        Protocol::Dot11 => "dot11",
        Protocol::Correct => "correct",
    }
}
