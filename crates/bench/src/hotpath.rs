//! The `--figure hotpath` perf harness: the repo's events/sec
//! trajectory point.
//!
//! Unlike every other figure this is not a paper sweep — it measures
//! the *simulator itself*:
//!
//! * **micro**: a canned TWO-FLOW run (the determinism-test scenario)
//!   executed over a small seed set, reporting scheduler events per
//!   wall-clock second (best of [`REPS`] repetitions);
//! * **macro**: the fig4 sweep at downscaled settings through the
//!   experiment engine with the cache disabled, reporting wall time.
//!
//! Results land in `BENCH_hotpath.json` in the working directory. The
//! first measurement ever taken is pinned as the `"before"` block
//! (the pre-refactor baseline); subsequent runs refresh `"after"` and
//! report the speedup against the pinned baseline, so the committed
//! file records the hot-path overhaul's before/after trajectory.

use std::time::Instant;

use airguard_exp::{run_experiment, RunOptions};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

use crate::figures;

/// Repetitions of the micro benchmark; the best (highest events/sec)
/// repetition is reported, which filters scheduler noise on shared CI
/// machines.
const REPS: usize = 3;

/// Canned micro settings: the harness *downscales only* — explicit
/// `--seeds`/`--secs` below these caps shrink the run, the paper
/// defaults never inflate it.
const MICRO_SEEDS: u64 = 3;
const MICRO_SECS: u64 = 20;
const MACRO_SEEDS: u64 = 2;
const MACRO_SECS: u64 = 2;

/// Where the trajectory file lives (working directory = repo root).
pub const REPORT_PATH: &str = "BENCH_hotpath.json";

/// One measured block of the trajectory file.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Scheduler events delivered across the whole seed set.
    pub events: u64,
    /// Best wall-clock seconds over [`REPS`] repetitions.
    pub wall_s: f64,
    /// `events / wall_s` of the best repetition.
    pub events_per_sec: f64,
    /// Seed-set size the block was measured at.
    pub seeds: u64,
    /// Simulated seconds per run the block was measured at.
    pub secs: u64,
}

impl Measurement {
    fn to_json(&self) -> String {
        format!(
            "{{\"events\":{},\"wall_s\":{:.4},\"events_per_sec\":{:.0},\"seeds\":{},\"secs\":{}}}",
            self.events, self.wall_s, self.events_per_sec, self.seeds, self.secs
        )
    }

    /// Comparable measurements were taken at the same scale.
    #[must_use]
    pub fn same_scale(&self, other: &Measurement) -> bool {
        self.seeds == other.seeds && self.secs == other.secs
    }
}

/// The canned TWO-FLOW micro scenario (mirrors `tests/determinism.rs`
/// so the measured loop is exactly the replay-verified one).
fn micro_scenario(seed: u64, secs: u64) -> ScenarioConfig {
    ScenarioConfig::new(StandardScenario::TwoFlow)
        .protocol(Protocol::Correct)
        .n_senders(4)
        .misbehavior_percent(50.0)
        .sim_time_secs(secs)
        .seed(seed)
}

/// Runs the micro benchmark once: every seed back to back, timed.
fn micro_rep(seeds: u64, secs: u64) -> (u64, f64) {
    let start = Instant::now();
    let mut events = 0;
    for seed in 1..=seeds {
        events += micro_scenario(seed, secs).run().events;
    }
    (events, start.elapsed().as_secs_f64())
}

/// Best-of-[`REPS`] micro measurement at the given scale.
#[must_use]
pub fn measure_micro(seeds: u64, secs: u64) -> Measurement {
    let mut best: Option<(u64, f64)> = None;
    for _ in 0..REPS {
        let (events, wall) = micro_rep(seeds, secs);
        if best.is_none_or(|(_, w)| wall < w) {
            best = Some((events, wall));
        }
    }
    let (events, wall_s) = best.expect("REPS > 0"); // lint:allow(panic-expect) — loop above always runs at least once
    Measurement {
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s,
        seeds,
        secs,
    }
}

/// Wall time of the fig4 sweep (cache disabled) through the engine.
fn measure_macro(seeds: u64, secs: u64, workers: usize) -> (usize, f64) {
    let exp = figures::fig4::experiment();
    let mut opts = RunOptions::new(seeds, secs);
    opts.workers = workers;
    opts.cache = None;
    let cells = exp.points.len() * seeds as usize;
    let start = Instant::now();
    let _ = run_experiment(&exp, &opts);
    (cells, start.elapsed().as_secs_f64())
}

/// Extracts `"key":<number>` from a JSON block with a flat scan; good
/// enough to re-read the file this module itself writes.
fn field_f64(block: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = block.find(&pat)? + pat.len();
    let rest = &block[at..];
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Re-reads one named measurement block from a previously written
/// trajectory file.
fn read_block(json: &str, name: &str) -> Option<Measurement> {
    let at = json.find(&format!("\"{name}\":{{"))?;
    let block = &json[at..];
    let end = block.find('}')?;
    let block = &block[..end];
    Some(Measurement {
        events: field_f64(block, "events")? as u64,
        wall_s: field_f64(block, "wall_s")?,
        events_per_sec: field_f64(block, "events_per_sec")?,
        seeds: field_f64(block, "seeds")? as u64,
        secs: field_f64(block, "secs")? as u64,
    })
}

/// The pinned pre-refactor baseline: the `before` block if the file
/// already has one, otherwise the previous `after` (first measurement
/// ever taken becomes the baseline forever).
#[must_use]
pub fn pinned_baseline(previous: &str) -> Option<Measurement> {
    read_block(previous, "before").or_else(|| read_block(previous, "after"))
}

/// Renders the trajectory file.
#[must_use]
pub fn render_report(
    before: Option<&Measurement>,
    after: &Measurement,
    fig4_cells: usize,
    fig4_wall_s: f64,
) -> String {
    let mut out = String::from("{\"schema\":\"airguard.hotpath.v1\",");
    out.push_str("\"microbench\":\"two-flow, correct protocol, 4 senders, pm=50\",");
    if let Some(b) = before {
        out.push_str(&format!("\"before\":{},", b.to_json()));
    }
    out.push_str(&format!("\"after\":{},", after.to_json()));
    match before {
        Some(b) if b.same_scale(after) && b.events_per_sec > 0.0 => {
            out.push_str(&format!(
                "\"speedup\":{:.2},",
                after.events_per_sec / b.events_per_sec
            ));
        }
        Some(_) => out.push_str("\"speedup\":null,\"speedup_note\":\"scale mismatch\","),
        None => out.push_str("\"speedup\":null,"),
    }
    out.push_str(&format!(
        "\"fig4\":{{\"cells\":{fig4_cells},\"wall_s\":{fig4_wall_s:.2}}}}}\n"
    ));
    out
}

/// Runs the full harness: micro + macro, baseline promotion, report
/// write. Returns the rendered report and the console summary lines.
///
/// # Errors
///
/// Returns the I/O error message if the report file cannot be written.
pub fn run(seeds: u64, secs: u64, workers: usize) -> Result<Vec<String>, String> {
    let micro = measure_micro(seeds.min(MICRO_SEEDS), secs.min(MICRO_SECS));
    let (cells, fig4_wall) = measure_macro(seeds.min(MACRO_SEEDS), secs.min(MACRO_SECS), workers);
    let previous = std::fs::read_to_string(REPORT_PATH).unwrap_or_default();
    let before = pinned_baseline(&previous);
    let report = render_report(before.as_ref(), &micro, cells, fig4_wall);
    std::fs::write(REPORT_PATH, &report)
        .map_err(|e| format!("failed to write {REPORT_PATH}: {e}"))?;
    let mut lines = vec![format!(
        "hotpath micro: {} events in {:.3} s = {:.0} events/s (best of {REPS})",
        micro.events, micro.wall_s, micro.events_per_sec
    )];
    match before {
        Some(b) if b.same_scale(&micro) => lines.push(format!(
            "hotpath baseline: {:.0} events/s -> speedup {:.2}x",
            b.events_per_sec,
            micro.events_per_sec / b.events_per_sec
        )),
        Some(b) => lines.push(format!(
            "hotpath baseline: {:.0} events/s (different scale; no speedup computed)",
            b.events_per_sec
        )),
        None => lines.push("hotpath baseline: none (this run is now the pinned baseline)".into()),
    }
    lines.push(format!(
        "hotpath macro: fig4 {cells} cells uncached in {fig4_wall:.2} s"
    ));
    lines.push(format!("hotpath report: {REPORT_PATH}"));
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(eps: f64, seeds: u64, secs: u64) -> Measurement {
        Measurement {
            events: 1000,
            wall_s: 0.5,
            events_per_sec: eps,
            seeds,
            secs,
        }
    }

    #[test]
    fn report_round_trips_through_the_flat_parser() {
        let report = render_report(Some(&m(2000.0, 3, 5)), &m(3500.0, 3, 5), 44, 1.25);
        let before = read_block(&report, "before").expect("before parses");
        let after = read_block(&report, "after").expect("after parses");
        assert_eq!(before.events_per_sec, 2000.0);
        assert_eq!(after.events_per_sec, 3500.0);
        assert!(report.contains("\"speedup\":1.75"));
    }

    #[test]
    fn first_measurement_becomes_the_pinned_baseline() {
        let first = render_report(None, &m(2000.0, 3, 5), 44, 1.0);
        assert!(first.contains("\"speedup\":null"));
        let pinned = pinned_baseline(&first).expect("after promoted to baseline");
        assert_eq!(pinned.events_per_sec, 2000.0);
        // The second run compares against it and re-pins it as "before".
        let second = render_report(Some(&pinned), &m(3000.0, 3, 5), 44, 1.0);
        assert_eq!(
            pinned_baseline(&second)
                .expect("before wins")
                .events_per_sec,
            2000.0
        );
        assert!(second.contains("\"speedup\":1.50"));
    }

    #[test]
    fn scale_mismatch_disables_the_speedup() {
        let report = render_report(Some(&m(2000.0, 3, 5)), &m(9000.0, 2, 2), 44, 1.0);
        assert!(report.contains("\"speedup\":null"));
        assert!(report.contains("scale mismatch"));
    }

    #[test]
    fn missing_file_has_no_baseline() {
        assert!(pinned_baseline("").is_none());
        assert!(pinned_baseline("{}").is_none());
    }
}
