//! Shared harness for regenerating every table and figure of the paper.
//!
//! Each `src/bin/figN.rs` binary sweeps the parameters of one published
//! figure, averages over the seed set, and prints the series the paper
//! plots (plus a CSV copy under `results/`). The helpers here keep the
//! binaries small and uniform:
//!
//! * [`seed_set`] / [`sim_secs`] — the paper runs 30 seeds × 50 s; both
//!   are overridable via `AIRGUARD_SEEDS` and `AIRGUARD_SECS` for quick
//!   passes;
//! * [`run_seeds`] — executes a configured scenario once per seed,
//!   fanning out across available cores with crossbeam's scoped threads;
//! * [`Table`] — fixed-width console table plus CSV writer.

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::path::Path;

use airguard_net::{RunReport, ScenarioConfig};
use airguard_obs::RunSummary;

/// The paper's PM sweep: 0 %, 10 %, …, 100 %.
#[must_use]
pub fn pm_sweep() -> Vec<f64> {
    (0..=10).map(|i| f64::from(i) * 10.0).collect()
}

/// The seed set: `1..=AIRGUARD_SEEDS` (default 30, as in the paper).
#[must_use]
pub fn seed_set() -> Vec<u64> {
    let n = std::env::var("AIRGUARD_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30u64);
    (1..=n.max(1)).collect()
}

/// Simulated seconds per run: `AIRGUARD_SECS` (default 50, as in the
/// paper).
#[must_use]
pub fn sim_secs() -> u64 {
    std::env::var("AIRGUARD_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50u64)
        .max(1)
}

/// Runs `cfg` once per seed, in parallel across the machine's cores.
#[must_use]
pub fn run_seeds(cfg: &ScenarioConfig, seeds: &[u64]) -> Vec<RunReport> {
    let workers = std::thread::available_parallelism()
        .map_or(1, std::num::NonZero::get)
        .min(seeds.len().max(1));
    if workers <= 1 {
        return seeds.iter().map(|&s| cfg.clone().seed(s).run()).collect();
    }
    let mut out: Vec<Option<RunReport>> = (0..seeds.len()).map(|_| None).collect();
    let chunk = seeds.len().div_ceil(workers);
    crossbeam::thread::scope(|scope| {
        for (seed_chunk, out_chunk) in seeds.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move |_| {
                for (&s, slot) in seed_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(cfg.clone().seed(s).run());
                }
            });
        }
    })
    .expect("worker thread panicked"); // lint:allow(panic-expect) — a panicking worker has already invalidated the measurement; re-raising is the only honest handling
    out.into_iter()
        .map(|r| r.expect("every slot filled")) // lint:allow(panic-expect) — chunks(chunk) partitions seeds and out identically, so every slot is written exactly once
        .collect()
}

/// Mean of `metric` over a set of run reports.
#[must_use]
pub fn mean_of(reports: &[RunReport], metric: impl Fn(&RunReport) -> f64) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(metric).sum::<f64>() / reports.len() as f64
}

/// A fixed-width console table that can also be written as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title); // lint:allow(print-macro) — console table rendering is this harness's user-facing output, not library diagnostics
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header)); // lint:allow(print-macro) — console table rendering is this harness's user-facing output, not library diagnostics
        for row in &self.rows {
            println!("{}", fmt_row(row)); // lint:allow(print-macro) — console table rendering is this harness's user-facing output, not library diagnostics
        }
    }

    /// Writes the table as CSV under `results/<name>.csv` (creating the
    /// directory), best-effort.
    pub fn write_csv(&self, name: &str) {
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let Ok(mut f) = std::fs::File::create(&path) else {
            return;
        };
        let _ = writeln!(f, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(f, "{}", row.join(","));
        }
        println!("[csv] wrote {}", path.display()); // lint:allow(print-macro) — file-location notice for the person running the figure binary
    }
}

/// Writes per-run telemetry summaries as JSONL under
/// `results/<name>.report.jsonl` (one [`RunSummary`] per line), next to
/// the figure's CSV. Best-effort, like [`Table::write_csv`].
pub fn write_report_jsonl(name: &str, summaries: &[RunSummary]) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.report.jsonl"));
    let Ok(mut f) = std::fs::File::create(&path) else {
        return;
    };
    for summary in summaries {
        let _ = writeln!(f, "{}", summary.to_json());
    }
    println!("[report] wrote {}", path.display()); // lint:allow(print-macro) — file-location notice for the person running the figure binary
}

/// Formats a float cell with two decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput in Kb/s with one decimal.
#[must_use]
pub fn kbps(v_bps: f64) -> String {
    format!("{:.1}", v_bps / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_net::{Protocol, StandardScenario};

    #[test]
    fn pm_sweep_covers_0_to_100() {
        let s = pm_sweep();
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[10], 100.0);
    }

    #[test]
    fn run_seeds_returns_one_report_per_seed() {
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Dot11)
            .n_senders(2)
            .sim_time_secs(1);
        let reports = run_seeds(&cfg, &[1, 2, 3]);
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.throughput.total_bytes() > 0));
    }

    #[test]
    fn table_round_trips() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(kbps(1500.0), "1.5");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into()]);
    }
}
