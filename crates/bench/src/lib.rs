//! Shared harness for regenerating every table and figure of the paper.
//!
//! The heavy lifting — sweep scheduling, work-stealing execution,
//! result caching, deterministic collection — lives in `airguard-exp`.
//! This crate contributes the paper-specific layer:
//!
//! * [`figures`] — one declarative [`airguard_exp::Experiment`]
//!   registration per published figure/table/ablation;
//! * [`cli`] — the unified `airguard-bench` command line
//!   (`--figure fig4 --seeds 30 --secs 50 --jsonl --no-cache --list`);
//!   the 18 `src/bin/*.rs` binaries are thin wrappers that force one
//!   figure and accept the same flags.
//!
//! The paper runs 30 seeds × 50 s; both are overridable with
//! `--seeds`/`--secs` or the `AIRGUARD_SEEDS`/`AIRGUARD_SECS`
//! environment variables (malformed values are rejected, not silently
//! defaulted).

#![forbid(unsafe_code)]

pub mod cli;
pub mod figures;
pub mod hotpath;
pub mod live_replay;
pub mod scale;

pub use airguard_exp::{f2, kbps, run_seeds, write_report_jsonl, Table};
use airguard_net::RunReport;

/// The paper's seed-set size (§5: averages over 30 runs).
pub const PAPER_SEEDS: u64 = 30;

/// The paper's simulated seconds per run.
pub const PAPER_SECS: u64 = 50;

/// The paper's PM sweep: 0 %, 10 %, …, 100 %.
#[must_use]
pub fn pm_sweep() -> Vec<f64> {
    (0..=10).map(|i| f64::from(i) * 10.0).collect()
}

/// Mean of `metric` over a set of run reports.
#[must_use]
pub fn mean_of(reports: &[RunReport], metric: impl Fn(&RunReport) -> f64) -> f64 {
    if reports.is_empty() {
        return 0.0;
    }
    reports.iter().map(metric).sum::<f64>() / reports.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

    #[test]
    fn pm_sweep_covers_0_to_100() {
        let s = pm_sweep();
        assert_eq!(s.len(), 11);
        assert_eq!(s[0], 0.0);
        assert_eq!(s[10], 100.0);
    }

    #[test]
    fn run_seeds_returns_one_report_per_seed() {
        let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Dot11)
            .n_senders(2)
            .sim_time_secs(1);
        let reports = run_seeds(&cfg, &[1, 2, 3], 0).expect("no cell failed");
        assert_eq!(reports.len(), 3);
        assert!(reports.iter().all(|r| r.throughput.total_bytes() > 0));
    }

    #[test]
    fn every_figure_is_registered_once() {
        let names: Vec<&str> = figures::all().iter().map(|e| e.name).collect();
        assert_eq!(
            names.len(),
            18,
            "15 published figures/ablations + chaos + detection_latency + detector_duel"
        );
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names are unique");
        for name in names {
            assert!(figures::find(name).is_some());
        }
        assert!(figures::find("no_such_figure").is_none());
    }
}
