//! The `--figure live_replay` harness: streaming-service throughput.
//!
//! Like `hotpath` and `scale` this measures the software, not the
//! paper: it synthesizes a deterministic `.events.jsonl` replay feed
//! (a mixed honest/misbehaving station population), streams it through
//! the `airguard-live` engine, and records
//!
//! * sustained observations/sec of the single-shard run (the per-core
//!   ingest figure — JSONL decode, routing, and detection included);
//! * p99 ingest→verdict latency at the parallel shard count (each
//!   observation is stamped at enqueue and measured at the detector);
//! * the byte-identity of the final summaries at 1 shard and the
//!   parallel shard count — the live determinism contract, grepped by
//!   CI exactly like the `scale` harness's identity line.
//!
//! The feed defaults to 200 000 records over 64 stations and is
//! overridable with `AIRGUARD_LIVE_RECORDS` (malformed values are
//! rejected, like every other airguard knob); CI downscales.

use std::time::Instant;

use airguard_live::engine::{run as live_run, LiveConfig, LiveOutcome};
use airguard_live::replay::JsonlSource;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Where the live-replay report lives (working directory = repo root).
pub const REPORT_PATH: &str = "BENCH_live.json";

/// Default replay length; `AIRGUARD_LIVE_RECORDS` overrides.
const DEFAULT_RECORDS: u64 = 200_000;

/// Monitored station population in the synthetic feed.
const STATIONS: u32 = 64;

/// Parallel shard count used when `--shard-workers` is left at 1.
const DEFAULT_PARALLEL: u32 = 4;

/// Synthesizes the replay feed: `records` monitor `backoff_assigned`
/// lines over [`STATIONS`] stations, every fourth station misbehaving
/// (it backs off ~20% of its assignment).
#[must_use]
pub fn synth_feed(records: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(97);
    let mut feed = String::with_capacity(usize::try_from(records).unwrap_or(0) * 128);
    for i in 0..records {
        let src = rng.random_range(0..STATIONS);
        let assigned = f64::from(rng.random_range(8u32..32));
        let observed = if src % 4 == 0 {
            (assigned * 0.2).max(1.0)
        } else {
            assigned
        };
        feed.push_str(&format!(
            "{{\"t_us\":{},\"node\":0,\"cat\":\"monitor\",\"event\":\"backoff_assigned\",\"src\":{src},\"assigned_slots\":{assigned},\"observed_slots\":{observed},\"xid\":1}}\n",
            (i + 1) * 100
        ));
    }
    feed.into_bytes()
}

/// One measured pass of the feed through the live engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Shard count the run used.
    pub shards: u32,
    /// Observations the run processed.
    pub observations: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// `observations / wall_s`.
    pub obs_per_sec: f64,
    /// p99 ingest→verdict latency, microseconds.
    pub p99_latency_us: u64,
}

impl Measurement {
    fn to_json(&self) -> String {
        format!(
            "{{\"shards\":{},\"observations\":{},\"wall_s\":{:.4},\"obs_per_sec\":{:.0},\"p99_latency_us\":{}}}",
            self.shards, self.observations, self.wall_s, self.obs_per_sec, self.p99_latency_us
        )
    }
}

/// p99 of an unsorted latency sample (0 when empty).
fn p99(latencies: &mut [u64]) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    latencies.sort_unstable();
    let rank = (latencies.len() - 1) * 99 / 100;
    latencies[rank]
}

/// Streams the feed through the engine once at the given shard count.
fn measure(feed: &[u8], shards: u32) -> Result<(LiveOutcome, Measurement), String> {
    let mut config = LiveConfig::new(shards);
    config.measure_latency = true;
    let mut source = JsonlSource::new(feed);
    let start = Instant::now();
    let mut outcome = live_run(&config, &mut source)?;
    let wall_s = start.elapsed().as_secs_f64();
    let observations = outcome.summary.counters["live.observations"];
    let m = Measurement {
        shards,
        observations,
        wall_s,
        obs_per_sec: observations as f64 / wall_s.max(f64::MIN_POSITIVE),
        p99_latency_us: p99(&mut outcome.latencies_us),
    };
    Ok((outcome, m))
}

/// Renders the live-replay report file.
#[must_use]
pub fn render_report(
    records: u64,
    cores: usize,
    serial: &Measurement,
    parallel: &Measurement,
    identical: bool,
) -> String {
    let speedup = if parallel.wall_s > 0.0 {
        serial.wall_s / parallel.wall_s
    } else {
        0.0
    };
    format!(
        "{{\"schema\":\"airguard.live.v1\",\
         \"scenario\":\"jsonl replay, {STATIONS} stations, 1-in-4 misbehaving\",\
         \"records\":{records},\"cores\":{cores},\
         \"serial\":{},\"parallel\":{},\
         \"obs_per_sec_per_core\":{:.0},\
         \"p99_ingest_to_verdict_us\":{},\
         \"speedup\":{speedup:.2},\
         \"summaries_identical\":{identical}}}\n",
        serial.to_json(),
        parallel.to_json(),
        serial.obs_per_sec,
        parallel.p99_latency_us,
    )
}

/// Runs the full harness: serial + parallel pass, byte-identity check,
/// report write. Returns the console summary lines.
///
/// # Errors
///
/// Returns an error when the summaries differ between shard counts (a
/// broken determinism contract), the engine fails, or the report file
/// cannot be written.
pub fn run(shard_workers: usize) -> Result<Vec<String>, String> {
    let records = crate::cli::env_positive("AIRGUARD_LIVE_RECORDS")?.unwrap_or(DEFAULT_RECORDS);
    let parallel_shards = match u32::try_from(shard_workers) {
        Ok(n) if n > 1 => n,
        _ => DEFAULT_PARALLEL,
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let feed = synth_feed(records);
    let (serial_outcome, serial) = measure(&feed, 1)?;
    let (parallel_outcome, parallel) = measure(&feed, parallel_shards)?;
    let identical = serial_outcome.summary.to_json() == parallel_outcome.summary.to_json();
    if !identical {
        return Err(format!(
            "live_replay: summaries diverged between 1 and {parallel_shards} shards — the live \
             determinism contract is broken"
        ));
    }
    let report = render_report(records, cores, &serial, &parallel, identical);
    std::fs::write(REPORT_PATH, &report)
        .map_err(|e| format!("failed to write {REPORT_PATH}: {e}"))?;
    Ok(vec![
        format!(
            "live_replay serial: {records} records, {STATIONS} stations: {:.3} s = {:.0} obs/s per core (p99 {} us)",
            serial.wall_s, serial.obs_per_sec, serial.p99_latency_us
        ),
        format!(
            "live_replay parallel: {parallel_shards} shards on {cores} core(s): {:.3} s = {:.0} obs/s (p99 {} us)",
            parallel.wall_s, parallel.obs_per_sec, parallel.p99_latency_us
        ),
        format!("live_replay identity: summaries byte-identical at 1 and {parallel_shards} shards"),
        format!("live_replay report: {REPORT_PATH}"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(shards: u32, wall_s: f64) -> Measurement {
        Measurement {
            shards,
            observations: 200_000,
            wall_s,
            obs_per_sec: 200_000.0 / wall_s,
            p99_latency_us: 420,
        }
    }

    #[test]
    fn p99_picks_the_right_rank() {
        let mut one = vec![7];
        assert_eq!(p99(&mut one), 7);
        let mut none: Vec<u64> = Vec::new();
        assert_eq!(p99(&mut none), 0);
        let mut ramp: Vec<u64> = (1..=100).collect();
        assert_eq!(p99(&mut ramp), 99);
    }

    #[test]
    fn report_records_throughput_latency_and_identity() {
        let report = render_report(200_000, 8, &m(1, 2.0), &m(4, 0.5), true);
        assert!(report.contains("\"schema\":\"airguard.live.v1\""));
        assert!(report.contains("\"records\":200000"));
        assert!(report.contains("\"cores\":8"));
        assert!(report.contains("\"obs_per_sec_per_core\":100000"));
        assert!(report.contains("\"p99_ingest_to_verdict_us\":420"));
        assert!(report.contains("\"speedup\":4.00"));
        assert!(report.contains("\"summaries_identical\":true"));
    }

    #[test]
    fn harness_runs_end_to_end_at_a_tiny_scale() {
        // A real (downscaled) pass: 3000 records, parallel point at 2
        // shards. No other test in this process touches
        // AIRGUARD_LIVE_RECORDS.
        std::env::set_var("AIRGUARD_LIVE_RECORDS", "3000");
        let lines = run(2);
        std::env::remove_var("AIRGUARD_LIVE_RECORDS");
        let lines = lines.expect("harness run succeeds");
        assert!(
            lines
                .iter()
                .any(|l| l.contains("byte-identical at 1 and 2 shards")),
            "identity line missing: {lines:?}"
        );
        let written = std::fs::read_to_string(REPORT_PATH).expect("report written");
        let _ = std::fs::remove_file(REPORT_PATH);
        assert!(written.contains("\"summaries_identical\":true"));
        assert!(written.contains("\"schema\":\"airguard.live.v1\""));
    }
}
