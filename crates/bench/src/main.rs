//! The unified figure-regeneration driver; see `cli` for flags.
//!
//! Regenerate everything with: `cargo run --release -p airguard-bench`

fn main() {
    std::process::exit(airguard_bench::cli::cli_main());
}
