//! The `--figure scale` harness: spatial-sharding scaling point.
//!
//! Like `hotpath` this is not a paper sweep — it measures the
//! simulator. One large CAMPUS scenario (clusters 3 km apart, far
//! beyond the interference cutoff, so the medium decomposes into one
//! component per cluster) runs twice with identical configuration:
//! once at 1 shard worker (the serial reference) and once at the
//! parallel worker count. The harness then
//!
//! * asserts the two `RunSummary` JSON blobs are **byte-identical** —
//!   the shard merge contract says worker count can never change a
//!   result byte, and CI greps the printed identity line;
//! * records events/sec of the serial run (the per-core throughput
//!   figure) and the wall-clock speedup of the parallel run in
//!   `BENCH_shard.json`.
//!
//! The topology size defaults to 10 000 nodes and is overridable with
//! the `AIRGUARD_SCALE_NODES` environment variable (malformed values
//! are rejected, like every other airguard knob); CI downscales to
//! 1000. The simulated horizon is capped at 1 s — the harness
//! downscales only.

use std::time::Instant;

use airguard_net::{Protocol, RunReport, ScenarioConfig, StandardScenario};

/// Where the scaling report lives (working directory = repo root).
pub const REPORT_PATH: &str = "BENCH_shard.json";

/// Default topology size; `AIRGUARD_SCALE_NODES` overrides.
const DEFAULT_NODES: u64 = 10_000;

/// Horizon cap in simulated seconds; explicit `--secs` below this
/// shrinks the run, the paper default never inflates it.
const MAX_SECS: u64 = 1;

/// Parallel worker count used when `--shard-workers` is left at 1.
const DEFAULT_PARALLEL: usize = 4;

/// Flows per cluster-sized block of nodes (mirrors the shard tests).
const FLOWS: usize = 5;

/// One measured run of the campus scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Shard workers the run used.
    pub workers: usize,
    /// Scheduler events the run delivered.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// `events / wall_s`.
    pub events_per_sec: f64,
}

impl Measurement {
    fn to_json(&self) -> String {
        format!(
            "{{\"workers\":{},\"events\":{},\"wall_s\":{:.4},\"events_per_sec\":{:.0}}}",
            self.workers, self.events, self.wall_s, self.events_per_sec
        )
    }
}

/// The scaling scenario: a spatial campus at `nodes` nodes.
fn campus(nodes: usize, secs: u64, workers: usize) -> ScenarioConfig {
    ScenarioConfig::new(StandardScenario::Campus)
        .protocol(Protocol::Correct)
        .misbehavior_percent(50.0)
        .random_nodes(nodes, FLOWS)
        .sim_time_secs(secs)
        .seed(1)
        .spatial(true)
        .shard_workers(workers)
}

/// Runs the scenario once at the given worker count, timed.
fn measure(nodes: usize, secs: u64, workers: usize) -> (RunReport, Measurement) {
    let start = Instant::now();
    let report = campus(nodes, secs, workers).run();
    let wall_s = start.elapsed().as_secs_f64();
    let events = report.events;
    let m = Measurement {
        workers,
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s,
    };
    (report, m)
}

/// Renders the scaling report file. `cores` is the machine's available
/// parallelism — the speedup is only meaningful when it covers the
/// parallel worker count, so the file records both.
#[must_use]
pub fn render_report(
    nodes: u64,
    secs: u64,
    cores: usize,
    serial: &Measurement,
    parallel: &Measurement,
    identical: bool,
) -> String {
    let speedup = if parallel.wall_s > 0.0 {
        serial.wall_s / parallel.wall_s
    } else {
        0.0
    };
    format!(
        "{{\"schema\":\"airguard.shard.v1\",\
         \"scenario\":\"campus, correct protocol, pm=50, spatial\",\
         \"nodes\":{nodes},\"secs\":{secs},\"cores\":{cores},\
         \"serial\":{},\"parallel\":{},\
         \"events_per_sec_per_core\":{:.0},\
         \"speedup\":{speedup:.2},\
         \"summaries_identical\":{identical}}}\n",
        serial.to_json(),
        parallel.to_json(),
        serial.events_per_sec,
    )
}

/// Runs the full harness: serial + parallel run, byte-identity check,
/// report write. Returns the console summary lines.
///
/// # Errors
///
/// Returns an error when the serial and parallel summaries differ (a
/// broken determinism contract) or the report file cannot be written.
pub fn run(secs: u64, shard_workers: usize) -> Result<Vec<String>, String> {
    let nodes = crate::cli::env_positive("AIRGUARD_SCALE_NODES")?.unwrap_or(DEFAULT_NODES);
    let nodes_usize = usize::try_from(nodes)
        .map_err(|_| format!("AIRGUARD_SCALE_NODES: value {nodes} out of range"))?;
    let secs = secs.min(MAX_SECS);
    let parallel_workers = if shard_workers > 1 {
        shard_workers
    } else {
        DEFAULT_PARALLEL
    };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (serial_report, serial) = measure(nodes_usize, secs, 1);
    let (parallel_report, parallel) = measure(nodes_usize, secs, parallel_workers);
    let identical = serial_report.summary.to_json() == parallel_report.summary.to_json();
    if !identical {
        return Err(format!(
            "scale: summaries diverged between 1 and {parallel_workers} shard workers — the \
             shard merge contract is broken"
        ));
    }
    let report = render_report(nodes, secs, cores, &serial, &parallel, identical);
    std::fs::write(REPORT_PATH, &report)
        .map_err(|e| format!("failed to write {REPORT_PATH}: {e}"))?;
    let speedup = serial.wall_s / parallel.wall_s;
    Ok(vec![
        format!(
            "scale serial: campus {nodes} nodes, {secs} s horizon: {} events in {:.3} s = {:.0} events/s per core",
            serial.events, serial.wall_s, serial.events_per_sec
        ),
        format!(
            "scale parallel: {parallel_workers} workers on {cores} core(s): {:.3} s = {:.0} events/s (speedup {speedup:.2}x)",
            parallel.wall_s, parallel.events_per_sec
        ),
        format!("scale identity: summaries byte-identical at 1 and {parallel_workers} workers"),
        format!("scale report: {REPORT_PATH}"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(workers: usize, wall_s: f64) -> Measurement {
        Measurement {
            workers,
            events: 8_000_000,
            wall_s,
            events_per_sec: 8_000_000.0 / wall_s,
        }
    }

    #[test]
    fn report_records_speedup_and_per_core_throughput() {
        let report = render_report(10_000, 1, 8, &m(1, 1.0), &m(4, 0.25), true);
        assert!(report.contains("\"schema\":\"airguard.shard.v1\""));
        assert!(report.contains("\"nodes\":10000"));
        assert!(report.contains("\"cores\":8"));
        assert!(report.contains("\"speedup\":4.00"));
        assert!(report.contains("\"events_per_sec_per_core\":8000000"));
        assert!(report.contains("\"summaries_identical\":true"));
        assert!(report.contains("\"workers\":1"));
        assert!(report.contains("\"workers\":4"));
    }

    #[test]
    fn zero_parallel_wall_does_not_divide_by_zero() {
        let report = render_report(100, 1, 2, &m(1, 1.0), &m(4, 0.0), true);
        assert!(report.contains("\"speedup\":0.00"));
    }

    #[test]
    fn harness_runs_end_to_end_at_a_tiny_scale() {
        // A real (downscaled) pass through the harness: 120 campus
        // nodes, 1 simulated second, parallel point at 2 workers. No
        // other test in this process touches AIRGUARD_SCALE_NODES.
        std::env::set_var("AIRGUARD_SCALE_NODES", "120");
        let lines = run(1, 2);
        std::env::remove_var("AIRGUARD_SCALE_NODES");
        let lines = lines.expect("harness run succeeds");
        assert!(
            lines
                .iter()
                .any(|l| l.contains("byte-identical at 1 and 2 workers")),
            "identity line missing: {lines:?}"
        );
        let written = std::fs::read_to_string(REPORT_PATH).expect("report written");
        let _ = std::fs::remove_file(REPORT_PATH);
        assert!(written.contains("\"summaries_identical\":true"));
    }
}
