//! The detector-duel acceptance claims: every detector appears in the
//! rendered output with its latency percentiles and false-positive
//! column, and the whole figure — CSV bytes and telemetry report — is
//! byte-identical at any worker count.

use airguard_bench::figures::detector_duel;
use airguard_exp::{run_experiment, ExperimentOutcome, RunOptions};

/// A downscaled duel run: full detector x fault x PM grid, 2 seeds,
/// 2 simulated seconds, no cache so every byte comes from simulation.
fn run_with_workers(workers: usize) -> ExperimentOutcome {
    let exp = detector_duel::experiment();
    let mut opts = RunOptions::new(2, 2);
    opts.workers = workers;
    opts.cache = None;
    run_experiment(&exp, &opts)
}

#[test]
fn duel_output_is_byte_identical_at_any_worker_count() {
    let baseline = run_with_workers(1);
    assert!(
        baseline.failures.is_empty(),
        "cells failed: {:?}",
        baseline.failures
    );
    let baseline_csv = baseline.rendered.figures[0].table.to_csv_string();
    for workers in [2, 4, 8] {
        let outcome = run_with_workers(workers);
        assert_eq!(
            outcome.rendered.figures[0].table.to_csv_string(),
            baseline_csv,
            "CSV diverged at {workers} workers"
        );
        assert_eq!(
            outcome.report_lines, baseline.report_lines,
            "telemetry report diverged at {workers} workers"
        );
    }
}

#[test]
fn duel_table_carries_every_detector_with_latency_and_fp_columns() {
    let outcome = run_with_workers(0);
    assert!(
        outcome.failures.is_empty(),
        "cells failed: {:?}",
        outcome.failures
    );
    let table = &outcome.rendered.figures[0].table;
    let csv = table.to_csv_string();
    let header = csv.lines().next().expect("header row");
    for col in ["detector", "diag p50", "diag p99", "correct%", "fp%"] {
        assert!(header.contains(col), "missing column {col}: {header}");
    }
    for kind in ["window", "cusum", "cw"] {
        assert_eq!(
            csv.lines()
                .filter(|l| l.starts_with(&format!("{kind},")))
                .count(),
            9,
            "detector {kind} must fill its 3x3 fault x PM block"
        );
    }
    // Detection works at this scale: every detector diagnoses the PM=90
    // cheater on a clean channel (fault=0), giving nonzero latency
    // samples to the percentile columns.
    for kind in ["window", "cusum", "cw"] {
        let row = csv
            .lines()
            .find(|l| l.starts_with(&format!("{kind},0,90,")))
            .expect("clean-channel PM=90 row");
        let samples: u64 = row
            .rsplit(',')
            .next()
            .expect("samples column")
            .parse()
            .expect("numeric samples");
        assert!(samples > 0, "{kind} never diagnosed the PM=90 cheater");
    }
}
