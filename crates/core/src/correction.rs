//! The correction scheme (§4.2): penalties for observed deviations.
//!
//! When the receiver perceives a deviation, it measures
//! `D = max(α·B_exp − B_act, 0)` and adds a penalty to the sender's next
//! assigned backoff. The paper states two requirements: the penalty must
//! be *proportional* to the deviation (so honest nodes that are falsely
//! accused pay almost nothing), and it must include an *additional*
//! component beyond `D` itself (their analysis \[12\] showed `P = D` alone
//! still lets moderate cheaters win). The published text leaves the extra
//! component to the technical report; this implementation uses
//! `P = D + min(D, extra_cap)` — proportional for small deviations,
//! `D + extra_cap` for large ones — whose stationary behaviour pins a
//! misbehaving node to its fair share for PM ≲ 80 % and degrades only as
//! PM → 100 %, matching Fig. 5 (see DESIGN.md §5 for the algebra).

use serde::{Deserialize, Serialize};

/// Parameters of deviation measurement and penalty computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrectionConfig {
    /// The deviation tolerance α of Eq. 1: a sender deviates when
    /// `B_act < α·B_exp`. The paper uses 0.9.
    pub alpha: f64,
    /// Cap on the additional penalty component, in slots. The default of
    /// 8 slots (≈ CWmin/4) keeps the assignment recursion stable (the
    /// feedback coefficient stays below 1) while making moderate cheating
    /// unprofitable.
    pub extra_cap: f64,
    /// Upper bound on any single assigned backoff, in slots (default
    /// CWmax = 1023) — a safety valve, rarely reached in practice.
    pub max_assignment: u32,
    /// Multiplier on the proportional component of the penalty
    /// (`P = scale·D + min(D, extra_cap)`). 1.0 is the paper's scheme;
    /// 0.0 with `extra_cap = 0` disables correction entirely (diagnosis
    /// only) — used by the penalty-shape ablation.
    pub penalty_scale: f64,
}

impl CorrectionConfig {
    /// The paper's configuration: α = 0.9.
    #[must_use]
    pub fn paper_default() -> Self {
        CorrectionConfig {
            alpha: 0.9,
            extra_cap: 8.0,
            max_assignment: 1023,
            penalty_scale: 1.0,
        }
    }

    /// A variant with a different α (used by the α-sweep ablation).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        CorrectionConfig {
            alpha,
            ..CorrectionConfig::paper_default()
        }
    }

    /// The measured deviation `D = max(α·B_exp − B_act, 0)`, in slots.
    #[must_use]
    pub fn deviation(&self, b_exp: f64, b_act: f64) -> f64 {
        (self.alpha * b_exp - b_act).max(0.0)
    }

    /// Whether Eq. 1 designates the observation as a deviation.
    #[must_use]
    pub fn is_deviation(&self, b_exp: f64, b_act: f64) -> bool {
        b_act < self.alpha * b_exp
    }

    /// The total penalty `P` for a measured deviation `D`.
    #[must_use]
    pub fn penalty(&self, deviation: f64) -> f64 {
        if deviation > 0.0 {
            self.penalty_scale * deviation + deviation.min(self.extra_cap)
        } else {
            0.0
        }
    }
}

impl Default for CorrectionConfig {
    fn default() -> Self {
        CorrectionConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_definition_matches_eq1() {
        let c = CorrectionConfig::paper_default();
        // B_exp = 20, α = 0.9 ⇒ threshold at 18 observed slots.
        assert!(c.is_deviation(20.0, 17.9));
        assert!(!c.is_deviation(20.0, 18.0));
        assert!((c.deviation(20.0, 10.0) - 8.0).abs() < 1e-12);
        assert_eq!(c.deviation(20.0, 25.0), 0.0, "waiting longer is fine");
    }

    #[test]
    fn penalty_scale_zero_with_zero_cap_disables_correction() {
        let c = CorrectionConfig {
            penalty_scale: 0.0,
            extra_cap: 0.0,
            ..CorrectionConfig::paper_default()
        };
        assert_eq!(c.penalty(25.0), 0.0);
    }

    #[test]
    fn penalty_is_proportional_then_capped() {
        let c = CorrectionConfig::paper_default();
        assert_eq!(c.penalty(0.0), 0.0);
        assert!((c.penalty(3.0) - 6.0).abs() < 1e-12, "small D doubles");
        assert!(
            (c.penalty(20.0) - 28.0).abs() < 1e-12,
            "large D adds the cap"
        );
    }

    #[test]
    fn stationary_assignment_is_stable_for_moderate_pm() {
        // Iterate the closed loop of the scheme for PM = 80 %: assignment
        // B_{n+1} = E[r] + P(D_n) with B_act = (1−PM)·B_n. The sequence
        // must converge, and the cheater's *actual* wait must come out at
        // roughly the fair share E[r] = 15.5 slots.
        let c = CorrectionConfig::paper_default();
        let pm = 0.8;
        let mut b = 15.5;
        for _ in 0..200 {
            let b_act = (1.0 - pm) * b;
            let d = c.deviation(b, b_act);
            b = 15.5 + c.penalty(d);
            assert!(b < 1023.0, "assignment must not diverge");
        }
        let actual_wait = (1.0 - pm) * b;
        assert!(
            (actual_wait - 15.5).abs() < 4.0,
            "PM=80% wait {actual_wait} should be near fair share 15.5"
        );
    }

    #[test]
    fn correction_fails_gracefully_near_pm_100() {
        // The paper: "when PM is close to 100 %, the proposed scheme
        // cannot restrict the throughput of the misbehaving node".
        let c = CorrectionConfig::paper_default();
        let pm = 0.99;
        let mut b = 15.5;
        for _ in 0..200 {
            let b_act = (1.0 - pm) * b;
            b = 15.5 + c.penalty(c.deviation(b, b_act));
        }
        let actual_wait = (1.0 - pm) * b;
        assert!(actual_wait < 8.0, "near-total cheaters escape correction");
    }

    #[test]
    fn honest_noise_draws_tiny_penalty() {
        // A well-behaved node falsely observed 2 slots short on a 20-slot
        // assignment pays at most 4 extra slots next time.
        let c = CorrectionConfig::paper_default();
        let d = c.deviation(20.0, 16.0);
        assert!(c.penalty(d) <= 4.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn with_alpha_validates() {
        let _ = CorrectionConfig::with_alpha(1.5);
    }
}
