//! Pluggable receiver-side detection: the [`DeviationDetector`] trait
//! and its three implementations.
//!
//! The paper's diagnosis scheme — a sliding window of signed backoff
//! diffs crossing `THRESH` — is one point in a design space. ROADMAP
//! item 4 abstracts the per-sender verdict state behind a trait so
//! alternative detectors can be swapped in per scenario and compared
//! head-to-head (`airguard-bench --figure detector_duel`):
//!
//! * [`WindowDetector`] — the paper's §4 window diagnosis, byte-identical
//!   to the pre-trait monitor (including the adaptive `noise_ema`
//!   threshold, which stays monitor-global and is passed in as
//!   `effective_thresh`).
//! * [`SequentialDetector`] — CUSUM sequential hypothesis testing over
//!   per-exchange deviation slots (Cao et al., 802.11e): a one-sided
//!   cumulative score `S ← max(0, S + D − drift)` that crosses its
//!   threshold faster than a fixed window at the same false-positive
//!   rate, and resets on diagnosis.
//! * [`CwEstimationDetector`] — contention-window estimation: scale
//!   the protocol CWmin by the ratio of observed to expected idle
//!   slots to estimate the sender's *effective* CW, and flag senders
//!   whose estimate sits below a fraction of CWmin.
//!
//! Detector selection is a [`DetectorConfig`], carried by
//! `ScenarioConfig` (entering the config digest only when non-default,
//! so every historical cache key and golden digest is preserved) and
//! threaded through `CorrectPolicy` into each [`crate::Monitor`].

use airguard_mac::BackoffObservation;
use serde::{Deserialize, Serialize};

use crate::diagnosis::{DiagnosisConfig, DiagnosisWindow};

/// One classification decision from a detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorVerdict {
    /// The detector's decision statistic at this packet: the window sum
    /// for [`WindowDetector`], the CUSUM score for
    /// [`SequentialDetector`] (pre-reset when it just flagged), the CW
    /// estimate for [`CwEstimationDetector`].
    pub statistic: f64,
    /// Whether this packet is classified as coming from a misbehaving
    /// sender.
    pub flagged: bool,
}

/// Per-sender deviation detection state.
///
/// One boxed detector lives inside each sender record of a
/// [`crate::Monitor`]; the monitor calls [`observe`] once per delivered
/// DATA packet, handing over the backoff measurement taken at that
/// exchange's RTS (or `None` when the exchange had no measurable
/// backoff — the sender's first-ever exchange, or a reboot-cleared
/// baseline).
///
/// `Send` is required because spatially-sharded runs move whole
/// `Simulation`s (and therefore monitors) across worker threads;
/// `Debug` keeps monitor state inspectable in test failures.
///
/// [`observe`]: DeviationDetector::observe
pub trait DeviationDetector: std::fmt::Debug + Send {
    /// Classifies one delivered packet.
    ///
    /// `effective_thresh` is the monitor's current diagnosis threshold
    /// — the static `THRESH`, or the adaptive noise-scaled maximum when
    /// the adaptive extension is on. Only [`WindowDetector`] consults
    /// it; the other detectors carry their own thresholds.
    fn observe(
        &mut self,
        obs: Option<&BackoffObservation>,
        effective_thresh: f64,
    ) -> DetectorVerdict;

    /// The current decision statistic, without consuming a packet
    /// (snapshot hook for reports and debugging).
    fn statistic(&self) -> f64;

    /// The detector's complete internal state as explicit data.
    ///
    /// Every field that influences future verdicts must be captured:
    /// [`DetectorConfig::build_from_state`] on the export must yield a
    /// detector indistinguishable from the original. This is the
    /// contract both crash-preservation (`preserve_monitor`) and the
    /// live service's checkpoints rest on.
    fn export_state(&self) -> DetectorState;
}

/// The serializable internal state of one per-sender detector.
///
/// One variant per implementation, carrying exactly the fields a
/// restart must not lose: the window's sliding diffs, the CUSUM score,
/// the CW-estimation ratio accumulators. Parameters are *not* included
/// — they come from the [`DetectorConfig`] the restored detector is
/// rebuilt under, so a state can never smuggle in foreign thresholds.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorState {
    /// [`WindowDetector`]: the held `B_exp − B_act` diffs, oldest first.
    Window {
        /// Sliding-window contents (≤ `W` entries).
        diffs: Vec<f64>,
    },
    /// [`SequentialDetector`]: the one-sided cumulative score.
    Cusum {
        /// The current CUSUM score `S`.
        score: f64,
    },
    /// [`CwEstimationDetector`]: the ratio-estimator accumulators.
    Cw {
        /// Accumulated expected idle slots `Σ B_exp`.
        assigned_sum: f64,
        /// Accumulated observed idle slots `Σ B_act`.
        observed_sum: f64,
        /// Observations folded into the sums.
        samples: u64,
    },
}

impl DetectorState {
    /// The detector kind this state belongs to (`window`/`cusum`/`cw`),
    /// matching [`DetectorConfig::kind`].
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DetectorState::Window { .. } => "window",
            DetectorState::Cusum { .. } => "cusum",
            DetectorState::Cw { .. } => "cw",
        }
    }
}

/// Parameters of the [`SequentialDetector`] (CUSUM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SequentialConfig {
    /// Per-packet drift subtracted from the score: the expected
    /// deviation under honest behavior plus a noise allowance, so the
    /// score only accumulates under sustained cheating.
    pub drift: f64,
    /// Score level that triggers a diagnosis (and resets the score).
    pub threshold: f64,
}

impl SequentialConfig {
    /// Defaults tuned against the paper's operating point: drift 2
    /// slots absorbs channel noise (the window scheme tolerates 4
    /// slots/packet = THRESH/W); threshold 30 puts the zero-deviation
    /// false-positive rate at the window scheme's level while a full
    /// cheater (D ≈ 15 slots/packet) crosses in ~3 packets.
    #[must_use]
    pub fn paper_default() -> Self {
        SequentialConfig {
            drift: 2.0,
            threshold: 30.0,
        }
    }

    /// The digest fragment naming every knob — any field added here
    /// must appear, or distinct configs alias the same cache cell
    /// (enforced by the `digest-completeness` lint).
    #[must_use]
    pub fn identity(&self) -> String {
        format!("cusum:drift={};threshold={}", self.drift, self.threshold)
    }
}

impl Default for SequentialConfig {
    fn default() -> Self {
        SequentialConfig::paper_default()
    }
}

/// Parameters of the [`CwEstimationDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CwEstimationConfig {
    /// Observations required before the estimate is trusted; below
    /// this the detector never flags.
    pub min_samples: u64,
    /// Flag when the CW estimate falls below `fraction · cw_min`.
    pub fraction: f64,
    /// The protocol CWmin the estimate is compared against, in slots.
    pub cw_min: u32,
}

impl CwEstimationConfig {
    /// Defaults for 802.11-1999 DSSS (CWmin = 31): 20 samples washes
    /// out per-exchange channel noise in the ratio estimator, and the
    /// 0.8 acceptance fraction leaves a wide margin against false
    /// positives (honest ratios sit at or above 1) while a PM ≥ 30
    /// cheater (estimate ≤ 0.7 · CWmin) stays below it.
    #[must_use]
    pub fn paper_default() -> Self {
        CwEstimationConfig {
            min_samples: 20,
            fraction: 0.8,
            cw_min: 31,
        }
    }

    /// The digest fragment naming every knob (see
    /// [`SequentialConfig::identity`]).
    #[must_use]
    pub fn identity(&self) -> String {
        format!(
            "cw:min_samples={};fraction={};cw_min={}",
            self.min_samples, self.fraction, self.cw_min
        )
    }
}

impl Default for CwEstimationConfig {
    fn default() -> Self {
        CwEstimationConfig::paper_default()
    }
}

/// Which detector a scenario's monitors run, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DetectorConfig {
    /// The paper's window diagnosis (parameters live in
    /// [`DiagnosisConfig`], as before the trait existed).
    #[default]
    Window,
    /// CUSUM sequential detection.
    Sequential(SequentialConfig),
    /// Contention-window estimation.
    CwEstimation(CwEstimationConfig),
}

impl DetectorConfig {
    /// Short stable name: `window`, `cusum`, or `cw`. Used for CLI
    /// selection, figure axes, and per-detector histogram names.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            DetectorConfig::Window => "window",
            DetectorConfig::Sequential(_) => "cusum",
            DetectorConfig::CwEstimation(_) => "cw",
        }
    }

    /// Parses a detector name into its default-parameter config.
    ///
    /// # Errors
    ///
    /// Rejects anything but the three known names, listing them — the
    /// CLI/env contract is "malformed values fail loudly, never
    /// silently default".
    pub fn from_kind(name: &str) -> Result<Self, String> {
        match name {
            "window" => Ok(DetectorConfig::Window),
            "cusum" => Ok(DetectorConfig::Sequential(SequentialConfig::default())),
            "cw" => Ok(DetectorConfig::CwEstimation(CwEstimationConfig::default())),
            other => Err(format!(
                "unknown detector `{other}` (expected window, cusum, or cw)"
            )),
        }
    }

    /// The scenario-identity fragment, or `None` for the default
    /// window detector.
    ///
    /// `None` keeps every pre-trait config digest byte-identical:
    /// the scenario layer appends `|detector=...` only when this is
    /// `Some`, mirroring the `observe_mask`/`spatial` pattern.
    #[must_use]
    pub fn identity_fragment(&self) -> Option<String> {
        match self {
            DetectorConfig::Window => None,
            DetectorConfig::Sequential(c) => Some(c.identity()),
            DetectorConfig::CwEstimation(c) => Some(c.identity()),
        }
    }

    /// Builds a fresh per-sender detector instance.
    #[must_use]
    pub fn build(&self, diagnosis: DiagnosisConfig) -> Box<dyn DeviationDetector> {
        match self {
            DetectorConfig::Window => Box::new(WindowDetector::new(diagnosis)),
            DetectorConfig::Sequential(c) => Box::new(SequentialDetector::new(*c)),
            DetectorConfig::CwEstimation(c) => Box::new(CwEstimationDetector::new(*c)),
        }
    }

    /// Rebuilds a detector from previously exported state, under this
    /// config's parameters.
    ///
    /// The restored instance is behaviorally indistinguishable from
    /// the one that exported the state (the golden-digest suite pins
    /// this: `preserve_monitor` crash resets round-trip every detector
    /// through its state).
    ///
    /// # Errors
    ///
    /// Rejects a state whose kind does not match this config — a
    /// checkpoint taken under one detector cannot silently seed
    /// another.
    pub fn build_from_state(
        &self,
        diagnosis: DiagnosisConfig,
        state: &DetectorState,
    ) -> Result<Box<dyn DeviationDetector>, String> {
        match (self, state) {
            (DetectorConfig::Window, DetectorState::Window { diffs }) => {
                Ok(Box::new(WindowDetector {
                    window: DiagnosisWindow::restore(diagnosis, diffs),
                }))
            }
            (DetectorConfig::Sequential(c), DetectorState::Cusum { score }) => {
                let mut det = SequentialDetector::new(*c);
                det.score = score.max(0.0);
                Ok(Box::new(det))
            }
            (
                DetectorConfig::CwEstimation(c),
                DetectorState::Cw {
                    assigned_sum,
                    observed_sum,
                    samples,
                },
            ) => {
                let mut det = CwEstimationDetector::new(*c);
                det.assigned_sum = *assigned_sum;
                det.observed_sum = *observed_sum;
                det.samples = *samples;
                Ok(Box::new(det))
            }
            (cfg, state) => Err(format!(
                "detector state kind `{}` does not match configured detector `{}`",
                state.kind(),
                cfg.kind()
            )),
        }
    }
}

/// The paper's §4 window diagnosis behind the trait: push each
/// measured `B_exp − B_act` diff, flag while the window sum exceeds
/// the effective threshold.
#[derive(Debug)]
pub struct WindowDetector {
    window: DiagnosisWindow,
}

impl WindowDetector {
    /// Creates a window detector with the given W/THRESH parameters.
    #[must_use]
    pub fn new(diagnosis: DiagnosisConfig) -> Self {
        WindowDetector {
            window: DiagnosisWindow::new(diagnosis),
        }
    }
}

impl DeviationDetector for WindowDetector {
    fn observe(
        &mut self,
        obs: Option<&BackoffObservation>,
        effective_thresh: f64,
    ) -> DetectorVerdict {
        if let Some(o) = obs {
            self.window.push(o.assigned_slots - o.observed_slots);
        }
        let statistic = self.window.sum();
        DetectorVerdict {
            statistic,
            flagged: statistic > effective_thresh,
        }
    }

    fn statistic(&self) -> f64 {
        self.window.sum()
    }

    fn export_state(&self) -> DetectorState {
        DetectorState::Window {
            diffs: self.window.diffs(),
        }
    }
}

/// CUSUM sequential detection over per-exchange deviation slots.
///
/// The one-sided cumulative score `S ← max(0, S + D − drift)` stays
/// near zero under honest behavior (D = 0 almost always, and `drift`
/// absorbs noise-induced deviations) and climbs at `≈ D − drift` per
/// packet under sustained cheating. Crossing `threshold` flags the
/// packet and resets the score — each diagnosis is a fresh detection,
/// so a sender that reforms stops being flagged after one window of
/// honest behavior rather than staying tainted by history.
#[derive(Debug)]
pub struct SequentialDetector {
    cfg: SequentialConfig,
    score: f64,
}

impl SequentialDetector {
    /// Creates a CUSUM detector with the given drift/threshold.
    #[must_use]
    pub fn new(cfg: SequentialConfig) -> Self {
        SequentialDetector { cfg, score: 0.0 }
    }
}

impl DeviationDetector for SequentialDetector {
    fn observe(
        &mut self,
        obs: Option<&BackoffObservation>,
        _effective_thresh: f64,
    ) -> DetectorVerdict {
        if let Some(o) = obs {
            self.score = (self.score + o.deviation_slots - self.cfg.drift).max(0.0);
        }
        let statistic = self.score;
        let flagged = statistic > self.cfg.threshold;
        if flagged {
            // Reset on diagnosis: the crossing is reported (statistic is
            // the pre-reset score) and the test restarts.
            self.score = 0.0;
        }
        DetectorVerdict { statistic, flagged }
    }

    fn statistic(&self) -> f64 {
        self.score
    }

    fn export_state(&self) -> DetectorState {
        DetectorState::Cusum { score: self.score }
    }
}

/// Contention-window estimation from observed idle-slot counts.
///
/// A sender honouring its backoff idles exactly as many slots as it
/// was expected to, so the ratio of accumulated observed to expected
/// idle slots scales the protocol CWmin into the sender's *effective*
/// contention window: `CW_eff = cw_min · Σ B_act / Σ B_exp`. A
/// PM-cheater waits only `(1 − PM)` of each wait it owes — including
/// any penalty inflation, which is why the estimate is normalized by
/// `B_exp` rather than read from absolute idle time (the correction
/// scheme's penalties would otherwise pull a punished cheater's idle
/// counts back up to honest levels and hide it). Once `min_samples`
/// observations are in, any estimate below `fraction · cw_min` flags
/// the sender. Retries and queue idle time only inflate observed
/// slots, so the bias runs *against* false positives.
#[derive(Debug)]
pub struct CwEstimationDetector {
    cfg: CwEstimationConfig,
    assigned_sum: f64,
    observed_sum: f64,
    samples: u64,
}

impl CwEstimationDetector {
    /// Creates a CW-estimation detector with the given parameters.
    #[must_use]
    pub fn new(cfg: CwEstimationConfig) -> Self {
        CwEstimationDetector {
            cfg,
            assigned_sum: 0.0,
            observed_sum: 0.0,
            samples: 0,
        }
    }

    /// The current effective-CW estimate
    /// (`cw_min · Σ observed / Σ expected`), or zero before any
    /// observation.
    #[must_use]
    pub fn cw_estimate(&self) -> f64 {
        if self.samples == 0 || self.assigned_sum <= 0.0 {
            0.0
        } else {
            f64::from(self.cfg.cw_min) * self.observed_sum / self.assigned_sum
        }
    }
}

impl DeviationDetector for CwEstimationDetector {
    fn observe(
        &mut self,
        obs: Option<&BackoffObservation>,
        _effective_thresh: f64,
    ) -> DetectorVerdict {
        if let Some(o) = obs {
            self.assigned_sum += o.assigned_slots;
            self.observed_sum += o.observed_slots;
            self.samples += 1;
        }
        let statistic = self.cw_estimate();
        let flagged = self.samples >= self.cfg.min_samples
            && statistic < self.cfg.fraction * f64::from(self.cfg.cw_min);
        DetectorVerdict { statistic, flagged }
    }

    fn statistic(&self) -> f64 {
        self.cw_estimate()
    }

    fn export_state(&self) -> DetectorState {
        DetectorState::Cw {
            assigned_sum: self.assigned_sum,
            observed_sum: self.observed_sum,
            samples: self.samples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(assigned: f64, observed: f64, deviation: f64) -> BackoffObservation {
        BackoffObservation {
            assigned_slots: assigned,
            observed_slots: observed,
            deviation_slots: deviation,
            penalty_slots: 0.0,
        }
    }

    #[test]
    fn window_detector_matches_the_raw_diagnosis_window() {
        let cfg = DiagnosisConfig::paper_default();
        let mut det = WindowDetector::new(cfg);
        let mut window = DiagnosisWindow::new(cfg);
        for (b_exp, b_act) in [(30.0, 5.0), (25.0, 0.0), (20.0, 20.0), (28.0, 3.0)] {
            let v = det.observe(Some(&obs(b_exp, b_act, 0.0)), cfg.thresh);
            window.push(b_exp - b_act);
            assert_eq!(v.statistic, window.sum());
            assert_eq!(v.flagged, window.is_flagged());
        }
        // Packets without a measurement re-evaluate the unchanged sum.
        let v = det.observe(None, cfg.thresh);
        assert_eq!(v.statistic, window.sum());
        assert_eq!(v.flagged, window.is_flagged());
    }

    #[test]
    fn cusum_accumulates_deviation_above_drift_and_resets_on_flag() {
        let cfg = SequentialConfig {
            drift: 2.0,
            threshold: 10.0,
        };
        let mut det = SequentialDetector::new(cfg);
        // Honest noise below the drift never accumulates.
        for _ in 0..10 {
            let v = det.observe(Some(&obs(30.0, 29.0, 1.0)), 0.0);
            assert!(!v.flagged);
            assert_eq!(v.statistic, 0.0);
        }
        // Sustained cheating at D = 7: score climbs 5/packet, crosses
        // 10 on the third packet, and the post-flag score restarts.
        let mut flagged_at = None;
        for i in 0..5 {
            let v = det.observe(Some(&obs(30.0, 5.0, 7.0)), 0.0);
            if v.flagged {
                flagged_at = Some((i, v.statistic));
                break;
            }
        }
        let (at, score) = flagged_at.expect("cusum must flag a sustained cheater");
        assert_eq!(at, 2, "score 5,10,15 crosses on the third packet");
        assert_eq!(score, 15.0, "the pre-reset score is reported");
        assert_eq!(det.statistic(), 0.0, "diagnosis resets the score");
    }

    #[test]
    fn cusum_ignores_packets_without_a_measurement() {
        let mut det = SequentialDetector::new(SequentialConfig::paper_default());
        det.observe(Some(&obs(30.0, 0.0, 10.0)), 0.0);
        let before = det.statistic();
        let v = det.observe(None, 0.0);
        assert_eq!(v.statistic, before);
        assert_eq!(det.statistic(), before);
    }

    #[test]
    fn cw_estimation_flags_a_shrunk_contention_window() {
        let cfg = CwEstimationConfig::paper_default();
        let mut det = CwEstimationDetector::new(cfg);
        // Honest sender: observed idle ≈ CWmin/2 per access.
        for _ in 0..40 {
            let v = det.observe(Some(&obs(15.5, 15.5, 0.0)), 0.0);
            assert!(!v.flagged, "honest estimate {} flagged", v.statistic);
        }
        assert!((det.cw_estimate() - 31.0).abs() < 1e-9);

        // PM=50 cheater: waits half the assignment.
        let mut det = CwEstimationDetector::new(cfg);
        for i in 0..40 {
            let v = det.observe(Some(&obs(15.5, 7.75, 7.75)), 0.0);
            assert_eq!(
                v.flagged,
                u64::try_from(i + 1).expect("small") >= cfg.min_samples,
                "flag exactly once min_samples is reached (i = {i})"
            );
        }
        assert!((det.cw_estimate() - 15.5).abs() < 1e-9);
    }

    #[test]
    fn cw_estimation_withholds_judgement_below_min_samples() {
        let cfg = CwEstimationConfig {
            min_samples: 5,
            fraction: 0.8,
            cw_min: 31,
        };
        let mut det = CwEstimationDetector::new(cfg);
        for i in 0..4 {
            let v = det.observe(Some(&obs(15.5, 0.0, 15.5)), 0.0);
            assert!(!v.flagged, "flagged at sample {i} before min_samples");
        }
        let v = det.observe(Some(&obs(15.5, 0.0, 15.5)), 0.0);
        assert!(v.flagged, "a zero-wait sender must flag at min_samples");
    }

    #[test]
    fn detector_config_kind_round_trips() {
        for kind in ["window", "cusum", "cw"] {
            let cfg = DetectorConfig::from_kind(kind).expect("known kind");
            assert_eq!(cfg.kind(), kind);
        }
        let err = DetectorConfig::from_kind("wnidow").expect_err("typo must be rejected");
        assert!(
            err.contains("window, cusum, or cw"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn only_the_default_detector_hides_from_the_identity() {
        assert_eq!(DetectorConfig::Window.identity_fragment(), None);
        let cusum = DetectorConfig::from_kind("cusum").expect("known");
        assert_eq!(
            cusum.identity_fragment().expect("non-default"),
            "cusum:drift=2;threshold=30"
        );
        let cw = DetectorConfig::from_kind("cw").expect("known");
        assert_eq!(
            cw.identity_fragment().expect("non-default"),
            "cw:min_samples=20;fraction=0.8;cw_min=31"
        );
    }

    #[test]
    fn exported_state_round_trips_every_detector() {
        let diag = DiagnosisConfig::paper_default();
        for kind in ["window", "cusum", "cw"] {
            let cfg = DetectorConfig::from_kind(kind).expect("known kind");
            let mut det = cfg.build(diag);
            for _ in 0..7 {
                det.observe(Some(&obs(30.0, 5.0, 7.0)), diag.thresh);
            }
            let state = det.export_state();
            assert_eq!(state.kind(), kind);
            let mut restored = cfg.build_from_state(diag, &state).expect("matching kind");
            assert_eq!(restored.statistic(), det.statistic());
            // Future verdicts agree too: the restored detector is
            // behaviorally the same machine, not just the same number.
            for measured in [Some(obs(30.0, 5.0, 7.0)), None, Some(obs(20.0, 20.0, 0.0))] {
                let a = det.observe(measured.as_ref(), diag.thresh);
                let b = restored.observe(measured.as_ref(), diag.thresh);
                assert_eq!(a, b, "{kind} diverged after restore");
            }
        }
    }

    #[test]
    fn mismatched_state_kinds_are_rejected() {
        let diag = DiagnosisConfig::paper_default();
        let cusum_state = DetectorState::Cusum { score: 3.0 };
        let err = DetectorConfig::Window
            .build_from_state(diag, &cusum_state)
            .expect_err("kind mismatch must fail");
        assert!(err.contains("cusum") && err.contains("window"), "{err}");
    }

    #[test]
    fn restored_cusum_score_is_clamped_non_negative() {
        let cfg = DetectorConfig::from_kind("cusum").expect("known");
        let diag = DiagnosisConfig::paper_default();
        let det = cfg
            .build_from_state(diag, &DetectorState::Cusum { score: -4.0 })
            .expect("matching kind");
        assert_eq!(det.statistic(), 0.0, "a corrupt negative score is clamped");
    }

    #[test]
    fn build_produces_the_matching_impl() {
        let diag = DiagnosisConfig::paper_default();
        for (kind, expect_fragment) in [("window", None), ("cusum", Some(())), ("cw", Some(()))] {
            let cfg = DetectorConfig::from_kind(kind).expect("known kind");
            let mut det = cfg.build(diag);
            // Smoke: a built detector classifies without panicking and
            // starts unflagged.
            let v = det.observe(None, diag.thresh);
            assert!(!v.flagged, "{kind} must start unflagged");
            assert_eq!(cfg.identity_fragment().map(|_| ()), expect_fragment);
        }
    }
}
