//! The diagnosis scheme (§4.3): flagging persistently misbehaving senders.
//!
//! The receiver keeps, per sender, the signed differences
//! `B_exp − B_act` of the last `W` received packets. Positive differences
//! mean the sender waited less than expected; negative mean it waited
//! more. Summing both lets occasional channel-induced over- and
//! under-counts cancel, while a persistent cheater accumulates positive
//! mass. When the sum exceeds `THRESH`, packets from that sender are
//! classified as coming from a misbehaving node.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

/// Diagnosis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiagnosisConfig {
    /// Window size `W` in packets. The paper uses 5.
    pub window: usize,
    /// Threshold `THRESH` in slots over the window. The paper uses 20
    /// (i.e. 4 slots per packet).
    pub thresh: f64,
}

impl DiagnosisConfig {
    /// The paper's configuration: `W = 5`, `THRESH = 20`.
    #[must_use]
    pub fn paper_default() -> Self {
        DiagnosisConfig {
            window: 5,
            thresh: 20.0,
        }
    }

    /// Custom parameters (used by the W/THRESH ablation).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize, thresh: f64) -> Self {
        assert!(window > 0, "diagnosis window must be non-empty");
        DiagnosisConfig { window, thresh }
    }
}

impl Default for DiagnosisConfig {
    fn default() -> Self {
        DiagnosisConfig::paper_default()
    }
}

/// The per-sender moving window of `B_exp − B_act` differences.
///
/// ```
/// use airguard_core::{DiagnosisConfig, DiagnosisWindow};
///
/// let mut w = DiagnosisWindow::new(DiagnosisConfig::paper_default());
/// for _ in 0..5 {
///     w.push(5.0); // five packets, each 5 slots short
/// }
/// assert_eq!(w.sum(), 25.0);
/// assert!(w.is_flagged()); // 25 > THRESH = 20
/// ```
#[derive(Debug, Clone)]
pub struct DiagnosisWindow {
    cfg: DiagnosisConfig,
    diffs: VecDeque<f64>,
}

impl DiagnosisWindow {
    /// Creates an empty window.
    #[must_use]
    pub fn new(cfg: DiagnosisConfig) -> Self {
        DiagnosisWindow {
            cfg,
            diffs: VecDeque::with_capacity(cfg.window),
        }
    }

    /// Records the difference for a newly received packet, evicting the
    /// oldest entry once `W` packets are held.
    pub fn push(&mut self, diff: f64) {
        if self.diffs.len() == self.cfg.window {
            self.diffs.pop_front();
        }
        self.diffs.push_back(diff);
    }

    /// The current window sum `Σ(B_exp − B_act)`.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.diffs.iter().sum()
    }

    /// Whether the window currently exceeds `THRESH` — the "Misbehaving"
    /// designation of §4.3.
    #[must_use]
    pub fn is_flagged(&self) -> bool {
        self.sum() > self.cfg.thresh
    }

    /// Number of differences currently held (≤ `W`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.diffs.len()
    }

    /// True when no packets have been recorded yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diffs.is_empty()
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> DiagnosisConfig {
        self.cfg
    }

    /// The held differences, oldest first — the window's complete
    /// serializable state (checkpointing and crash-preservation
    /// round-trip through this).
    #[must_use]
    pub fn diffs(&self) -> Vec<f64> {
        self.diffs.iter().copied().collect()
    }

    /// Rebuilds a window from previously exported [`diffs`]. Extra
    /// leading entries beyond `W` are evicted exactly as live pushes
    /// would have evicted them, so a restore can never hold more
    /// history than the running window did.
    ///
    /// [`diffs`]: DiagnosisWindow::diffs
    #[must_use]
    pub fn restore(cfg: DiagnosisConfig, diffs: &[f64]) -> Self {
        let mut w = DiagnosisWindow::new(cfg);
        for &d in diffs {
            w.push(d);
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_evicts_oldest() {
        let mut w = DiagnosisWindow::new(DiagnosisConfig::new(3, 10.0));
        for d in [1.0, 2.0, 3.0, 4.0] {
            w.push(d);
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.sum(), 9.0, "1.0 evicted");
    }

    #[test]
    fn threshold_is_strict() {
        let mut w = DiagnosisWindow::new(DiagnosisConfig::paper_default());
        for _ in 0..5 {
            w.push(4.0);
        }
        assert_eq!(w.sum(), 20.0);
        assert!(!w.is_flagged(), "sum must *exceed* THRESH");
        w.push(4.1);
        assert!(w.is_flagged());
    }

    #[test]
    fn negative_differences_offset_positive_ones() {
        // A well-behaved node seen 10 slots short once but 10 slots long
        // later nets out to zero — the reason the paper sums signed
        // differences.
        let mut w = DiagnosisWindow::new(DiagnosisConfig::paper_default());
        w.push(25.0);
        assert!(w.is_flagged());
        w.push(-25.0);
        assert!(!w.is_flagged());
    }

    #[test]
    fn empty_window_is_never_flagged() {
        let w = DiagnosisWindow::new(DiagnosisConfig::paper_default());
        assert!(w.is_empty());
        assert!(!w.is_flagged());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_rejected() {
        let _ = DiagnosisConfig::new(0, 20.0);
    }

    #[test]
    fn restore_round_trips_and_bounds_history() {
        let cfg = DiagnosisConfig::new(3, 10.0);
        let mut w = DiagnosisWindow::new(cfg);
        for d in [1.0, 2.0, 3.0, 4.0] {
            w.push(d);
        }
        let restored = DiagnosisWindow::restore(cfg, &w.diffs());
        assert_eq!(restored.diffs(), w.diffs());
        assert_eq!(restored.sum(), w.sum());
        // Oversized exports evict exactly like live pushes would.
        let over = DiagnosisWindow::restore(cfg, &[9.0, 1.0, 2.0, 3.0]);
        assert_eq!(over.diffs(), vec![1.0, 2.0, 3.0]);
    }

    proptest! {
        #[test]
        fn sum_equals_last_w_diffs(diffs in proptest::collection::vec(-100.0f64..100.0, 1..40)) {
            let cfg = DiagnosisConfig::paper_default();
            let mut w = DiagnosisWindow::new(cfg);
            for &d in &diffs {
                w.push(d);
            }
            let tail: f64 = diffs.iter().rev().take(cfg.window).sum();
            prop_assert!((w.sum() - tail).abs() < 1e-9);
            prop_assert!(w.len() <= cfg.window);
        }

        #[test]
        fn persistent_cheater_always_flagged(per_packet in 4.1f64..50.0) {
            // Any steady positive difference above THRESH/W slots flags
            // within W packets.
            let cfg = DiagnosisConfig::paper_default();
            let mut w = DiagnosisWindow::new(cfg);
            for _ in 0..cfg.window {
                w.push(per_packet);
            }
            prop_assert!(w.is_flagged());
        }
    }
}
