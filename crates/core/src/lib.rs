//! The paper's contribution: detection and handling of MAC-layer
//! misbehavior via receiver-assigned backoff.
//!
//! Kyasanur & Vaidya (DSN 2003) modify IEEE 802.11 DCF so that the
//! *receiver* of a flow dictates the sender's backoff and can therefore
//! tell, within a handful of packets, whether the sender actually waited.
//! The scheme has three cooperating parts, all implemented here:
//!
//! 1. **Deviation identification** ([`retry_fn`], [`monitor`]): the
//!    receiver assigns backoff `B_exp ∈ [0, CWmin]` in each CTS/ACK;
//!    retry backoffs come from the public deterministic function
//!    [`retry_fn::retry_backoff`], so the RTS `attempt` field lets the
//!    receiver reconstruct the sender's total expected backoff. Comparing
//!    against the observed idle-slot count `B_act`, the sender *deviated*
//!    if `B_act < α·B_exp` (Eq. 1).
//! 2. **Correction** ([`correction`]): each deviation draws a penalty
//!    proportional to its magnitude `D = max(α·B_exp − B_act, 0)`, added
//!    to the next assigned backoff, so cheaters gain nothing.
//! 3. **Diagnosis** ([`diagnosis`], [`detector`]): the signed
//!    differences `B_exp − B_act` of the last `W` packets are summed; a
//!    sender whose sum exceeds `THRESH` is flagged as misbehaving. The
//!    window scheme is one [`detector::DeviationDetector`]
//!    implementation; CUSUM sequential testing and contention-window
//!    estimation are pluggable alternatives (ROADMAP item 4).
//!
//! [`CorrectPolicy`] packages all three behind the
//! [`airguard_mac::BackoffPolicy`] trait so the unmodified DCF engine
//! runs the modified protocol. The §4.1 attempt-verification probe and the
//! §4.4 receiver-misbehavior check (deterministic assignment function `g`)
//! are included as configurable extensions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correction;
pub mod detector;
pub mod diagnosis;
pub mod monitor;
pub mod observer;
pub mod policy;
pub mod receiver_check;
pub mod retry_fn;
pub mod source;

pub use correction::CorrectionConfig;
pub use detector::{
    CwEstimationConfig, CwEstimationDetector, DetectorConfig, DetectorState, DetectorVerdict,
    DeviationDetector, SequentialConfig, SequentialDetector, WindowDetector,
};
pub use diagnosis::{DiagnosisConfig, DiagnosisWindow};
pub use monitor::{Monitor, MonitorConfig, MonitorReport, SenderStats};
pub use observer::{PairStats, ThirdPartyObserver};
pub use policy::{AssignmentSource, CorrectConfig, CorrectPolicy};
pub use source::{ObservationSource, SourceError, StationObservation};
