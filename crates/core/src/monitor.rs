//! The receiver-side monitor: per-sender bookkeeping for deviation
//! identification, correction, and diagnosis.
//!
//! One [`Monitor`] lives inside each node's [`crate::CorrectPolicy`] and
//! tracks every sender it receives from. The moving parts per sender:
//!
//! * `in_force` — the monitor's belief of the base backoff the sender is
//!   currently using. It is committed from `pending_in_force` when a
//!   *fresh* exchange (attempt 1) begins, because the sender latches
//!   assignments from ACK frames — the last ACK we transmitted is exactly
//!   what the sender is acting on.
//! * `snapshot` — the idle-slot counter reading at the end of our last
//!   ACK to the sender. `B_act` for the next exchange is the counter
//!   delta since then (§4.1's "idle slots between the sending of an ACK
//!   and the reception of the next RTS").
//! * `pending_obs` — the backoff measurement taken at the most recent
//!   RTS, handed to the sender's [`DeviationDetector`] when the
//!   exchange's DATA actually arrives (detection is defined over
//!   received *packets*).
//! * `probe_expect` — armed by the §4.1 attempt-verification probe: after
//!   intentionally dropping an RTS carrying attempt `a`, the next RTS
//!   must carry `a + 1`; anything else is proof of attempt-number
//!   spoofing.

use std::collections::BTreeMap;

use airguard_mac::policy::uniform_backoff;
use airguard_mac::{BackoffObservation, MacTiming, PacketVerdict, Slots};
use airguard_sim::{NodeId, RngStream};
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::correction::CorrectionConfig;
use crate::detector::{DetectorConfig, DetectorState, DeviationDetector};
use crate::diagnosis::DiagnosisConfig;
use crate::receiver_check::g_value;

/// How the monitor draws the base (pre-penalty) part of each assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AssignmentSource {
    /// Uniformly random from `[0, CWmin]` — the paper's main scheme.
    #[default]
    Random,
    /// From the public deterministic function `g` (§4.4 extension), so
    /// senders can verify the receiver is not favouring anyone.
    DeterministicG,
}

/// The adaptive-THRESH extension (the paper's deferred future work):
/// the monitor tracks an EMA of the per-packet |B_exp − B_act| noise of
/// senders it does not currently flag, and raises the effective
/// threshold to `factor · W · ema` when channel noise exceeds the static
/// setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Multiplier on the noise-scaled threshold.
    pub factor: f64,
    /// EMA smoothing weight for new observations.
    pub ema_alpha: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            factor: 2.0,
            ema_alpha: 0.05,
        }
    }
}

/// Monitor configuration: the correction and diagnosis parameters plus
/// the optional extensions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Deviation/penalty parameters (α, extra penalty).
    pub correction: CorrectionConfig,
    /// Diagnosis parameters (W, THRESH).
    pub diagnosis: DiagnosisConfig,
    /// Probability of intentionally dropping a decoded RTS to verify the
    /// sender increments its attempt number (§4.1). Zero disables probing.
    pub probe_rate: f64,
    /// Where assignment bases come from.
    pub assignment_source: AssignmentSource,
    /// Adaptive threshold selection (§6 future work); `None` keeps the
    /// static `THRESH`.
    pub adaptive: Option<AdaptiveConfig>,
}

impl MonitorConfig {
    /// The paper's configuration: α = 0.9, W = 5, THRESH = 20, no
    /// probing, random assignments.
    #[must_use]
    pub fn paper_default() -> Self {
        MonitorConfig {
            correction: CorrectionConfig::paper_default(),
            diagnosis: DiagnosisConfig::paper_default(),
            probe_rate: 0.0,
            assignment_source: AssignmentSource::Random,
            adaptive: None,
        }
    }
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig::paper_default()
    }
}

#[derive(Debug)]
struct SenderRecord {
    in_force: Option<u32>,
    pending_in_force: Option<u32>,
    next_assign: u32,
    has_assignment: bool,
    snapshot: Option<u64>,
    pending_obs: Option<BackoffObservation>,
    last_seq: Option<u64>,
    detector: Box<dyn DeviationDetector>,
    /// A pending attempt-verification probe: (sequence number of the
    /// dropped RTS, attempt number it carried).
    probe_expect: Option<(u64, u8)>,
    stats: SenderStats,
}

impl SenderRecord {
    fn new(node: NodeId, diagnosis: DiagnosisConfig, detector: DetectorConfig) -> Self {
        SenderRecord {
            in_force: None,
            pending_in_force: None,
            next_assign: 0,
            has_assignment: false,
            snapshot: None,
            pending_obs: None,
            last_seq: None,
            detector: detector.build(diagnosis),
            probe_expect: None,
            stats: SenderStats::new(node),
        }
    }
}

/// Accumulated per-sender statistics, exported at end of run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SenderStats {
    /// The sender these statistics describe.
    pub node: NodeId,
    /// Packets delivered from this sender.
    pub packets: u64,
    /// Packets classified as coming from a misbehaving sender.
    pub flagged_packets: u64,
    /// Exchanges designated as deviations by Eq. 1.
    pub deviations: u64,
    /// Attempt-verification probes issued.
    pub probes_sent: u64,
    /// Proven attempt-number cheats (retry after a probe did not
    /// increment the attempt field).
    pub attempt_cheats: u64,
}

impl SenderStats {
    fn new(node: NodeId) -> Self {
        SenderStats {
            node,
            packets: 0,
            flagged_packets: 0,
            deviations: 0,
            probes_sent: 0,
            attempt_cheats: 0,
        }
    }

    /// Fraction of this sender's packets that were flagged, as a
    /// percentage (0 if no packets were received).
    #[must_use]
    pub fn flagged_percent(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            100.0 * self.flagged_packets as f64 / self.packets as f64
        }
    }
}

/// End-of-run snapshot of everything a monitor concluded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MonitorReport {
    /// Per-sender statistics, sorted by node id.
    pub senders: Vec<SenderStats>,
}

impl MonitorReport {
    /// Statistics for one sender, if it was ever observed.
    #[must_use]
    pub fn sender(&self, node: NodeId) -> Option<&SenderStats> {
        self.senders.iter().find(|s| s.node == node)
    }
}

/// The per-receiver misbehavior monitor.
#[derive(Debug)]
pub struct Monitor {
    me: NodeId,
    cfg: MonitorConfig,
    detector: DetectorConfig,
    records: BTreeMap<NodeId, SenderRecord>,
    /// EMA of per-packet |diff| noise from currently-unflagged senders.
    noise_ema: f64,
}

impl Monitor {
    /// Creates a monitor for receiver node `me` running the default
    /// (window) detector.
    #[must_use]
    pub fn new(me: NodeId, cfg: MonitorConfig) -> Self {
        Monitor::with_detector(me, cfg, DetectorConfig::default())
    }

    /// Creates a monitor whose per-sender verdict state runs the given
    /// detector.
    #[must_use]
    pub fn with_detector(me: NodeId, cfg: MonitorConfig, detector: DetectorConfig) -> Self {
        Monitor {
            me,
            cfg,
            detector,
            records: BTreeMap::new(),
            noise_ema: 0.0,
        }
    }

    /// The detector configuration every sender record is built from.
    #[must_use]
    pub fn detector(&self) -> DetectorConfig {
        self.detector
    }

    /// The effective diagnosis threshold currently in force.
    #[must_use]
    pub fn effective_thresh(&self) -> f64 {
        match self.cfg.adaptive {
            None => self.cfg.diagnosis.thresh,
            Some(a) => self
                .cfg
                .diagnosis
                .thresh
                .max(a.factor * self.cfg.diagnosis.window as f64 * self.noise_ema),
        }
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &MonitorConfig {
        &self.cfg
    }

    fn record(&mut self, src: NodeId) -> &mut SenderRecord {
        let diagnosis = self.cfg.diagnosis;
        let detector = self.detector;
        self.records
            .entry(src)
            .or_insert_with(|| SenderRecord::new(src, diagnosis, detector))
    }

    /// §4.1 probe decision: should the MAC respond to this RTS?
    pub fn should_respond(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        rng: &mut RngStream,
    ) -> bool {
        if self.cfg.probe_rate <= 0.0 {
            return true;
        }
        let probe_rate = self.cfg.probe_rate;
        let rec = self.record(src);
        // Do not probe while the retry limit is near: a probe on the last
        // attempt makes the sender drop the packet and the verification
        // would be vacuous anyway.
        if rec.probe_expect.is_none() && attempt < 5 && rng.random_bool(probe_rate) {
            rec.probe_expect = Some((seq, attempt));
            rec.stats.probes_sent += 1;
            false
        } else {
            true
        }
    }

    /// Handles a decoded RTS: verifies pending probes, commits the
    /// in-force assignment on fresh exchanges, measures `B_act` against
    /// the reconstructed `B_exp`, and draws the next assignment
    /// (base + penalty).
    ///
    /// Returns the backoff measurement when one could be taken (both an
    /// in-force assignment and a `B_act` baseline existed); the
    /// first-ever exchange from a sender yields `None`.
    pub fn on_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        idle_reading: u64,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Option<BackoffObservation> {
        let correction = self.cfg.correction;
        let source = self.cfg.assignment_source;
        let me = self.me;
        let rec = self.record(src);

        // Probe verification: the retry after an intentionally dropped RTS
        // must carry a *larger* attempt number. It may be larger by more
        // than one (the retry itself can be lost to a genuine collision),
        // and a different sequence number makes the probe inconclusive
        // (the sender gave up on the probed packet).
        if let Some((probed_seq, probed_attempt)) = rec.probe_expect.take() {
            if seq == probed_seq && attempt <= probed_attempt {
                rec.stats.attempt_cheats += 1;
            }
        }

        // A new exchange (fresh sequence number) means the sender latched
        // whatever our last ACK carried. Keying on the sequence number
        // rather than `attempt == 1` matters: if the fresh exchange's
        // first RTS is lost in a collision, the first RTS we *observe*
        // already carries attempt ≥ 2, but the sender is nevertheless
        // acting on the new assignment.
        if rec.last_seq != Some(seq) {
            if let Some(p) = rec.pending_in_force {
                rec.in_force = Some(p);
            }
            rec.last_seq = Some(seq);
        }

        // Deviation measurement needs both a known assignment and a
        // measurement baseline; the first-ever exchange from a sender has
        // neither.
        let mut penalty = 0.0;
        let mut observation = None;
        if let (Some(base), Some(snap)) = (rec.in_force, rec.snapshot) {
            let b_exp =
                crate::retry_fn::expected_total_backoff(base, src, attempt.max(1), timing) as f64;
            let b_act = idle_reading.saturating_sub(snap) as f64;
            let deviation = correction.deviation(b_exp, b_act);
            if deviation > 0.0 {
                rec.stats.deviations += 1;
            }
            penalty = correction.penalty(deviation);
            let obs = BackoffObservation {
                assigned_slots: b_exp,
                observed_slots: b_act,
                deviation_slots: deviation,
                penalty_slots: penalty,
            };
            rec.pending_obs = Some(obs);
            observation = Some(obs);
        }

        let base = match source {
            AssignmentSource::Random => uniform_backoff(timing.cw_min, rng).count(),
            AssignmentSource::DeterministicG => g_value(me, src, seq + 1, timing),
        };
        rec.next_assign = (base + penalty.round() as u32).min(correction.max_assignment);
        rec.has_assignment = true;
        observation
    }

    /// The backoff value to embed in CTS/ACK frames to `dst`.
    #[must_use]
    pub fn assignment(&mut self, dst: NodeId, timing: &MacTiming) -> Slots {
        let fallback = timing.cw_min / 2;
        let rec = self.record(dst);
        if rec.has_assignment {
            Slots::new(rec.next_assign)
        } else {
            // Defensive: an exchange always starts with an observed RTS,
            // so this path is unreachable in practice.
            Slots::new(fallback)
        }
    }

    /// Marks the end of our ACK transmission to `dst`: snapshots the idle
    /// counter (the `B_act` baseline) and latches the assignment the ACK
    /// carried.
    pub fn on_ack_sent(&mut self, dst: NodeId, idle_reading: u64) {
        let rec = self.record(dst);
        rec.snapshot = Some(idle_reading);
        rec.pending_in_force = Some(rec.next_assign);
    }

    /// Records a delivered packet from `src` and classifies it through
    /// the sender's detector.
    pub fn on_data(&mut self, src: NodeId) -> PacketVerdict {
        let thresh = self.effective_thresh();
        let adaptive = self.cfg.adaptive;
        let deviation;
        let verdict;
        let mut measured_diff = None;
        {
            let rec = self.record(src);
            rec.stats.packets += 1;
            let obs = rec.pending_obs.take();
            deviation = match &obs {
                Some(o) => {
                    measured_diff = Some(o.assigned_slots - o.observed_slots);
                    o.deviation_slots
                }
                None => 0.0,
            };
            verdict = rec.detector.observe(obs.as_ref(), thresh);
            if verdict.flagged {
                rec.stats.flagged_packets += 1;
            }
        }
        if let (Some(a), Some(diff), false) = (adaptive, measured_diff, verdict.flagged) {
            // Only unflagged senders feed the noise estimate, so a cheater
            // cannot inflate the threshold that protects it.
            self.noise_ema = (1.0 - a.ema_alpha) * self.noise_ema + a.ema_alpha * diff.abs();
        }
        PacketVerdict {
            deviation_slots: deviation,
            window_sum: verdict.statistic,
            flagged: verdict.flagged,
        }
    }

    /// The serializable detector state of every observed sender,
    /// sorted by node id — what a preserving crash reset and the live
    /// service's checkpoints persist.
    #[must_use]
    pub fn export_detector_states(&self) -> Vec<(NodeId, DetectorState)> {
        self.records
            .iter()
            .map(|(node, rec)| (*node, rec.detector.export_state()))
            .collect()
    }

    /// Replaces every sender's detector with one rebuilt from its
    /// exported [`DetectorState`].
    ///
    /// Behaviorally a no-op — the restored detectors are
    /// indistinguishable from the originals — but it forces monitor
    /// preservation *through* the explicit serializable state: a field
    /// added to a detector without a matching [`DetectorState`] entry
    /// now breaks tests (and golden digests) immediately, instead of
    /// silently resetting mid-diagnosis on a real restart.
    ///
    /// # Panics
    ///
    /// Panics if a record's exported state does not match the
    /// monitor's configured detector kind — impossible by
    /// construction, since every record is built from that config.
    pub fn round_trip_detectors(&mut self) {
        let diagnosis = self.cfg.diagnosis;
        let detector = self.detector;
        for rec in self.records.values_mut() {
            let state = rec.detector.export_state();
            rec.detector = detector
                .build_from_state(diagnosis, &state)
                // lint:allow(panic-expect) — state was exported by a detector built from this same config, so the kinds always match
                .expect("monitor detectors always match their own config");
        }
    }

    /// End-of-run statistics for every observed sender.
    #[must_use]
    pub fn report(&self) -> MonitorReport {
        let mut senders: Vec<SenderStats> = self.records.values().map(|r| r.stats).collect();
        senders.sort_by_key(|s| s.node);
        MonitorReport { senders }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_sim::MasterSeed;

    fn timing() -> MacTiming {
        MacTiming::dsss_2mbps()
    }

    fn rng() -> RngStream {
        MasterSeed::new(33).stream("monitor-test", 0)
    }

    fn monitor() -> Monitor {
        Monitor::new(NodeId::new(0), MonitorConfig::paper_default())
    }

    const S: NodeId = NodeId::new(3);

    /// Runs one full honest exchange: RTS observed with the exact expected
    /// idle count, then DATA, then ACK sent.
    fn honest_exchange(
        m: &mut Monitor,
        r: &mut RngStream,
        idle: &mut u64,
        seq: u64,
    ) -> PacketVerdict {
        let t = timing();
        m.on_rts(S, seq, 1, *idle, &t, r);
        let v = m.on_data(S);
        let assigned = m.assignment(S, &t).count();
        m.on_ack_sent(S, *idle);
        // The honest sender will wait exactly the assignment next time.
        *idle += u64::from(assigned);
        v
    }

    #[test]
    fn first_exchange_measures_nothing() {
        let mut m = monitor();
        let mut r = rng();
        let mut idle = 100;
        let v = honest_exchange(&mut m, &mut r, &mut idle, 0);
        assert_eq!(v.deviation_slots, 0.0);
        assert!(!v.flagged);
    }

    #[test]
    fn honest_sender_never_flagged() {
        let mut m = monitor();
        let mut r = rng();
        let mut idle = 0;
        for seq in 0..50 {
            let v = honest_exchange(&mut m, &mut r, &mut idle, seq);
            assert!(!v.flagged, "honest sender flagged at seq {seq}");
            assert_eq!(v.deviation_slots, 0.0);
        }
        let report = m.report();
        let stats = report.sender(S).unwrap();
        assert_eq!(stats.packets, 50);
        assert_eq!(stats.flagged_packets, 0);
        assert_eq!(stats.deviations, 0);
    }

    #[test]
    fn full_cheater_is_flagged_within_window() {
        // Sender that never waits: B_act stays at the snapshot.
        let t = timing();
        let mut m = monitor();
        let mut r = rng();
        let idle = 500u64;
        // Bootstrap: one exchange to establish assignment + snapshot.
        m.on_rts(S, 0, 1, idle, &t, &mut r);
        m.on_data(S);
        m.on_ack_sent(S, idle);
        let mut flagged_at = None;
        for seq in 1..20u64 {
            m.on_rts(S, seq, 1, idle, &t, &mut r); // zero idle slots elapsed
            let v = m.on_data(S);
            m.on_ack_sent(S, idle);
            if v.flagged {
                flagged_at = Some(seq);
                break;
            }
        }
        let at = flagged_at.expect("full cheater must be flagged");
        assert!(
            at <= 6,
            "flagging took {at} packets; W=5 should suffice quickly"
        );
        assert!(m.report().sender(S).unwrap().deviations > 0);
    }

    #[test]
    fn penalty_raises_the_next_assignment() {
        let t = timing();
        let mut m = monitor();
        let mut r = rng();
        m.on_rts(S, 0, 1, 0, &t, &mut r);
        m.on_data(S);
        m.on_ack_sent(S, 0);
        // Collect honest assignment magnitudes for reference.
        let honest = m.assignment(S, &t).count();
        // Cheat: arrive with zero idle progression.
        m.on_rts(S, 1, 1, 0, &t, &mut r);
        let punished = m.assignment(S, &t).count();
        // The punished assignment includes D + extra on top of a fresh
        // uniform draw; unless the in-force assignment was tiny this
        // exceeds CWmin.
        if honest > 5 {
            assert!(
                punished > t.cw_min / 2,
                "expected penalty-inflated assignment, got {punished} (honest was {honest})"
            );
        }
    }

    #[test]
    fn retries_extend_b_exp_via_f() {
        let t = timing();
        let mut m = monitor();
        let mut r = rng();
        // Bootstrap.
        m.on_rts(S, 0, 1, 0, &t, &mut r);
        m.on_data(S);
        let assigned = m.assignment(S, &t).count();
        m.on_ack_sent(S, 0);
        // The sender collides twice, so attempt 3 arrives; a compliant
        // sender would have waited base + f(2) + f(3).
        let expected = crate::retry_fn::expected_total_backoff(assigned, S, 3, &t);
        m.on_rts(S, 1, 3, expected, &t, &mut r);
        let v = m.on_data(S);
        assert_eq!(v.deviation_slots, 0.0, "compliant retry must not deviate");
        // Window diff should be ~0, not the large negative it would be if
        // retries were ignored.
        assert!(v.window_sum.abs() < 1.0);
    }

    #[test]
    fn waiting_longer_yields_negative_diffs_not_flags() {
        let t = timing();
        let mut m = monitor();
        let mut r = rng();
        m.on_rts(S, 0, 1, 0, &t, &mut r);
        m.on_data(S);
        let mut idle = 0u64;
        m.on_ack_sent(S, idle);
        for seq in 1..10 {
            let assigned = u64::from(m.assignment(S, &t).count());
            idle += assigned + 10; // waits 10 slots longer than told
            m.on_rts(S, seq, 1, idle, &t, &mut r);
            let v = m.on_data(S);
            m.on_ack_sent(S, idle);
            assert!(!v.flagged);
            assert!(v.window_sum <= 0.0);
        }
    }

    #[test]
    fn probe_catches_attempt_spoofing() {
        let t = timing();
        let mut cfg = MonitorConfig::paper_default();
        cfg.probe_rate = 1.0; // always probe
        let mut m = Monitor::new(NodeId::new(0), cfg);
        let mut r = rng();
        // First RTS: the monitor probes (drops) it.
        assert!(!m.should_respond(S, 0, 1, &mut r));
        // The spoofing sender retries still claiming attempt 1.
        // (probe_expect is armed, so no new probe is issued.)
        assert!(m.should_respond(S, 0, 1, &mut r));
        m.on_rts(S, 0, 1, 0, &t, &mut r);
        assert_eq!(m.report().sender(S).unwrap().attempt_cheats, 1);
    }

    #[test]
    fn probe_passes_honest_senders() {
        let t = timing();
        let mut cfg = MonitorConfig::paper_default();
        cfg.probe_rate = 1.0;
        let mut m = Monitor::new(NodeId::new(0), cfg);
        let mut r = rng();
        assert!(!m.should_respond(S, 0, 1, &mut r));
        assert!(m.should_respond(S, 0, 2, &mut r));
        m.on_rts(S, 0, 2, 0, &t, &mut r);
        assert_eq!(m.report().sender(S).unwrap().attempt_cheats, 0);
        assert_eq!(m.report().sender(S).unwrap().probes_sent, 1);
    }

    #[test]
    fn deterministic_assignment_uses_g() {
        let t = timing();
        let cfg = MonitorConfig {
            assignment_source: AssignmentSource::DeterministicG,
            ..MonitorConfig::paper_default()
        };
        let mut m = Monitor::new(NodeId::new(0), cfg);
        let mut r = rng();
        m.on_rts(S, 7, 1, 0, &t, &mut r);
        let a = m.assignment(S, &t).count();
        assert_eq!(
            a,
            g_value(NodeId::new(0), S, 8, &t),
            "base = g, no penalty yet"
        );
    }

    #[test]
    fn report_sorts_by_node() {
        let t = timing();
        let mut m = monitor();
        let mut r = rng();
        for id in [5u32, 1, 3] {
            m.on_rts(NodeId::new(id), 0, 1, 0, &t, &mut r);
            m.on_data(NodeId::new(id));
        }
        let report = m.report();
        let ids: Vec<u32> = report.senders.iter().map(|s| s.node.value()).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn cusum_monitor_flags_a_full_cheater_and_resets() {
        let t = timing();
        let det = crate::detector::DetectorConfig::from_kind("cusum").expect("known");
        let mut m = Monitor::with_detector(NodeId::new(0), MonitorConfig::paper_default(), det);
        assert_eq!(m.detector().kind(), "cusum");
        let mut r = rng();
        let idle = 500u64;
        m.on_rts(S, 0, 1, idle, &t, &mut r);
        m.on_data(S);
        m.on_ack_sent(S, idle);
        let mut flagged_at = None;
        for seq in 1..30u64 {
            m.on_rts(S, seq, 1, idle, &t, &mut r); // zero idle slots elapsed
            let v = m.on_data(S);
            m.on_ack_sent(S, idle);
            if v.flagged {
                flagged_at = Some((seq, v));
                break;
            }
        }
        let (_, v) = flagged_at.expect("cusum must flag a full cheater");
        assert!(
            v.window_sum > 30.0,
            "the verdict statistic is the crossing CUSUM score, got {}",
            v.window_sum
        );
    }

    #[test]
    fn cw_monitor_flags_a_half_waiting_cheater() {
        let t = timing();
        let det = crate::detector::DetectorConfig::from_kind("cw").expect("known");
        let mut m = Monitor::with_detector(NodeId::new(0), MonitorConfig::paper_default(), det);
        let mut r = rng();
        let mut idle = 0u64;
        m.on_rts(S, 0, 1, idle, &t, &mut r);
        m.on_data(S);
        m.on_ack_sent(S, idle);
        let mut flagged = false;
        for seq in 1..60u64 {
            // Waits only half of what it was told.
            idle += u64::from(m.assignment(S, &t).count()) / 2;
            m.on_rts(S, seq, 1, idle, &t, &mut r);
            let v = m.on_data(S);
            m.on_ack_sent(S, idle);
            flagged |= v.flagged;
        }
        assert!(flagged, "CW estimation must flag a PM=50 cheater");
    }

    #[test]
    fn detector_round_trip_preserves_mid_diagnosis_state() {
        // Round-trip one monitor through its serializable detector
        // state mid-diagnosis; a control monitor runs uninterrupted.
        // Every subsequent verdict (including CUSUM scores and CW
        // accumulators, not just the window sums) must agree.
        let t = timing();
        for kind in ["window", "cusum", "cw"] {
            let det = crate::detector::DetectorConfig::from_kind(kind).expect("known");
            let mut preserved =
                Monitor::with_detector(NodeId::new(0), MonitorConfig::paper_default(), det);
            let mut control =
                Monitor::with_detector(NodeId::new(0), MonitorConfig::paper_default(), det);
            let mut r1 = rng();
            let mut r2 = rng();
            let idle = 500u64; // full cheater: the idle counter never moves
            let drive = |m: &mut Monitor, r: &mut RngStream, seq: u64| {
                m.on_rts(S, seq, 1, idle, &t, r);
                let v = m.on_data(S);
                m.on_ack_sent(S, idle);
                v
            };
            for seq in 0..10 {
                drive(&mut preserved, &mut r1, seq);
                drive(&mut control, &mut r2, seq);
            }
            assert_eq!(
                preserved.export_detector_states(),
                control.export_detector_states()
            );
            preserved.round_trip_detectors();
            for seq in 10..40 {
                let a = drive(&mut preserved, &mut r1, seq);
                let b = drive(&mut control, &mut r2, seq);
                assert_eq!(
                    a, b,
                    "{kind} diverged after a mid-diagnosis round-trip (seq {seq})"
                );
            }
            assert_eq!(preserved.report(), control.report());
            assert!(
                preserved
                    .report()
                    .sender(S)
                    .expect("observed")
                    .flagged_packets
                    > 0,
                "{kind} must have been mid-diagnosis for the round-trip to matter"
            );
        }
    }

    #[test]
    fn default_monitor_runs_the_window_detector() {
        assert_eq!(monitor().detector().kind(), "window");
    }

    #[test]
    fn flagged_percent_arithmetic() {
        let mut s = SenderStats::new(S);
        assert_eq!(s.flagged_percent(), 0.0);
        s.packets = 8;
        s.flagged_packets = 2;
        assert!((s.flagged_percent() - 25.0).abs() < 1e-12);
    }
}
