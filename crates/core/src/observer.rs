//! Third-party observation (§4.4 / §6): the building block for collusion
//! detection.
//!
//! The paper notes that detecting *collusion* between a sender and a
//! receiver "will require a third party observer to monitor the behavior
//! of both the sender and the receiver". Everything such an observer
//! needs is already on the air in the modified protocol:
//!
//! * CTS/ACK frames carry the assigned backoff, so an observer within
//!   decode range learns exactly what the receiver told the sender;
//! * RTS frames carry the attempt number, so the observer can replay the
//!   deterministic retry schedule `f` and reconstruct `B_exp`;
//! * the idle-slot count between the overheard ACK and the next RTS is
//!   the observer's own `B_act` measurement.
//!
//! [`ThirdPartyObserver`] therefore runs the *same* deviation test and
//! diagnosis window as the receiver — from a third position, with no
//! cooperation from either endpoint. If its verdict disagrees
//! persistently with the traffic pattern (a flagrant sender that the
//! receiver keeps serving without penalty — visible as assignments that
//! never grow), the pair is colluding.

use std::collections::BTreeMap;

use airguard_mac::frames::{Frame, FrameKind};
use airguard_mac::MacTiming;
use airguard_sim::NodeId;
use serde::{Deserialize, Serialize};

use crate::correction::CorrectionConfig;
use crate::diagnosis::{DiagnosisConfig, DiagnosisWindow};

/// Observer verdict about one (sender → receiver) pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairStats {
    /// The observed sender.
    pub sender: NodeId,
    /// The observed receiver.
    pub receiver: NodeId,
    /// Exchanges the observer could measure.
    pub measured: u64,
    /// Measured deviations (Eq. 1 from the observer's vantage point).
    pub deviations: u64,
    /// Exchanges at which the diagnosis window was over threshold.
    pub flagged: u64,
    /// Exchanges where the sender deviated but the receiver's *next*
    /// assignment did not grow — the collusion signature (an honest
    /// receiver must penalize).
    pub unpunished_deviations: u64,
}

impl PairStats {
    fn new(sender: NodeId, receiver: NodeId) -> Self {
        PairStats {
            sender,
            receiver,
            measured: 0,
            deviations: 0,
            flagged: 0,
            unpunished_deviations: 0,
        }
    }

    /// Whether the observer considers this pair suspicious of collusion:
    /// a majority of measured deviations went unpunished.
    #[must_use]
    pub fn collusion_suspected(&self) -> bool {
        self.deviations >= 5 && self.unpunished_deviations * 2 > self.deviations
    }
}

#[derive(Debug)]
struct PairRecord {
    /// Last assignment overheard in a CTS/ACK to the sender.
    assigned: Option<u32>,
    /// Assignment in force for the sender's current exchange.
    in_force: Option<u32>,
    /// Observer's idle reading at the overheard ACK.
    snapshot: Option<u64>,
    /// Sequence number of the exchange in force.
    last_seq: Option<u64>,
    /// Magnitude of the most recently measured deviation (slots).
    last_deviation: f64,
    window: DiagnosisWindow,
    stats: PairStats,
}

impl PairRecord {
    fn new(sender: NodeId, receiver: NodeId, diagnosis: DiagnosisConfig) -> Self {
        PairRecord {
            assigned: None,
            in_force: None,
            snapshot: None,
            last_seq: None,
            last_deviation: 0.0,
            window: DiagnosisWindow::new(diagnosis),
            stats: PairStats::new(sender, receiver),
        }
    }
}

/// A passive monitor of overheard (sender, receiver) exchanges.
#[derive(Debug)]
pub struct ThirdPartyObserver {
    correction: CorrectionConfig,
    diagnosis: DiagnosisConfig,
    pairs: BTreeMap<(NodeId, NodeId), PairRecord>,
}

impl ThirdPartyObserver {
    /// Creates an observer with the paper's default parameters.
    #[must_use]
    pub fn new(correction: CorrectionConfig, diagnosis: DiagnosisConfig) -> Self {
        ThirdPartyObserver {
            correction,
            diagnosis,
            pairs: BTreeMap::new(),
        }
    }

    fn pair(&mut self, sender: NodeId, receiver: NodeId) -> &mut PairRecord {
        let diagnosis = self.diagnosis;
        self.pairs
            .entry((sender, receiver))
            .or_insert_with(|| PairRecord::new(sender, receiver, diagnosis))
    }

    /// Feeds one overheard frame plus the observer's own idle-slot
    /// reading at decode time.
    pub fn observe(&mut self, frame: &Frame, idle_reading: u64, timing: &MacTiming) {
        match frame.kind {
            FrameKind::Rts => self.on_rts(frame, idle_reading, timing),
            FrameKind::Cts | FrameKind::Ack => self.on_response(frame, idle_reading),
            FrameKind::Data => {}
        }
    }

    fn on_response(&mut self, frame: &Frame, idle_reading: u64) {
        // CTS/ACK from receiver (frame.src) to sender (frame.dst).
        let Some(assigned) = frame.assigned_backoff else {
            return;
        };
        let correction = self.correction;
        let rec = self.pair(frame.dst, frame.src);

        if frame.kind == FrameKind::Ack {
            // Collusion signature: after a deviation of magnitude D, an
            // honest receiver's next assignment is `base + penalty(D)`
            // with base ≥ 0, so anything below `penalty(D)` (plus a small
            // quantization margin) is a stripped penalty. Honest
            // receivers trip this only when their uniform base lands
            // within the margin (~6 % of draws), far below the majority
            // rule in [`PairStats::collusion_suspected`].
            if rec.last_deviation > 0.0
                && f64::from(assigned.count()) < correction.penalty(rec.last_deviation) + 2.0
            {
                rec.stats.unpunished_deviations += 1;
            }
            rec.last_deviation = 0.0;
            // The ACK both delivers the next assignment and marks the
            // measurement baseline.
            rec.assigned = Some(assigned.count());
            rec.snapshot = Some(idle_reading);
        } else {
            rec.assigned = Some(assigned.count());
        }
    }

    fn on_rts(&mut self, frame: &Frame, idle_reading: u64, timing: &MacTiming) {
        let correction = self.correction;
        // Find the pair record for this sender (any receiver it sends to).
        let receiver = frame.dst;
        let sender = frame.src;
        let rec = self.pair(sender, receiver);
        if rec.last_seq != Some(frame.seq) {
            rec.in_force = rec.assigned;
            rec.last_seq = Some(frame.seq);
        }
        let (Some(base), Some(snap)) = (rec.in_force, rec.snapshot) else {
            return;
        };
        let attempt = frame.attempt.max(1);
        let b_exp = crate::retry_fn::expected_total_backoff(base, sender, attempt, timing) as f64;
        let b_act = idle_reading.saturating_sub(snap) as f64;
        let deviation = correction.deviation(b_exp, b_act);
        rec.stats.measured += 1;
        if deviation > 0.0 {
            rec.stats.deviations += 1;
            rec.last_deviation = deviation;
        }
        rec.window.push(b_exp - b_act);
        if rec.window.is_flagged() {
            rec.stats.flagged += 1;
        }
    }

    /// All pair statistics, sorted by (sender, receiver).
    #[must_use]
    pub fn report(&self) -> Vec<PairStats> {
        let mut out: Vec<PairStats> = self.pairs.values().map(|r| r.stats).collect();
        out.sort_by_key(|s| (s.sender, s.receiver));
        out
    }

    /// Statistics for one pair, if observed.
    #[must_use]
    pub fn pair_stats(&self, sender: NodeId, receiver: NodeId) -> Option<PairStats> {
        self.pairs.get(&(sender, receiver)).map(|r| r.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_mac::Slots;
    use airguard_sim::SimDuration;

    const S: NodeId = NodeId::new(1);
    const R: NodeId = NodeId::new(0);

    fn observer() -> ThirdPartyObserver {
        ThirdPartyObserver::new(
            CorrectionConfig::paper_default(),
            DiagnosisConfig::paper_default(),
        )
    }

    fn timing() -> MacTiming {
        MacTiming::dsss_2mbps()
    }

    fn frame(kind: FrameKind, src: NodeId, dst: NodeId, seq: u64) -> Frame {
        Frame {
            kind,
            src,
            dst,
            duration_field: SimDuration::ZERO,
            attempt: if kind == FrameKind::Rts { 1 } else { 0 },
            assigned_backoff: None,
            payload_bytes: 0,
            seq,
        }
    }

    fn ack_with(assign: u32, seq: u64) -> Frame {
        let mut f = frame(FrameKind::Ack, R, S, seq);
        f.assigned_backoff = Some(Slots::new(assign));
        f
    }

    /// One observed exchange: ACK carrying `assign`, then the next RTS
    /// after the sender waited `waited` slots.
    fn exchange(obs: &mut ThirdPartyObserver, idle: &mut u64, assign: u32, waited: u64, seq: u64) {
        let t = timing();
        obs.observe(&ack_with(assign, seq), *idle, &t);
        *idle += waited;
        obs.observe(&frame(FrameKind::Rts, S, R, seq + 1), *idle, &t);
    }

    #[test]
    fn compliant_pair_is_clean() {
        let mut obs = observer();
        let mut idle = 0u64;
        for seq in 0..30 {
            let assign = 10 + (seq as u32 % 8);
            exchange(&mut obs, &mut idle, assign, u64::from(assign), seq);
        }
        let stats = obs.pair_stats(S, R).expect("pair observed");
        assert_eq!(stats.deviations, 0);
        assert_eq!(stats.flagged, 0);
        assert!(!stats.collusion_suspected());
        assert!(stats.measured >= 29);
    }

    #[test]
    fn observer_flags_a_cheating_sender() {
        let mut obs = observer();
        let mut idle = 0u64;
        for seq in 0..30 {
            // Sender waits only 2 slots of a ~20-slot assignment.
            exchange(&mut obs, &mut idle, 20, 2, seq);
        }
        let stats = obs.pair_stats(S, R).expect("pair observed");
        assert!(stats.deviations > 20);
        assert!(stats.flagged > 15, "flagged {}", stats.flagged);
    }

    #[test]
    fn colluding_receiver_is_suspected() {
        // The sender cheats, and the receiver keeps assigning small
        // (penalty-free) backoffs anyway.
        let mut obs = observer();
        let mut idle = 0u64;
        for seq in 0..30 {
            exchange(&mut obs, &mut idle, 12, 1, seq);
        }
        let stats = obs.pair_stats(S, R).expect("pair observed");
        assert!(stats.collusion_suspected(), "stats: {stats:?}");
    }

    #[test]
    fn punishing_receiver_is_not_suspected() {
        // The sender cheats but the receiver reacts with growing,
        // penalty-bearing assignments — no collusion.
        let mut obs = observer();
        let mut idle = 0u64;
        for seq in 0..30 {
            // Waiting 5 of ~80 slots gives D ≈ 67, penalty ≈ 75; an honest
            // receiver's next assignment (base + penalty) is ≥ 75.
            let assign = 80 + (seq as u32 % 5);
            exchange(&mut obs, &mut idle, assign, 5, seq);
        }
        let stats = obs.pair_stats(S, R).expect("pair observed");
        assert!(stats.deviations > 20, "cheater still deviates");
        assert!(
            !stats.collusion_suspected(),
            "punishment visible: {stats:?}"
        );
    }

    #[test]
    fn frames_without_assignments_are_ignored() {
        let mut obs = observer();
        let t = timing();
        obs.observe(&frame(FrameKind::Ack, R, S, 0), 0, &t);
        obs.observe(&frame(FrameKind::Data, S, R, 0), 0, &t);
        assert!(obs.pair_stats(S, R).is_none());
    }
}
