//! [`CorrectPolicy`]: the paper's modified protocol as a
//! [`BackoffPolicy`].
//!
//! One policy instance serves both roles a node can play:
//!
//! * **as a sender**, it uses the backoff assigned by each receiver
//!   (latched from ACK frames), derives retry backoffs from the public
//!   function `f`, and — optionally — verifies the receiver's assignments
//!   against the deterministic lower bound `g` (§4.4);
//! * **as a receiver**, it delegates to the [`Monitor`]: measures
//!   `B_act` vs `B_exp`, applies the correction penalty, classifies
//!   packets with the diagnosis window, and optionally probes attempt
//!   numbers.

use std::collections::BTreeMap;

use airguard_mac::policy::uniform_backoff;
use airguard_mac::{BackoffObservation, BackoffPolicy, MacTiming, PacketVerdict, Slots};
use airguard_sim::{NodeId, RngStream};
use serde::{Deserialize, Serialize};

use crate::detector::DetectorConfig;
use crate::monitor::{Monitor, MonitorConfig, MonitorReport};
use crate::observer::{PairStats, ThirdPartyObserver};
use crate::receiver_check::ReceiverCheck;

pub use crate::monitor::AssignmentSource;

/// Configuration of the full modified protocol for one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrectConfig {
    /// Receiver-side monitor parameters.
    pub monitor: MonitorConfig,
    /// Sender-side verification of receiver assignments against `g`
    /// (§4.4). Only meaningful when the network's receivers use
    /// [`AssignmentSource::DeterministicG`]; enabling it against random
    /// assignments would flag honest receivers.
    pub verify_receiver: bool,
    /// Run a passive third-party observer over all overheard exchanges
    /// (§4.4/§6 collusion-watch extension).
    pub observe_third_party: bool,
}

impl CorrectConfig {
    /// The paper's configuration (no extensions enabled).
    #[must_use]
    pub fn paper_default() -> Self {
        CorrectConfig {
            monitor: MonitorConfig::paper_default(),
            verify_receiver: false,
            observe_third_party: false,
        }
    }
}

impl Default for CorrectConfig {
    fn default() -> Self {
        CorrectConfig::paper_default()
    }
}

/// The modified-protocol policy for one node.
///
/// ```
/// use airguard_core::{CorrectConfig, CorrectPolicy};
/// use airguard_mac::{BackoffPolicy, MacTiming, Slots};
/// use airguard_sim::{MasterSeed, NodeId};
///
/// let timing = MacTiming::dsss_2mbps();
/// let mut rng = MasterSeed::new(1).stream("node", 3);
/// let mut p = CorrectPolicy::new(NodeId::new(3), CorrectConfig::paper_default());
///
/// // Before any assignment: an arbitrary (random) initial backoff.
/// let b0 = p.fresh_backoff(NodeId::new(0), &timing, &mut rng);
/// assert!(b0.count() <= timing.cw_min);
///
/// // After an ACK assigns 12 slots, the next packet uses exactly that.
/// p.observe_assignment(NodeId::new(0), 0, Some(Slots::new(12)), &timing);
/// assert_eq!(p.fresh_backoff(NodeId::new(0), &timing, &mut rng), Slots::new(12));
/// ```
#[derive(Debug)]
pub struct CorrectPolicy {
    id: NodeId,
    cfg: CorrectConfig,
    /// Detector the monitor is (re)built with — kept so a cold crash
    /// reset restores the same detection scheme.
    detector: DetectorConfig,
    monitor: Monitor,
    /// Assignment latched from the most recent ACK per receiver; consumed
    /// by the next packet's fresh backoff.
    next_base: BTreeMap<NodeId, u32>,
    /// The base in force for the packet currently being transmitted
    /// (feeds the retry function `f`).
    current_base: BTreeMap<NodeId, u32>,
    receiver_check: ReceiverCheck,
    observer: Option<ThirdPartyObserver>,
}

impl CorrectPolicy {
    /// Creates the policy for node `id` with the default (window)
    /// detector.
    #[must_use]
    pub fn new(id: NodeId, cfg: CorrectConfig) -> Self {
        CorrectPolicy::with_detector(id, cfg, DetectorConfig::default())
    }

    /// Creates the policy with an explicit detector for its monitor.
    #[must_use]
    pub fn with_detector(id: NodeId, cfg: CorrectConfig, detector: DetectorConfig) -> Self {
        CorrectPolicy {
            id,
            cfg,
            detector,
            monitor: Monitor::with_detector(id, cfg.monitor, detector),
            next_base: BTreeMap::new(),
            current_base: BTreeMap::new(),
            receiver_check: ReceiverCheck::new(),
            observer: cfg
                .observe_third_party
                .then(|| ThirdPartyObserver::new(cfg.monitor.correction, cfg.monitor.diagnosis)),
        }
    }

    /// The detector this policy's monitor runs.
    #[must_use]
    pub fn detector(&self) -> DetectorConfig {
        self.detector
    }

    /// End-of-run monitor statistics (receiver role).
    #[must_use]
    pub fn monitor_report(&self) -> MonitorReport {
        self.monitor.report()
    }

    /// Number of receiver assignments that violated the `g` lower bound
    /// (sender role; only counts when `verify_receiver` is on).
    #[must_use]
    pub fn receiver_violations(&self) -> u64 {
        self.receiver_check.violations()
    }

    /// Third-party observation report, when the extension is enabled.
    #[must_use]
    pub fn observer_report(&self) -> Option<Vec<PairStats>> {
        self.observer.as_ref().map(ThirdPartyObserver::report)
    }

    /// Wipes state as an injected node crash would.
    ///
    /// The sender-side latches (`next_base`/`current_base`) always go:
    /// a rebooted node has no memory of past assignments. The
    /// receiver-side diagnosis state — monitor, receiver check, observer
    /// — survives when `preserve_monitor` is set (modelling misbehavior
    /// tables kept in stable storage) and is rebuilt from scratch
    /// otherwise (a cold reboot that forgets every sender's history).
    pub fn crash_reset(&mut self, preserve_monitor: bool) {
        self.next_base.clear();
        self.current_base.clear();
        if preserve_monitor {
            // Preservation models tables kept in stable storage, so it
            // must survive *through* that storage: every detector is
            // round-tripped through its serializable `DetectorState`
            // (window diffs, CUSUM score, CW accumulators alike). A
            // detector field missing from the state would surface here
            // as a behavior change — pinned by the golden-digest suite
            // — instead of silently resetting mid-diagnosis on a real
            // restart.
            self.monitor.round_trip_detectors();
        } else {
            self.monitor = Monitor::with_detector(self.id, self.cfg.monitor, self.detector);
            self.receiver_check = ReceiverCheck::new();
            self.observer = self.cfg.observe_third_party.then(|| {
                ThirdPartyObserver::new(self.cfg.monitor.correction, self.cfg.monitor.diagnosis)
            });
        }
    }
}

impl BackoffPolicy for CorrectPolicy {
    fn uses_protocol_extensions(&self) -> bool {
        true
    }

    fn fresh_backoff(&mut self, dst: NodeId, timing: &MacTiming, rng: &mut RngStream) -> Slots {
        // "The first time a sender S sends a packet to a receiver R, S may
        // use an arbitrarily selected backoff value. For all subsequent
        // transmissions, the sender has to use the backoff values provided
        // by the receiver." (§4.1)
        let base = self
            .next_base
            .get(&dst)
            .copied()
            .unwrap_or_else(|| uniform_backoff(timing.cw_min, rng).count());
        self.current_base.insert(dst, base);
        Slots::new(base)
    }

    fn retry_backoff(
        &mut self,
        dst: NodeId,
        attempt: u8,
        timing: &MacTiming,
        _rng: &mut RngStream,
    ) -> Slots {
        let base = self.current_base.get(&dst).copied().unwrap_or(0);
        crate::retry_fn::retry_backoff(base, self.id, attempt, timing)
    }

    fn observe_assignment(
        &mut self,
        from: NodeId,
        seq: u64,
        assigned: Option<Slots>,
        timing: &MacTiming,
    ) {
        let Some(assigned) = assigned else {
            return;
        };
        let mut value = assigned.count();
        if self.cfg.verify_receiver {
            value = self
                .receiver_check
                .verify(from, self.id, seq, value, timing);
        }
        self.next_base.insert(from, value);
    }

    fn observe_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        idle_reading: u64,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Option<BackoffObservation> {
        self.monitor
            .on_rts(src, seq, attempt, idle_reading, timing, rng)
    }

    fn assignment_for(&mut self, dst: NodeId, timing: &MacTiming) -> Option<Slots> {
        Some(self.monitor.assignment(dst, timing))
    }

    fn observe_ack_sent(&mut self, dst: NodeId, idle_reading: u64) {
        self.monitor.on_ack_sent(dst, idle_reading);
    }

    fn observe_data(&mut self, src: NodeId) -> Option<PacketVerdict> {
        Some(self.monitor.on_data(src))
    }

    fn should_respond_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        rng: &mut RngStream,
    ) -> bool {
        self.monitor.should_respond(src, seq, attempt, rng)
    }

    fn observe_overheard(
        &mut self,
        frame: &airguard_mac::frames::Frame,
        idle_reading: u64,
        timing: &MacTiming,
    ) {
        if let Some(obs) = &mut self.observer {
            obs.observe(frame, idle_reading, timing);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::receiver_check::g_value;

    fn timing() -> MacTiming {
        MacTiming::dsss_2mbps()
    }

    fn rng() -> RngStream {
        airguard_sim::MasterSeed::new(21).stream("correct-policy-test", 0)
    }

    const R: NodeId = NodeId::new(0);

    #[test]
    fn extensions_are_on() {
        let p = CorrectPolicy::new(NodeId::new(1), CorrectConfig::paper_default());
        assert!(p.uses_protocol_extensions());
    }

    #[test]
    fn assignments_govern_fresh_backoff_per_receiver() {
        let t = timing();
        let mut r = rng();
        let mut p = CorrectPolicy::new(NodeId::new(1), CorrectConfig::paper_default());
        p.observe_assignment(R, 0, Some(Slots::new(7)), &t);
        p.observe_assignment(NodeId::new(9), 0, Some(Slots::new(29)), &t);
        assert_eq!(p.fresh_backoff(R, &t, &mut r), Slots::new(7));
        assert_eq!(p.fresh_backoff(NodeId::new(9), &t, &mut r), Slots::new(29));
    }

    #[test]
    fn assignment_persists_until_replaced() {
        // The same assignment governs subsequent packets until a new ACK
        // replaces it — penalties degrade gracefully even if an ACK is the
        // last frame a sender ever decodes.
        let t = timing();
        let mut r = rng();
        let mut p = CorrectPolicy::new(NodeId::new(1), CorrectConfig::paper_default());
        p.observe_assignment(R, 0, Some(Slots::new(13)), &t);
        assert_eq!(p.fresh_backoff(R, &t, &mut r), Slots::new(13));
        assert_eq!(p.fresh_backoff(R, &t, &mut r), Slots::new(13));
    }

    #[test]
    fn retry_backoff_matches_receiver_reconstruction() {
        let t = timing();
        let mut r = rng();
        let me = NodeId::new(4);
        let mut p = CorrectPolicy::new(me, CorrectConfig::paper_default());
        p.observe_assignment(R, 0, Some(Slots::new(11)), &t);
        let fresh = p.fresh_backoff(R, &t, &mut r);
        assert_eq!(fresh.count(), 11);
        let r2 = p.retry_backoff(R, 2, &t, &mut r);
        let r3 = p.retry_backoff(R, 3, &t, &mut r);
        assert_eq!(r2, crate::retry_fn::retry_backoff(11, me, 2, &t));
        assert_eq!(r3, crate::retry_fn::retry_backoff(11, me, 3, &t));
        let total = u64::from(fresh.count()) + u64::from(r2.count()) + u64::from(r3.count());
        assert_eq!(
            total,
            crate::retry_fn::expected_total_backoff(11, me, 3, &t)
        );
    }

    #[test]
    fn receiver_verification_counts_lowballs() {
        let t = timing();
        let cfg = CorrectConfig {
            verify_receiver: true,
            ..CorrectConfig::paper_default()
        };
        let me = NodeId::new(2);
        let mut p = CorrectPolicy::new(me, cfg);
        let g = g_value(R, me, 6, &t);
        // A selfish receiver assigns below the g bound for seq 5's ACK.
        p.observe_assignment(R, 5, Some(Slots::new(g.saturating_sub(1))), &t);
        if g > 0 {
            assert_eq!(p.receiver_violations(), 1);
            // And the sender substitutes the honest bound.
            let mut r = rng();
            assert_eq!(p.fresh_backoff(R, &t, &mut r).count(), g);
        }
    }

    #[test]
    fn crash_reset_forgets_assignments_but_can_keep_monitor() {
        let t = timing();
        let mut r = rng();
        let mut p = CorrectPolicy::new(NodeId::new(1), CorrectConfig::paper_default());
        p.observe_assignment(R, 0, Some(Slots::new(7)), &t);
        p.observe_ack_sent(R, 3);
        let warm_report = p.monitor_report();
        p.crash_reset(true);
        // Assignment latch gone: fresh backoff falls back to a random draw,
        // not the assigned 7 — but the monitor tables survive.
        let _ = p.fresh_backoff(R, &t, &mut r);
        assert!(p.next_base.is_empty() && p.monitor_report() == warm_report);
        p.observe_assignment(R, 1, Some(Slots::new(9)), &t);
        p.crash_reset(false);
        assert!(p.next_base.is_empty());
        assert_eq!(
            p.monitor_report(),
            CorrectPolicy::new(NodeId::new(1), CorrectConfig::paper_default()).monitor_report(),
            "cold reset rebuilds the monitor from scratch"
        );
    }

    #[test]
    fn cold_crash_reset_rebuilds_the_same_detector() {
        let det = DetectorConfig::from_kind("cusum").expect("known");
        let mut p =
            CorrectPolicy::with_detector(NodeId::new(1), CorrectConfig::paper_default(), det);
        assert_eq!(p.detector().kind(), "cusum");
        p.crash_reset(false);
        assert_eq!(
            p.detector().kind(),
            "cusum",
            "a cold reboot must not silently fall back to the window detector"
        );
    }

    #[test]
    fn preserving_crash_reset_keeps_non_window_detector_state() {
        // A crashed-and-restarted receiver with preserved tables must
        // continue each sender's diagnosis exactly where it left off —
        // for CUSUM scores and CW accumulators, not just the window
        // table. The control policy never crashes; both see the same
        // full-cheater feed with identical rng streams.
        let t = timing();
        for kind in ["cusum", "cw", "window"] {
            let det = DetectorConfig::from_kind(kind).expect("known");
            let mut crashed =
                CorrectPolicy::with_detector(NodeId::new(1), CorrectConfig::paper_default(), det);
            let mut control =
                CorrectPolicy::with_detector(NodeId::new(1), CorrectConfig::paper_default(), det);
            let mut r1 = rng();
            let mut r2 = rng();
            let idle = 500u64; // the cheater's idle counter never moves
            let drive = |p: &mut CorrectPolicy, r: &mut RngStream, seq: u64| {
                p.observe_rts(R, seq, 1, idle, &t, r);
                p.observe_data(R);
                p.observe_ack_sent(R, idle);
            };
            for seq in 0..8 {
                drive(&mut crashed, &mut r1, seq);
                drive(&mut control, &mut r2, seq);
            }
            crashed.crash_reset(true);
            for seq in 8..40 {
                drive(&mut crashed, &mut r1, seq);
                drive(&mut control, &mut r2, seq);
            }
            assert_eq!(
                crashed.monitor_report(),
                control.monitor_report(),
                "{kind} detector state must survive a preserving crash reset"
            );
            assert!(
                crashed
                    .monitor_report()
                    .sender(R)
                    .expect("observed")
                    .flagged_packets
                    > 0,
                "{kind} must reach a diagnosis for the preservation to matter"
            );
        }
    }

    #[test]
    fn missing_assignment_field_is_ignored() {
        let t = timing();
        let mut p = CorrectPolicy::new(NodeId::new(1), CorrectConfig::paper_default());
        p.observe_assignment(R, 0, None, &t);
        assert_eq!(p.receiver_violations(), 0);
    }
}
