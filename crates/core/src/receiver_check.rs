//! Receiver-misbehavior detection (§4.4 extension).
//!
//! In ad hoc deployments the *receiver* is untrusted too: it could assign
//! tiny backoff values to a favoured sender to pull data faster. The
//! paper's countermeasure: require the receiver to derive the *base* of
//! each assignment (the part before any penalty) from a well-known
//! deterministic function `g` that the sender can replay. Since penalties
//! only ever *add* slots, an honest assignment always satisfies
//! `assigned ≥ g(...)`; anything below is a violation, and the sender
//! protects itself by waiting `max(assigned, g)` anyway.
//!
//! The concrete `g` (the paper leaves it open) is an LCG over public
//! inputs — the receiver id, the sender id, and the sequence number of
//! the packet the assignment applies to — mirroring the retry function
//! `f`:
//!
//! ```text
//! g(recv, send, seq) = (7·((seq + recv + send) mod (CWmin+1)) + 3) mod (CWmin+1)
//! ```

use airguard_mac::MacTiming;
use airguard_sim::NodeId;
use serde::{Deserialize, Serialize};

/// The deterministic assignment base `g`, in `[0, CWmin]`.
///
/// `seq` is the sequence number of the packet the assignment will govern
/// (i.e. one past the packet being acknowledged).
///
/// ```
/// use airguard_core::receiver_check::g_value;
/// use airguard_mac::MacTiming;
/// use airguard_sim::NodeId;
///
/// let t = MacTiming::dsss_2mbps();
/// let g = g_value(NodeId::new(0), NodeId::new(3), 17, &t);
/// assert!(g <= t.cw_min);
/// // Replayable by both sides.
/// assert_eq!(g, g_value(NodeId::new(0), NodeId::new(3), 17, &t));
/// ```
#[must_use]
pub fn g_value(receiver: NodeId, sender: NodeId, seq: u64, timing: &MacTiming) -> u32 {
    let modulus = u64::from(timing.cw_min) + 1;
    let x = (seq + u64::from(receiver.value()) + u64::from(sender.value())) % modulus;
    ((7 * x + 3) % modulus) as u32
}

/// Sender-side verifier of receiver assignments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReceiverCheck {
    violations: u64,
    checked: u64,
}

impl ReceiverCheck {
    /// Creates a verifier with no history.
    #[must_use]
    pub fn new() -> Self {
        ReceiverCheck::default()
    }

    /// Verifies the assignment carried by the ACK for packet `acked_seq`
    /// from `receiver`, and returns the backoff the sender should actually
    /// use: the assignment if honest, otherwise the larger `g` base (the
    /// paper's "choose to wait for longer" response).
    pub fn verify(
        &mut self,
        receiver: NodeId,
        me: NodeId,
        acked_seq: u64,
        assigned: u32,
        timing: &MacTiming,
    ) -> u32 {
        self.checked += 1;
        let expected = g_value(receiver, me, acked_seq + 1, timing);
        if assigned < expected {
            self.violations += 1;
            expected
        } else {
            assigned
        }
    }

    /// Number of assignments that violated the `g` lower bound.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Number of assignments verified.
    #[must_use]
    pub fn checked(&self) -> u64 {
        self.checked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> MacTiming {
        MacTiming::dsss_2mbps()
    }

    #[test]
    fn g_stays_in_range_and_varies_with_seq() {
        let t = timing();
        let mut distinct = std::collections::HashSet::new();
        for seq in 0..64 {
            let g = g_value(NodeId::new(1), NodeId::new(2), seq, &t);
            assert!(g <= t.cw_min);
            distinct.insert(g);
        }
        assert!(distinct.len() > 16, "g must not be near-constant");
    }

    #[test]
    fn g_mean_is_near_window_center() {
        let t = timing();
        let n = 1024u64;
        let sum: u64 = (0..n)
            .map(|seq| u64::from(g_value(NodeId::new(0), NodeId::new(5), seq, &t)))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 15.5).abs() < 1.0, "mean of g was {mean}");
    }

    #[test]
    fn honest_assignment_passes_and_is_used() {
        let t = timing();
        let mut c = ReceiverCheck::new();
        let g = g_value(NodeId::new(0), NodeId::new(3), 8, &t);
        // Honest receiver: base g plus a penalty of 5.
        let used = c.verify(NodeId::new(0), NodeId::new(3), 7, g + 5, &t);
        assert_eq!(used, g + 5);
        assert_eq!(c.violations(), 0);
        assert_eq!(c.checked(), 1);
    }

    #[test]
    fn lowball_assignment_is_caught_and_overridden() {
        let t = timing();
        let mut c = ReceiverCheck::new();
        let g = g_value(NodeId::new(0), NodeId::new(3), 8, &t);
        if g == 0 {
            return; // nothing below zero to test for this tuple
        }
        let used = c.verify(NodeId::new(0), NodeId::new(3), 7, g - 1, &t);
        assert_eq!(used, g, "sender substitutes the honest base");
        assert_eq!(c.violations(), 1);
    }

    #[test]
    fn selfish_receiver_assigning_zero_always_flagged_when_g_positive() {
        let t = timing();
        let mut c = ReceiverCheck::new();
        let mut caught = 0;
        let trials = 100;
        for seq in 0..trials {
            let before = c.violations();
            c.verify(NodeId::new(9), NodeId::new(4), seq, 0, &t);
            if c.violations() > before {
                caught += 1;
            }
        }
        // g = 0 happens for ~1/32 of sequence numbers; everything else is
        // caught.
        assert!(caught > trials * 9 / 10, "caught only {caught}/{trials}");
    }
}
