//! The deterministic retry-backoff function `f` (§4.1) and `B_exp`
//! reconstruction.
//!
//! After a collision, a sender running the modified protocol does not pick
//! a fresh random backoff — it derives one from public inputs so the
//! receiver can replay the computation:
//!
//! ```text
//! X = (backoff + nodeId) mod (CWmin + 1)
//! f(backoff, nodeId, attempt) = (5·X + 2·attempt + 1) mod (CWmin + 1)   — then scaled by CW_i / CWmin
//! ```
//!
//! which is the linear-congruential form given in the paper (a = 5,
//! c = 2·attempt + 1). Dividing by CWmin maps it into `[0, 1]`; the retry
//! backoff is that fraction of the attempt's contention window
//! `CW_i = min((CWmin+1)·2^(i−1) − 1, CWmax)`.
//!
//! On receiving an RTS with attempt number `a`, the receiver reconstructs
//! the total backoff the sender *should* have waited since the last ACK:
//!
//! ```text
//! B_exp = backoff + Σ_{i=2}^{a} f(backoff, nodeId, i) · CW_i
//! ```

use airguard_mac::{MacTiming, Slots};
use airguard_sim::NodeId;

/// The raw LCG value of `f` before scaling, in `[0, CWmin]`.
///
/// ```
/// use airguard_core::retry_fn::f_value;
/// use airguard_sim::NodeId;
///
/// // X = (10 + 3) mod 32 = 13; (5·13 + 2·2 + 1) mod 32 = 70 mod 32 = 6.
/// assert_eq!(f_value(10, NodeId::new(3), 2, 31), 6);
/// ```
#[must_use]
pub fn f_value(backoff: u32, node: NodeId, attempt: u8, cw_min: u32) -> u32 {
    let modulus = cw_min + 1;
    let x = (backoff + node.value()) % modulus;
    (5 * x + 2 * u32::from(attempt) + 1) % modulus
}

/// The retry backoff (in slots) for the given attempt, per the paper:
/// `f` as a fraction of CWmin, scaled by the attempt's contention window
/// and rounded to the nearest slot.
///
/// # Panics
///
/// Panics if `attempt < 2` — attempt 1 uses the receiver-assigned value,
/// not `f`.
#[must_use]
pub fn retry_backoff(backoff: u32, node: NodeId, attempt: u8, timing: &MacTiming) -> Slots {
    assert!(attempt >= 2, "retry backoff applies from attempt 2 onward");
    let val = f_value(backoff, node, attempt, timing.cw_min);
    let cw = timing.cw_for_attempt(attempt);
    let scaled = (f64::from(val) / f64::from(timing.cw_min)) * f64::from(cw);
    Slots::new(scaled.round() as u32)
}

/// The total backoff (in slots) a compliant sender accumulates from the
/// end of the previous exchange to the RTS of attempt `attempt`:
/// the assigned base plus every `f`-derived retry backoff.
#[must_use]
pub fn expected_total_backoff(backoff: u32, node: NodeId, attempt: u8, timing: &MacTiming) -> u64 {
    let mut total = u64::from(backoff);
    for i in 2..=attempt {
        total += u64::from(retry_backoff(backoff, node, i, timing).count());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> MacTiming {
        MacTiming::dsss_2mbps()
    }

    #[test]
    fn f_value_stays_in_range() {
        for backoff in 0..=31 {
            for node in 0..50 {
                for attempt in 1..=7 {
                    let v = f_value(backoff, NodeId::new(node), attempt, 31);
                    assert!(v <= 31);
                }
            }
        }
    }

    #[test]
    fn f_is_deterministic_and_attempt_sensitive() {
        let n = NodeId::new(4);
        assert_eq!(f_value(9, n, 2, 31), f_value(9, n, 2, 31));
        // Consecutive attempts differ by 2 (mod 32) by construction.
        let a2 = f_value(9, n, 2, 31);
        let a3 = f_value(9, n, 3, 31);
        assert_eq!((a2 + 2) % 32, a3);
    }

    #[test]
    fn colliding_nodes_usually_diverge() {
        // The paper chose f so that two nodes that collided (same attempt,
        // possibly different assigned backoff) select different values with
        // high probability. Different node ids with the same backoff always
        // diverge unless the ids are congruent mod 32.
        let mut same = 0;
        let mut total = 0;
        for backoff in 0..=31 {
            for a in 0..8u32 {
                for b in (a + 1)..8 {
                    total += 1;
                    let fa = retry_backoff(backoff, NodeId::new(a), 2, &timing());
                    let fb = retry_backoff(backoff, NodeId::new(b), 2, &timing());
                    if fa == fb {
                        same += 1;
                    }
                }
            }
        }
        let rate = f64::from(same) / f64::from(total);
        assert!(rate < 0.05, "collision rate after retry too high: {rate}");
    }

    #[test]
    fn retry_backoff_scales_with_the_window() {
        let n = NodeId::new(3);
        // Same f fraction, wider window ⇒ proportionally larger backoff.
        let v2 = f_value(10, n, 2, 31);
        let b2 = retry_backoff(10, n, 2, &timing());
        let expect = (f64::from(v2) / 31.0 * 63.0).round() as u32;
        assert_eq!(b2.count(), expect);
        // And the value never exceeds the attempt's window.
        for backoff in 0..=31 {
            for attempt in 2..=7 {
                let b = retry_backoff(backoff, n, attempt, &timing());
                assert!(b.count() <= timing().cw_for_attempt(attempt));
            }
        }
    }

    #[test]
    #[should_panic(expected = "attempt 2 onward")]
    fn retry_backoff_rejects_first_attempt() {
        let _ = retry_backoff(5, NodeId::new(1), 1, &timing());
    }

    #[test]
    fn expected_total_accumulates() {
        let n = NodeId::new(3);
        let t = timing();
        let base = 12u32;
        assert_eq!(expected_total_backoff(base, n, 1, &t), 12);
        let b2 = expected_total_backoff(base, n, 2, &t);
        assert_eq!(b2, 12 + u64::from(retry_backoff(base, n, 2, &t).count()));
        let b3 = expected_total_backoff(base, n, 3, &t);
        assert_eq!(b3, b2 + u64::from(retry_backoff(base, n, 3, &t).count()));
        assert!(b3 >= b2 && b2 >= 12);
    }

    #[test]
    fn receiver_and_sender_agree_by_construction() {
        // The property the whole scheme rests on: replaying f with the
        // same inputs gives the same schedule.
        let t = timing();
        for node in [0u32, 3, 17, 40] {
            for base in [0u32, 7, 31] {
                for attempt in 2..=7u8 {
                    let sender = retry_backoff(base, NodeId::new(node), attempt, &t);
                    let receiver = retry_backoff(base, NodeId::new(node), attempt, &t);
                    assert_eq!(sender, receiver);
                }
            }
        }
    }
}
