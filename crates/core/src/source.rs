//! The streaming observation feed: [`ObservationSource`].
//!
//! ROADMAP item 2 lifts the monitor/diagnosis machinery out of the
//! batch simulator into a long-running service. The seam is this
//! trait: anything that can produce a stream of per-station backoff
//! observations — a replayed `airguard-obs` JSONL file, a socket
//! listener, or the simulator itself — can feed the detection core.
//! The trait lives in `core` so the detection side depends only on
//! the observation shape, never on transport or I/O concerns; the
//! `airguard-live` crate supplies the hardened implementations
//! (frame codec, quarantine, re-open supervision).

/// One backoff observation attributed to a monitored station: the
/// essence of an `airguard-obs` `monitor/backoff_assigned` record.
///
/// `assigned_slots`/`observed_slots` are the reconstructed `B_exp`
/// and measured `B_act` of one exchange; the deviation and verdict
/// are *not* carried — they are recomputed by the consuming detector
/// so a stream can never smuggle in foreign verdicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationObservation {
    /// Virtual timestamp of the observation, microseconds.
    pub t_us: u64,
    /// The monitored (sending) station the observation describes.
    pub station: u32,
    /// Expected total backoff `B_exp`, in slots.
    pub assigned_slots: f64,
    /// Observed idle-slot count `B_act`, in slots.
    pub observed_slots: f64,
}

/// Why a source failed to produce its next observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// One record was undecodable or out of range. The stream remains
    /// usable: the consumer quarantines the record (counting it
    /// against the source's error budget) and pulls the next one.
    Malformed(String),
    /// The underlying transport failed; the stream is broken and a
    /// re-open (with backoff) is the only recovery.
    Transport(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Malformed(reason) => write!(f, "malformed record: {reason}"),
            SourceError::Transport(reason) => write!(f, "transport failure: {reason}"),
        }
    }
}

/// A pull-based stream of station observations.
///
/// The contract mirrors a fallible iterator: `Ok(Some(_))` yields the
/// next observation, `Ok(None)` is a clean end of stream (a drained
/// replay file or a closed socket after a graceful shutdown), and
/// `Err` distinguishes per-record damage (skip and continue) from
/// transport failure (re-open or give up).
pub trait ObservationSource {
    /// Pulls the next observation.
    ///
    /// # Errors
    ///
    /// [`SourceError::Malformed`] when one record is undecodable (the
    /// source has already advanced past it); [`SourceError::Transport`]
    /// when the stream itself is broken.
    fn next_observation(&mut self) -> Result<Option<StationObservation>, SourceError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A canned source, proving the trait is object-safe and the
    /// error taxonomy drives the skip-vs-reopen decision.
    struct Canned(Vec<Result<StationObservation, SourceError>>);

    impl ObservationSource for Canned {
        fn next_observation(&mut self) -> Result<Option<StationObservation>, SourceError> {
            match self.0.pop() {
                None => Ok(None),
                Some(Ok(o)) => Ok(Some(o)),
                Some(Err(e)) => Err(e),
            }
        }
    }

    #[test]
    fn trait_is_object_safe_and_streams_to_exhaustion() {
        let obs = StationObservation {
            t_us: 10,
            station: 3,
            assigned_slots: 20.0,
            observed_slots: 5.0,
        };
        let mut src: Box<dyn ObservationSource> = Box::new(Canned(vec![
            Ok(obs),
            Err(SourceError::Malformed("bad json".to_owned())),
        ]));
        assert!(matches!(
            src.next_observation(),
            Err(SourceError::Malformed(_))
        ));
        assert_eq!(src.next_observation(), Ok(Some(obs)));
        assert_eq!(src.next_observation(), Ok(None));
    }

    #[test]
    fn errors_render_their_reason() {
        let m = SourceError::Malformed("truncated frame".to_owned());
        assert!(m.to_string().contains("truncated frame"));
        let t = SourceError::Transport("connection reset".to_owned());
        assert!(t.to_string().contains("connection reset"));
    }
}
