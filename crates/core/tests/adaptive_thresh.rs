//! The adaptive-THRESH extension (§6 future work): the effective
//! threshold follows the channel-noise estimate of unflagged senders.

use airguard_core::monitor::{AdaptiveConfig, Monitor, MonitorConfig};
use airguard_mac::MacTiming;
use airguard_sim::{MasterSeed, NodeId, RngStream};

const S: NodeId = NodeId::new(3);

fn rng() -> RngStream {
    MasterSeed::new(50).stream("adaptive-test", 0)
}

fn adaptive_monitor() -> Monitor {
    Monitor::new(
        NodeId::new(0),
        MonitorConfig {
            adaptive: Some(AdaptiveConfig::default()),
            ..MonitorConfig::paper_default()
        },
    )
}

/// One exchange where the observed idle count differs from the
/// assignment by `noise` slots (positive = waited longer).
fn noisy_exchange(m: &mut Monitor, r: &mut RngStream, idle: &mut u64, seq: u64, noise: i64) {
    let t = MacTiming::dsss_2mbps();
    let assigned = m.assignment(S, &t).count();
    let waited = (i64::from(assigned) + noise).max(0) as u64;
    *idle += waited;
    m.on_rts(S, seq, 1, *idle, &t, r);
    m.on_data(S);
    m.on_ack_sent(S, *idle);
}

#[test]
fn threshold_starts_at_the_static_value() {
    let m = adaptive_monitor();
    assert_eq!(m.effective_thresh(), 20.0);
}

#[test]
fn quiet_channels_keep_the_static_threshold() {
    let t = MacTiming::dsss_2mbps();
    let mut m = adaptive_monitor();
    let mut r = rng();
    let mut idle = 0u64;
    m.on_rts(S, 0, 1, idle, &t, &mut r);
    m.on_data(S);
    m.on_ack_sent(S, idle);
    for seq in 1..40 {
        noisy_exchange(&mut m, &mut r, &mut idle, seq, 0);
    }
    assert_eq!(m.effective_thresh(), 20.0, "zero noise keeps THRESH");
}

#[test]
fn noisy_channels_raise_the_threshold() {
    let t = MacTiming::dsss_2mbps();
    let mut m = adaptive_monitor();
    let mut r = rng();
    let mut idle = 0u64;
    m.on_rts(S, 0, 1, idle, &t, &mut r);
    m.on_data(S);
    m.on_ack_sent(S, idle);
    // Honest sender over a channel with ±6-slot observation noise.
    for seq in 1..120 {
        let noise = if seq % 2 == 0 { 6 } else { -6 };
        noisy_exchange(&mut m, &mut r, &mut idle, seq, noise);
    }
    // EMA of |diff| approaches 6; factor 2 × W 5 × 6 = 60 > 20.
    assert!(
        m.effective_thresh() > 40.0,
        "threshold stuck at {}",
        m.effective_thresh()
    );
}

/// An adaptive monitor with explicit knobs, for exact-product pins.
fn monitor_with(factor: f64, ema_alpha: f64) -> Monitor {
    Monitor::new(
        NodeId::new(0),
        MonitorConfig {
            adaptive: Some(AdaptiveConfig { factor, ema_alpha }),
            ..MonitorConfig::paper_default()
        },
    )
}

#[test]
fn effective_thresh_is_exactly_factor_times_window_times_noise_ema() {
    let t = MacTiming::dsss_2mbps();
    // ema_alpha = 1 makes noise_ema exactly the last unflagged |diff|,
    // so the adaptive branch is pinned to the literal product
    // a.factor * W * noise_ema with no smoothing residue.
    let mut m = monitor_with(3.0, 1.0);
    let mut r = rng();
    let mut idle = 0u64;
    m.on_rts(S, 0, 1, idle, &t, &mut r);
    m.on_data(S);
    m.on_ack_sent(S, idle);
    // Waiting 7 slots longer than assigned: diff = -7, unflagged, so
    // noise_ema = 7 and the threshold is 3 (factor) x 5 (W) x 7 = 105.
    noisy_exchange(&mut m, &mut r, &mut idle, 1, 7);
    assert_eq!(m.effective_thresh(), 3.0 * 5.0 * 7.0);
    // A later quieter packet drags the EMA (and the product) back down.
    noisy_exchange(&mut m, &mut r, &mut idle, 2, 2);
    assert_eq!(m.effective_thresh(), 3.0 * 5.0 * 2.0);
}

#[test]
fn noise_products_below_the_static_thresh_keep_it() {
    let t = MacTiming::dsss_2mbps();
    let mut m = monitor_with(2.0, 1.0);
    let mut r = rng();
    let mut idle = 0u64;
    m.on_rts(S, 0, 1, idle, &t, &mut r);
    m.on_data(S);
    m.on_ack_sent(S, idle);
    // factor 2 x W 5 x noise 1 = 10 < THRESH 20: the max() picks the
    // static setting.
    noisy_exchange(&mut m, &mut r, &mut idle, 1, 1);
    assert_eq!(m.effective_thresh(), 20.0);
}

#[test]
fn ema_blend_enters_the_product_exactly() {
    let t = MacTiming::dsss_2mbps();
    // Power-of-two smoothing keeps every EMA step exact in f64:
    // ema = 0.5*0 + 0.5*8 = 4, then 0.5*4 + 0.5*4 = 4.
    let mut m = monitor_with(2.0, 0.5);
    let mut r = rng();
    let mut idle = 0u64;
    m.on_rts(S, 0, 1, idle, &t, &mut r);
    m.on_data(S);
    m.on_ack_sent(S, idle);
    noisy_exchange(&mut m, &mut r, &mut idle, 1, 8);
    assert_eq!(m.effective_thresh(), 2.0 * 5.0 * 4.0);
    noisy_exchange(&mut m, &mut r, &mut idle, 2, 4);
    assert_eq!(m.effective_thresh(), 2.0 * 5.0 * 4.0);
}

#[test]
fn flagged_senders_do_not_poison_the_noise_estimate() {
    let t = MacTiming::dsss_2mbps();
    let mut m = adaptive_monitor();
    let mut r = rng();
    let mut idle = 0u64;
    m.on_rts(S, 0, 1, idle, &t, &mut r);
    m.on_data(S);
    m.on_ack_sent(S, idle);
    // A heavy cheater: huge positive diffs, flagged almost immediately.
    for seq in 1..120 {
        let assigned = m.assignment(S, &t).count();
        idle += u64::from(assigned) / 10; // waits 10 %
        m.on_rts(S, seq, 1, idle, &t, &mut r);
        m.on_data(S);
        m.on_ack_sent(S, idle);
    }
    // The cheater's own diffs must not have raised the threshold to
    // where it escapes: it stays flagged.
    let report = m.report();
    let stats = report.sender(S).unwrap();
    assert!(
        stats.flagged_packets * 10 >= stats.packets * 8,
        "cheater escaped adaptive threshold: {stats:?}"
    );
}
