//! Property-based tests of the whole detection scheme, driven through
//! the monitor exactly as the MAC would drive it.

use airguard_core::monitor::{Monitor, MonitorConfig};
use airguard_core::retry_fn;
use airguard_mac::MacTiming;
use airguard_sim::{MasterSeed, NodeId, RngStream};
use proptest::prelude::*;

const S: NodeId = NodeId::new(7);

fn rng(seed: u64) -> RngStream {
    MasterSeed::new(seed).stream("scheme-prop", 0)
}

/// Drives `packets` full exchanges where the sender waits exactly
/// `compliance`× its expected backoff and experiences the given retry
/// counts; returns (flagged packet count, deviation count).
fn drive(compliance: f64, retries: &[u8], packets: usize, seed: u64) -> (u64, u64) {
    let timing = MacTiming::dsss_2mbps();
    let mut r = rng(seed);
    let mut m = Monitor::new(NodeId::new(0), MonitorConfig::paper_default());
    let mut idle: u64 = 0;
    // Bootstrap exchange (no measurement possible).
    m.on_rts(S, 0, 1, idle, &timing, &mut r);
    m.on_data(S);
    let mut assigned = m.assignment(S, &timing).count();
    m.on_ack_sent(S, idle);

    let mut flagged = 0;
    let mut deviations = 0;
    for i in 0..packets {
        let seq = (i + 1) as u64;
        let attempt = 1 + retries[i % retries.len()];
        let expected = retry_fn::expected_total_backoff(assigned, S, attempt, &timing);
        idle += (expected as f64 * compliance).round() as u64;
        m.on_rts(S, seq, attempt, idle, &timing, &mut r);
        let v = m.on_data(S);
        if v.flagged {
            flagged += 1;
        }
        if v.deviation_slots > 0.0 {
            deviations += 1;
        }
        assigned = m.assignment(S, &timing).count();
        m.on_ack_sent(S, idle);
    }
    (flagged, deviations)
}

proptest! {
    #[test]
    fn fully_compliant_senders_are_never_flagged(
        seed in 1u64..10_000,
        retries in proptest::collection::vec(0u8..4, 1..6),
    ) {
        let (flagged, deviations) = drive(1.0, &retries, 60, seed);
        prop_assert_eq!(flagged, 0);
        prop_assert_eq!(deviations, 0);
    }

    #[test]
    fn overwaiting_senders_are_never_flagged(
        seed in 1u64..10_000,
        slack in 1.0f64..2.0,
    ) {
        let (flagged, deviations) = drive(slack, &[0], 60, seed);
        prop_assert_eq!(flagged, 0);
        prop_assert_eq!(deviations, 0);
    }

    #[test]
    fn heavy_cheaters_are_flagged_quickly(
        seed in 1u64..10_000,
        pm in 0.5f64..1.0,
    ) {
        let compliance = 1.0 - pm;
        let (flagged, _) = drive(compliance, &[0], 40, seed);
        // With W = 5, at most the first handful of packets escape.
        prop_assert!(
            flagged >= 30,
            "pm={pm}: only {flagged}/40 packets flagged"
        );
    }

    #[test]
    fn flagging_increases_with_misbehavior(
        seed in 1u64..5_000,
    ) {
        let (mild, _) = drive(0.9, &[0], 60, seed);
        let (heavy, _) = drive(0.2, &[0], 60, seed);
        prop_assert!(heavy >= mild, "heavy {heavy} < mild {mild}");
    }

    #[test]
    fn b_exp_reconstruction_is_additive_and_monotonic(
        base in 0u32..32,
        node in 0u32..64,
        attempt in 2u8..8,
    ) {
        let timing = MacTiming::dsss_2mbps();
        let n = NodeId::new(node);
        let prev = retry_fn::expected_total_backoff(base, n, attempt - 1, &timing);
        let cur = retry_fn::expected_total_backoff(base, n, attempt, &timing);
        prop_assert_eq!(
            cur - prev,
            u64::from(retry_fn::retry_backoff(base, n, attempt, &timing).count())
        );
        prop_assert!(cur >= prev);
    }

    #[test]
    fn assignments_stay_within_configured_bounds(
        seed in 1u64..10_000,
        compliance in 0.0f64..1.0,
    ) {
        let timing = MacTiming::dsss_2mbps();
        let cfg = MonitorConfig::paper_default();
        let mut r = rng(seed);
        let mut m = Monitor::new(NodeId::new(0), cfg);
        let mut idle: u64 = 0;
        m.on_rts(S, 0, 1, idle, &timing, &mut r);
        m.on_data(S);
        m.on_ack_sent(S, idle);
        for seq in 1..60u64 {
            let assigned = m.assignment(S, &timing).count();
            prop_assert!(
                assigned <= cfg.correction.max_assignment,
                "assignment {assigned} over cap"
            );
            idle += (f64::from(assigned) * compliance).round() as u64;
            m.on_rts(S, seq, 1, idle, &timing, &mut r);
            m.on_data(S);
            m.on_ack_sent(S, idle);
        }
    }
}
