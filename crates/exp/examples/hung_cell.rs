//! CI fixture: a deliberately-hung cell under a watchdog budget.
//!
//! The single grid cell asks for an hour of saturated virtual traffic —
//! effectively unbounded harness time — while the options grant it a
//! tiny virtual-event budget plus a generous wall-clock backstop. The
//! watchdog must kill the cell and the sweep must still complete, with
//! the cell reported as failed. Exits 0 only when that happened;
//! `.github/workflows/ci.yml` (chaos-smoke) greps the output.

use airguard_exp::{run_experiment, Axes, Experiment, RunOptions};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

fn main() {
    let mut exp = Experiment::new("hung-cell", "watchdog CI fixture");
    exp.push(
        &Axes::new().with("cell", "hung"),
        ScenarioConfig::new(StandardScenario::ZeroFlow)
            .protocol(Protocol::Correct)
            .n_senders(4),
    );

    // One seed, one hour of virtual time: without a watchdog this cell
    // alone takes longer than any CI budget.
    let mut opts = RunOptions::new(1, 3600);
    opts.workers = 1;
    opts.max_events = Some(50_000);
    opts.watchdog_secs = Some(60);

    let outcome = run_experiment(&exp, &opts);
    match outcome.failures.as_slice() {
        [failure] if failure.message.contains("watchdog") => {
            println!("watchdog fired as expected: {failure}");
            println!("sweep completed: {:?}", outcome.progress);
        }
        other => {
            eprintln!("expected exactly one watchdog failure, got: {other:?}");
            std::process::exit(1);
        }
    }
}
