//! Wall-clock comparison of the two fan-out shapes over a synthetic
//! sleep workload:
//!
//! * **chunked** — the old harness: each grid point fans its seeds out
//!   and *joins before the next point starts* (a barrier per point);
//! * **global queue** — the engine: every `(point, seed)` cell goes
//!   into one work-stealing queue with no barriers.
//!
//! Cells sleep instead of simulating, so the comparison measures pure
//! scheduling: sleeping threads do not contend for CPU, which makes the
//! numbers meaningful even on a single-core host. The grid is shaped
//! like a real sweep — per-cell cost grows with the point index (larger
//! networks simulate slower) and the seed count is not a multiple of
//! the worker count — which is exactly where per-point barriers idle
//! workers on every wave.
//!
//! Run with: `cargo run --release -p airguard-exp --example scaling_demo`

use std::time::{Duration, Instant};

use airguard_exp::run_tasks;

const POINTS: usize = 6;
const SEEDS: usize = 5;
const WORKERS: usize = 4;

/// Per-cell cost of grid point `p`: 20 ms … 120 ms.
fn cell_duration(p: usize) -> Duration {
    Duration::from_millis(20 * (p as u64 + 1))
}

/// The old shape: one fan-out + join barrier per point.
fn chunked() -> Duration {
    let start = Instant::now();
    for p in 0..POINTS {
        let results = run_tasks(SEEDS, WORKERS, |_seed| std::thread::sleep(cell_duration(p)));
        assert!(results.iter().all(Result::is_ok));
    }
    start.elapsed()
}

/// The engine's shape: every cell in one global queue.
fn global_queue() -> Duration {
    let start = Instant::now();
    let results = run_tasks(POINTS * SEEDS, WORKERS, |i| {
        std::thread::sleep(cell_duration(i / SEEDS));
    });
    assert!(results.iter().all(Result::is_ok));
    start.elapsed()
}

fn main() {
    let total: Duration = (0..POINTS).map(|p| cell_duration(p) * SEEDS as u32).sum();
    println!(
        "grid: {POINTS} points x {SEEDS} seeds, {WORKERS} workers, {:.2} s of cell work",
        total.as_secs_f64()
    );
    let chunked = chunked();
    let global = global_queue();
    println!(
        "chunked (barrier per point): {:.3} s",
        chunked.as_secs_f64()
    );
    println!("global work-stealing queue:  {:.3} s", global.as_secs_f64());
    println!(
        "speedup: {:.2}x (ideal floor {:.3} s)",
        chunked.as_secs_f64() / global.as_secs_f64(),
        total.as_secs_f64() / WORKERS as f64
    );
}
