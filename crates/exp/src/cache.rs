//! Content-addressed result cache.
//!
//! Cells are keyed by `(config digest, seed)`: the digest is
//! [`airguard_net::ScenarioConfig::config_digest`] — an FNV-1a hash of
//! the canonical, *seed-independent* configuration rendering — so the
//! key is shared by every experiment that runs the same configuration
//! (Fig. 6 and Fig. 7 sweep identical grids and reuse each other's
//! runs). Layout:
//!
//! ```text
//! results/cache/v1/<digest>/<seed>.cell
//! ```
//!
//! The `v1` segment is the cell-format version: bumping the format
//! invalidates every old entry without deleting anything. Any config
//! change changes the digest, so stale entries are never *read* — they
//! are simply left behind.
//!
//! Writes go through a temp file + rename so a concurrent reader never
//! observes a torn cell; a malformed or truncated cell parses as a miss
//! and is re-simulated.

use std::io;
use std::path::{Path, PathBuf};

use crate::cell::CellMetrics;

/// Version segment of the cache layout; bump when the cell text format
/// changes incompatibly.
const FORMAT_VERSION: &str = "v1";

/// A directory-backed `(digest, seed) → CellMetrics` store.
#[derive(Debug, Clone)]
pub struct ResultCache {
    root: PathBuf,
}

impl ResultCache {
    /// A cache rooted at `root` (conventionally `results/cache`).
    #[must_use]
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ResultCache { root: root.into() }
    }

    /// The conventional cache location used by the bench CLI.
    #[must_use]
    pub fn default_root() -> PathBuf {
        Path::new("results").join("cache")
    }

    /// The file path of one cell.
    #[must_use]
    pub fn cell_path(&self, digest: &str, seed: u64) -> PathBuf {
        self.root
            .join(FORMAT_VERSION)
            .join(digest)
            .join(format!("{seed}.cell"))
    }

    /// Loads a cell, returning `None` on absence or any corruption
    /// (including a stored seed that does not match the file name —
    /// defence against hand-edited entries).
    #[must_use]
    pub fn load(&self, digest: &str, seed: u64) -> Option<CellMetrics> {
        let text = std::fs::read_to_string(self.cell_path(digest, seed)).ok()?;
        let cell = CellMetrics::parse_cache_text(&text)?;
        (cell.seed == seed).then_some(cell)
    }

    /// Stores a cell atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the engine reports them as warnings and
    /// carries on — a failed store only costs a future re-simulation.
    pub fn store(&self, digest: &str, seed: u64, cell: &CellMetrics) -> io::Result<PathBuf> {
        let path = self.cell_path(digest, seed);
        let dir = path.parent().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "cell path has no parent")
        })?;
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{seed}.cell.tmp"));
        std::fs::write(&tmp, cell.to_cache_text())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn tmp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("airguard-exp-cache-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn cell(seed: u64) -> CellMetrics {
        let mut scalars = BTreeMap::new();
        scalars.insert("correct_pct".to_owned(), 42.5);
        CellMetrics {
            seed,
            elapsed_us: 1,
            wall_us: 0,
            summary_digest: "abcd".to_owned(),
            scalars,
            series: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let cache = ResultCache::new(tmp_root("roundtrip"));
        assert!(cache.load("d1", 3).is_none());
        cache.store("d1", 3, &cell(3)).expect("store");
        assert_eq!(cache.load("d1", 3).expect("hit"), cell(3));
        // Different digest or seed: miss.
        assert!(cache.load("d2", 3).is_none());
        assert!(cache.load("d1", 4).is_none());
    }

    #[test]
    fn corrupt_cell_is_a_miss() {
        let cache = ResultCache::new(tmp_root("corrupt"));
        cache.store("d1", 5, &cell(5)).expect("store");
        let path = cache.cell_path("d1", 5);
        std::fs::write(&path, "airguard-cell v1\nseed 5\n").expect("truncate");
        assert!(cache.load("d1", 5).is_none());
    }

    #[test]
    fn seed_mismatch_inside_file_is_a_miss() {
        let cache = ResultCache::new(tmp_root("seedmismatch"));
        cache.store("d1", 6, &cell(9)).expect("store");
        assert!(cache.load("d1", 6).is_none());
    }
}
