//! One grid cell's results: the metrics a figure can ask of one
//! `(configuration, seed)` simulation run.
//!
//! [`CellMetrics`] is the unit of caching: everything any registered
//! figure consumes — the scalar metric set, the Fig.-8 time series, and
//! the telemetry summary (counters + histograms) — extracted from a
//! [`RunReport`] immediately after the run. The text serialisation
//! ([`CellMetrics::to_cache_text`] / [`CellMetrics::parse_cache_text`])
//! stores floats as IEEE-754 bit patterns, so a cache round trip is
//! bit-exact and cached re-runs render byte-identical CSV.

use std::collections::BTreeMap;

use airguard_metrics::Bin;
use airguard_net::RunReport;
use airguard_obs::{HistogramSnapshot, RunSummary};

/// Names of the scalar metrics extracted from every run.
pub mod metric {
    /// Correct-diagnosis percentage (share of misbehaving senders'
    /// packets flagged).
    pub const CORRECT_PCT: &str = "correct_pct";
    /// Misdiagnosis percentage (share of honest senders' packets
    /// flagged).
    pub const MISDIAG_PCT: &str = "misdiag_pct";
    /// Mean throughput of misbehaving measured senders, bit/s.
    pub const MSB_BPS: &str = "msb_bps";
    /// Mean throughput of well-behaved measured senders, bit/s.
    pub const AVG_BPS: &str = "avg_bps";
    /// Jain's fairness index over measured flows.
    pub const FAIRNESS: &str = "fairness";
    /// Mean MAC delay of misbehaving measured senders, ms.
    pub const MSB_DELAY_MS: &str = "msb_delay_ms";
    /// Mean MAC delay of well-behaved measured senders, ms.
    pub const AVG_DELAY_MS: &str = "avg_delay_ms";
    /// Total delivered payload bytes across all flows.
    pub const TOTAL_BYTES: &str = "total_bytes";
}

/// The metrics of one `(configuration, seed)` cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellMetrics {
    /// Master seed the run used.
    pub seed: u64,
    /// Virtual time elapsed, microseconds.
    pub elapsed_us: u64,
    /// Wall-clock cost of simulating this cell, microseconds; zero for
    /// cells rehydrated from the cache. Never persisted to the cache
    /// text and never exported (DESIGN.md §9: no wall-clock in
    /// reports) — it exists so callers can tell cached from simulated
    /// cells.
    pub wall_us: u64,
    /// The runner's own `SimulationConfig` digest (kept for report
    /// fidelity; the *cache key* digest is the scenario-level one).
    pub summary_digest: String,
    /// Scalar metrics by [`metric`] name.
    pub scalars: BTreeMap<String, f64>,
    /// Fig.-8 time series: per-interval packet/flagged counts of
    /// misbehaving senders.
    pub series: Vec<Bin>,
    /// Telemetry counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Telemetry histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl CellMetrics {
    /// Extracts the cacheable metric set from a finished run.
    #[must_use]
    pub fn from_report(report: &RunReport) -> Self {
        let mut scalars = BTreeMap::new();
        let diag = report.diagnosis();
        scalars.insert(
            metric::CORRECT_PCT.to_owned(),
            diag.correct_diagnosis_percent(),
        );
        scalars.insert(metric::MISDIAG_PCT.to_owned(), diag.misdiagnosis_percent());
        scalars.insert(metric::MSB_BPS.to_owned(), report.msb_throughput_bps());
        scalars.insert(metric::AVG_BPS.to_owned(), report.avg_throughput_bps());
        scalars.insert(metric::FAIRNESS.to_owned(), report.fairness_index());
        scalars.insert(metric::MSB_DELAY_MS.to_owned(), report.msb_delay_ms());
        scalars.insert(metric::AVG_DELAY_MS.to_owned(), report.avg_delay_ms());
        scalars.insert(
            metric::TOTAL_BYTES.to_owned(),
            report.throughput.total_bytes() as f64,
        );
        CellMetrics {
            seed: report.summary.seed,
            elapsed_us: report.summary.elapsed_us,
            wall_us: report.summary.wall_elapsed_us,
            summary_digest: report.summary.config_digest.clone(),
            scalars,
            series: report.series.bins().to_vec(),
            counters: report.summary.counters.clone(),
            histograms: report.summary.histograms.clone(),
        }
    }

    /// A scalar metric by name (0.0 when absent, which only happens for
    /// cells parsed from a cache written by a *newer* metric set — the
    /// cache version header prevents the reverse).
    #[must_use]
    pub fn scalar(&self, name: &str) -> f64 {
        self.scalars.get(name).copied().unwrap_or(0.0)
    }

    /// Rebuilds the per-run telemetry summary under `label` (the engine
    /// labels cells `<experiment>/<point-key>`).
    #[must_use]
    pub fn to_summary(&self, label: impl Into<String>) -> RunSummary {
        RunSummary {
            label: label.into(),
            seed: self.seed,
            config_digest: self.summary_digest.clone(),
            elapsed_us: self.elapsed_us,
            wall_elapsed_us: self.wall_us,
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }

    /// Serialises the cell for the result cache: a line-oriented text
    /// format with floats stored as hex bit patterns (the trailing
    /// decimal rendering on `scalar` lines is a human aid, ignored on
    /// parse). Ends with an `end` marker so truncated files are
    /// detected as cache misses.
    #[must_use]
    pub fn to_cache_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("airguard-cell v1\n");
        let _ = writeln!(out, "seed {}", self.seed);
        let _ = writeln!(out, "elapsed_us {}", self.elapsed_us);
        let _ = writeln!(out, "summary_digest {}", self.summary_digest);
        for (name, value) in &self.scalars {
            let _ = writeln!(out, "scalar {name} {:016x} {value}", value.to_bits());
        }
        for bin in &self.series {
            let _ = writeln!(out, "bin {} {}", bin.packets, bin.flagged);
        }
        for (name, value) in &self.counters {
            let _ = writeln!(out, "counter {name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = write!(out, "hist {name} {}", h.bounds.len());
            for b in &h.bounds {
                let _ = write!(out, " {b}");
            }
            let _ = write!(out, " {}", h.counts.len());
            for c in &h.counts {
                let _ = write!(out, " {c}");
            }
            let _ = writeln!(out, " {} {}", h.total, h.sum);
        }
        out.push_str("end\n");
        out
    }

    /// Parses [`Self::to_cache_text`] output. Any malformed, truncated,
    /// or version-mismatched input returns `None` — the caller treats
    /// it as a cache miss and re-simulates.
    #[must_use]
    pub fn parse_cache_text(text: &str) -> Option<Self> {
        let mut lines = text.lines();
        if lines.next()? != "airguard-cell v1" {
            return None;
        }
        let mut cell = CellMetrics {
            seed: 0,
            elapsed_us: 0,
            wall_us: 0,
            summary_digest: String::new(),
            scalars: BTreeMap::new(),
            series: Vec::new(),
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        };
        let mut complete = false;
        for line in lines {
            let mut fields = line.split_whitespace();
            match fields.next()? {
                "seed" => cell.seed = fields.next()?.parse().ok()?,
                "elapsed_us" => cell.elapsed_us = fields.next()?.parse().ok()?,
                "summary_digest" => cell.summary_digest = fields.next()?.to_owned(),
                "scalar" => {
                    let name = fields.next()?.to_owned();
                    let bits = u64::from_str_radix(fields.next()?, 16).ok()?;
                    cell.scalars.insert(name, f64::from_bits(bits));
                }
                "bin" => {
                    let packets = fields.next()?.parse().ok()?;
                    let flagged = fields.next()?.parse().ok()?;
                    cell.series.push(Bin { packets, flagged });
                }
                "counter" => {
                    let name = fields.next()?.to_owned();
                    cell.counters.insert(name, fields.next()?.parse().ok()?);
                }
                "hist" => {
                    let name = fields.next()?.to_owned();
                    let nb: usize = fields.next()?.parse().ok()?;
                    let bounds: Vec<u64> = (0..nb)
                        .map(|_| fields.next().and_then(|f| f.parse().ok()))
                        .collect::<Option<_>>()?;
                    let nc: usize = fields.next()?.parse().ok()?;
                    let counts: Vec<u64> = (0..nc)
                        .map(|_| fields.next().and_then(|f| f.parse().ok()))
                        .collect::<Option<_>>()?;
                    let total = fields.next()?.parse().ok()?;
                    let sum = fields.next()?.parse().ok()?;
                    cell.histograms.insert(
                        name,
                        HistogramSnapshot {
                            bounds,
                            counts,
                            total,
                            sum,
                        },
                    );
                }
                "end" => {
                    complete = true;
                    break;
                }
                _ => return None,
            }
        }
        complete.then_some(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CellMetrics {
        let mut scalars = BTreeMap::new();
        // Values chosen to stress bit-exactness: a non-terminating
        // binary fraction, a negative zero, and an ordinary integer.
        scalars.insert(metric::CORRECT_PCT.to_owned(), 0.1 + 0.2);
        scalars.insert(metric::AVG_BPS.to_owned(), -0.0);
        scalars.insert(metric::TOTAL_BYTES.to_owned(), 123_456.0);
        let mut counters = BTreeMap::new();
        counters.insert("mac.rts_tx".to_owned(), 99);
        let mut histograms = BTreeMap::new();
        histograms.insert(
            "obs.dev".to_owned(),
            HistogramSnapshot {
                bounds: vec![1, 4, 8],
                counts: vec![0, 1, 2, 3],
                total: 6,
                sum: 22,
            },
        );
        CellMetrics {
            seed: 7,
            elapsed_us: 2_000_000,
            wall_us: 0,
            summary_digest: "deadbeefdeadbeef".to_owned(),
            scalars,
            series: vec![
                Bin {
                    packets: 10,
                    flagged: 3,
                },
                Bin {
                    packets: 0,
                    flagged: 0,
                },
            ],
            counters,
            histograms,
        }
    }

    #[test]
    fn cache_text_round_trips_bit_exactly() {
        let cell = sample();
        let text = cell.to_cache_text();
        let parsed = CellMetrics::parse_cache_text(&text).expect("parses");
        assert_eq!(parsed, cell);
        assert_eq!(
            parsed.scalar(metric::AVG_BPS).to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn truncated_text_is_a_miss() {
        let text = sample().to_cache_text();
        let cut = &text[..text.len() - 5];
        assert!(CellMetrics::parse_cache_text(cut).is_none());
    }

    #[test]
    fn wrong_version_is_a_miss() {
        let text = sample().to_cache_text().replace("v1", "v0");
        assert!(CellMetrics::parse_cache_text(&text).is_none());
    }

    #[test]
    fn garbage_is_a_miss() {
        assert!(CellMetrics::parse_cache_text("").is_none());
        assert!(CellMetrics::parse_cache_text("airguard-cell v1\nwat 3\nend\n").is_none());
    }

    #[test]
    fn summary_rebuild_carries_label_and_metrics() {
        let s = sample().to_summary("fig4/pm=50");
        assert_eq!(s.label, "fig4/pm=50");
        assert_eq!(s.seed, 7);
        assert_eq!(s.counters["mac.rts_tx"], 99);
        assert_eq!(s.histograms["obs.dev"].sum, 22);
    }
}
