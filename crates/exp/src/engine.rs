//! The engine: flattens an [`Experiment`]'s grid into one `(point,
//! seed)` work queue, probes the result cache and sweep manifest, runs
//! the misses on the work-stealing executor, stores fresh cells back,
//! and re-assembles everything in deterministic point-major,
//! seed-ordered layout.
//!
//! Determinism argument (DESIGN.md §10): the queue order is fixed,
//! every cell is keyed by its queue index, and collection sorts by
//! index — so tables, CSV, and report JSONL are byte-identical for any
//! worker count, and for any mix of cached and fresh cells (the cache
//! stores floats as bit patterns).
//!
//! Hardened execution (DESIGN.md §12): every cell can run under a
//! watchdog budget (wall-clock deadline and/or virtual-event ceiling —
//! a hung cell becomes a [`CellFailure`], not a hung sweep), failed
//! cells can be retried with a derived seed, and each cell's verdict is
//! journaled to a crash-safe [`SweepManifest`] the moment it lands so a
//! killed sweep resumes instead of restarting.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Mutex;

use airguard_net::{RunBudget, RunReport, ScenarioConfig};
use airguard_obs::{aggregate_summaries, PhaseProfiler, Progress, ProgressSnapshot, RunSummary};

use crate::cache::ResultCache;
use crate::cell::CellMetrics;
use crate::executor::{panic_message, run_tasks};
use crate::manifest::SweepManifest;
use crate::sweep::{Experiment, ExperimentResult, PointResult, Rendered};

/// Counter recorded on a cell that needed more than one attempt.
pub const ATTEMPTS_COUNTER: &str = "exp.cell_attempts";

/// How to run one experiment.
#[derive(Debug)]
pub struct RunOptions {
    /// The seed set (the paper uses `1..=30`).
    pub seeds: Vec<u64>,
    /// Simulated seconds per run (the paper uses 50).
    pub secs: u64,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// The result cache, or `None` to always simulate.
    pub cache: Option<ResultCache>,
    /// Extra attempts after a cell's first failure. Retries re-run the
    /// cell under a seed derived from `(seed, attempt)` — a transient
    /// failure gets a fresh trajectory, and the attempt count lands in
    /// the cell's [`ATTEMPTS_COUNTER`].
    pub retries: u32,
    /// Wall-clock seconds one cell may run before the watchdog kills
    /// it. `None` means no deadline.
    pub watchdog_secs: Option<u64>,
    /// Virtual-event budget per cell run; `None` means unbounded. The
    /// cheaper, fully deterministic half of the watchdog.
    pub max_events: Option<u64>,
    /// Directory for the crash-safe sweep progress manifest; `None`
    /// disables journaling (and therefore resume).
    pub manifest_dir: Option<PathBuf>,
    /// When the manifest already records a cell as failed, report it as
    /// failed again without re-running it (`true`, the default —
    /// a permanently hung cell must not hang every resumed sweep).
    /// `false` re-runs previously failed cells.
    pub resume: bool,
    /// Hot-loop phase profiler shared by every simulated cell; `None`
    /// (the default) keeps the runner's zero-cost disabled path. Totals
    /// are diagnostic only and never enter results or the cache.
    pub profiler: Option<PhaseProfiler>,
}

impl RunOptions {
    /// `seeds` seeds (`1..=n`), `secs` simulated seconds, automatic
    /// worker count, no cache, no retries, no watchdog, no manifest.
    #[must_use]
    pub fn new(seed_count: u64, secs: u64) -> Self {
        RunOptions {
            seeds: (1..=seed_count.max(1)).collect(),
            secs: secs.max(1),
            workers: 0,
            cache: None,
            retries: 0,
            watchdog_secs: None,
            max_events: None,
            manifest_dir: None,
            resume: true,
            profiler: None,
        }
    }

    /// The effective worker count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }

    /// The per-cell run budget these options imply (a fresh deadline
    /// clock per call, so each cell gets the full allowance).
    #[must_use]
    pub fn cell_budget(&self) -> RunBudget {
        let deadline_exceeded = self.watchdog_secs.map(|secs| {
            // The watchdog is deliberately wall-clock: it bounds
            // *harness* time and only ever turns a hung run into an
            // error, never into different simulated results.
            let deadline = std::time::Instant::now() // lint:allow(determinism-time) — watchdog deadline, affects failure detection only
                + std::time::Duration::from_secs(secs);
            std::sync::Arc::new(move || std::time::Instant::now() >= deadline) // lint:allow(determinism-time) — same watchdog clock
                as std::sync::Arc<dyn Fn() -> bool + Send + Sync>
        });
        RunBudget {
            max_events: self.max_events,
            deadline_exceeded,
        }
    }
}

/// One failed grid cell (the run panicked, blew its budget, or was
/// skipped because a previous sweep already recorded it as failed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The point's canonical key.
    pub point_key: String,
    /// The seed whose run failed.
    pub seed: u64,
    /// The failure message.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell [{} seed={}] failed: {}",
            self.point_key, self.seed, self.message
        )
    }
}

/// Everything one engine run produces.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// The collected grid.
    pub result: ExperimentResult,
    /// The experiment's rendered tables and notes.
    pub rendered: Rendered,
    /// Per-run telemetry report lines (one [`RunSummary`] JSON per
    /// successful cell, labelled `<experiment>/<point-key>`, followed
    /// by one pooled summary per point labelled `…/pooled`).
    pub report_lines: Vec<String>,
    /// Failed cells, in grid order.
    pub failures: Vec<CellFailure>,
    /// Non-fatal problems (cache store errors, manifest trouble).
    pub warnings: Vec<String>,
    /// Cell accounting: total / simulated / cached / failed.
    pub progress: ProgressSnapshot,
}

/// Stamps the wall-clock cost of a freshly simulated cell. Struct-only:
/// `wall_us` never reaches the cache text or any export, so a cached
/// rehydration reads back zero and callers can tell the two apart.
// lint:allow(determinism-time) — harness cost accounting, excluded from every deterministic artifact
fn stamp_wall(mut cell: CellMetrics, started: std::time::Instant) -> CellMetrics {
    cell.wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    cell
}

/// Runs `cfg` once under `seed` and extracts the cacheable metrics —
/// the engine's default cell runner when no budget applies.
#[must_use]
pub fn simulate_cell(cfg: &ScenarioConfig, seed: u64) -> CellMetrics {
    let started = std::time::Instant::now(); // lint:allow(determinism-time) — wall cost of the cell, never exported
    stamp_wall(
        CellMetrics::from_report(&cfg.clone().seed(seed).run()),
        started,
    )
}

/// Budget-aware cell runner: like [`simulate_cell`] but the run is
/// bounded by `budget` and a tripped watchdog becomes an error.
///
/// # Errors
///
/// Returns the watchdog's message when the budget is exhausted.
pub fn simulate_cell_budgeted(
    cfg: &ScenarioConfig,
    seed: u64,
    budget: &RunBudget,
) -> Result<CellMetrics, String> {
    let started = std::time::Instant::now(); // lint:allow(determinism-time) — wall cost of the cell, never exported
    cfg.clone()
        .seed(seed)
        .run_budgeted(budget)
        .map(|report| stamp_wall(CellMetrics::from_report(&report), started))
}

/// Runs an experiment with the default simulation runner, honoring the
/// options' watchdog budget and phase profiler.
#[must_use]
pub fn run_experiment(exp: &Experiment, opts: &RunOptions) -> ExperimentOutcome {
    run_experiment_with(exp, opts, &|cfg, seed| match &opts.profiler {
        None => simulate_cell_budgeted(cfg, seed, &opts.cell_budget()),
        Some(profiler) => {
            let started = std::time::Instant::now(); // lint:allow(determinism-time) — wall cost of the cell, never exported
            cfg.clone()
                .seed(seed)
                .run_budgeted_profiled(&opts.cell_budget(), profiler.clone())
                .map(|report| stamp_wall(CellMetrics::from_report(&report), started))
        }
    })
}

/// Mixes `seed` with the attempt number to derive a retry seed
/// (SplitMix64 finalizer). Attempt 1 always uses `seed` itself.
#[must_use]
pub fn retry_seed(seed: u64, attempt: u32) -> u64 {
    if attempt <= 1 {
        return seed;
    }
    let mut z = seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs one cell with up to `retries` extra attempts, catching panics
/// per attempt. Returns the final verdict plus the attempts consumed.
/// A retried success is re-stamped with the requested `seed` (so cache
/// files and grid slots stay keyed by the sweep's seed) and carries the
/// true attempt count in [`ATTEMPTS_COUNTER`].
fn run_cell_with_retries(
    runner: &(dyn Fn(&ScenarioConfig, u64) -> Result<CellMetrics, String> + Sync),
    cfg: &ScenarioConfig,
    seed: u64,
    retries: u32,
) -> (Result<CellMetrics, String>, u32) {
    let total = retries.saturating_add(1);
    let mut last_err = String::new();
    for attempt in 1..=total {
        let attempt_seed = retry_seed(seed, attempt);
        let outcome = catch_unwind(AssertUnwindSafe(|| runner(cfg, attempt_seed)))
            .unwrap_or_else(|payload| Err(panic_message(payload.as_ref())));
        match outcome {
            Ok(mut cell) => {
                cell.seed = seed;
                if attempt > 1 {
                    cell.counters
                        .insert(ATTEMPTS_COUNTER.to_owned(), u64::from(attempt));
                }
                return (Ok(cell), attempt);
            }
            Err(e) => last_err = e,
        }
    }
    if total > 1 {
        last_err = format!("failed after {total} attempts: {last_err}");
    }
    (Err(last_err), total)
}

/// Runs an experiment with a caller-supplied cell runner (tests inject
/// panicking or instrumented runners here). The runner receives the
/// *attempt* seed — on a retry this differs from the cell's grid seed.
#[must_use]
pub fn run_experiment_with(
    exp: &Experiment,
    opts: &RunOptions,
    runner: &(dyn Fn(&ScenarioConfig, u64) -> Result<CellMetrics, String> + Sync),
) -> ExperimentOutcome {
    // Resolve each point's effective configuration and cache key once.
    let configs: Vec<ScenarioConfig> = exp
        .points
        .iter()
        .map(|p| p.cfg.clone().sim_time_secs(opts.secs.max(1)))
        .collect();
    let digests: Vec<String> = configs.iter().map(ScenarioConfig::config_digest).collect();

    // The global work queue: point-major, seed-ordered.
    let tasks: Vec<(usize, u64)> = (0..exp.points.len())
        .flat_map(|p| opts.seeds.iter().map(move |&s| (p, s)))
        .collect();

    let progress = Progress::new(tasks.len() as u64);
    let mut warnings = Vec::new();

    // Open the sweep manifest (when configured) and pull what a
    // previous, possibly killed, sweep already recorded.
    let (manifest, prior) = match opts.manifest_dir.as_deref() {
        Some(dir) => match SweepManifest::open(dir, exp.name) {
            Ok((m, entries)) => (Some(m), entries),
            Err(e) => {
                warnings.push(format!("sweep manifest disabled: {e}"));
                (None, std::collections::BTreeMap::new())
            }
        },
        None => (None, std::collections::BTreeMap::new()),
    };

    // Cache/manifest probe: resolved cells keep their slot; misses go
    // to the executor. Known-failed cells are re-reported, not re-run
    // (a permanently hung cell must not hang the resumed sweep).
    let mut outcomes: Vec<Option<Result<CellMetrics, String>>> = vec![None; tasks.len()];
    let mut miss_indices: Vec<usize> = Vec::new();
    for (i, &(p, seed)) in tasks.iter().enumerate() {
        if opts.resume {
            let key = (digests[p].clone(), seed);
            if let Some(entry) = prior.get(&key).filter(|e| !e.ok) {
                outcomes[i] = Some(Err(format!(
                    "skipped: previous sweep failed this cell after {} attempt(s): {}",
                    entry.attempts, entry.reason
                )));
                continue;
            }
        }
        match opts.cache.as_ref().and_then(|c| c.load(&digests[p], seed)) {
            Some(cell) => {
                progress.add_cached(1);
                outcomes[i] = Some(Ok(cell));
            }
            None => miss_indices.push(i),
        }
    }

    // Run the misses across the whole grid — no per-point barriers.
    // Fresh cells are cached and journaled the moment they land, so a
    // killed sweep loses at most the cells still in flight.
    let store_warnings: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let fresh = run_tasks(miss_indices.len(), opts.effective_workers(), |k| {
        let (p, seed) = tasks[miss_indices[k]];
        let (result, attempts) = run_cell_with_retries(runner, &configs[p], seed, opts.retries);
        match &result {
            Ok(cell) => {
                progress.add_simulated(1);
                if let Some(cache) = &opts.cache {
                    if let Err(e) = cache.store(&digests[p], seed, cell) {
                        if let Ok(mut w) = store_warnings.lock() {
                            w.push(format!(
                                "cache store failed for [{} seed={seed}]: {e}",
                                exp.points[p].key
                            ));
                        }
                    }
                }
                if let Some(m) = &manifest {
                    m.record_ok(&digests[p], seed, attempts);
                }
            }
            Err(message) => {
                if let Some(m) = &manifest {
                    m.record_failed(&digests[p], seed, attempts, message);
                }
            }
        }
        result
    });
    if let Ok(mut w) = store_warnings.lock() {
        warnings.append(&mut w);
    }
    for (k, result) in fresh.into_iter().enumerate() {
        // Flatten the executor's own failure layer (lost worker) into
        // the cell's verdict.
        outcomes[miss_indices[k]] = Some(result.unwrap_or_else(Err));
    }

    // Deterministic re-assembly: grid order is queue order.
    let mut failures = Vec::new();
    let mut points = Vec::with_capacity(exp.points.len());
    let mut outcome_iter = outcomes.into_iter();
    for (p, point) in exp.points.iter().enumerate() {
        let mut cells = Vec::with_capacity(opts.seeds.len());
        for &seed in &opts.seeds {
            let outcome = outcome_iter
                .next()
                .flatten()
                .unwrap_or_else(|| Err("cell result lost".into()));
            if let Err(message) = &outcome {
                progress.add_failed(1);
                failures.push(CellFailure {
                    point_key: point.key.clone(),
                    seed,
                    message: message.clone(),
                });
            }
            cells.push(outcome);
        }
        points.push(PointResult {
            key: point.key.clone(),
            digest: digests[p].clone(),
            cells,
        });
    }

    let result = ExperimentResult {
        name: exp.name.to_owned(),
        points,
    };
    let report_lines = report_lines(exp.name, &result);
    let rendered = (exp.render)(&result);

    ExperimentOutcome {
        result,
        rendered,
        report_lines,
        failures,
        warnings,
        progress: progress.snapshot(),
    }
}

/// Builds the telemetry report: per-cell summaries in grid order, then
/// one pooled summary per point.
fn report_lines(exp_name: &str, result: &ExperimentResult) -> Vec<String> {
    let mut lines = Vec::new();
    for point in &result.points {
        let label = format!("{exp_name}/{}", point.key);
        let summaries: Vec<RunSummary> = point
            .ok_cells()
            .map(|cell| cell.to_summary(label.clone()))
            .collect();
        for s in &summaries {
            lines.push(s.to_json());
        }
        if !summaries.is_empty() {
            lines.push(aggregate_summaries(format!("{label}/pooled"), &summaries).to_json());
        }
    }
    lines
}

/// Runs one configuration once per seed through the engine's executor,
/// returning the full reports in seed order — the replacement for the
/// old chunked `bench::run_seeds` and serial
/// `ScenarioConfig::run_seeds`.
///
/// # Errors
///
/// Returns the first failed cell if any seed's run panicked; the
/// remaining seeds still ran to completion.
pub fn run_seeds(
    cfg: &ScenarioConfig,
    seeds: &[u64],
    workers: usize,
) -> Result<Vec<RunReport>, CellFailure> {
    let workers = if workers > 0 {
        workers
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    };
    let results = run_tasks(seeds.len(), workers, |i| cfg.clone().seed(seeds[i]).run());
    let mut reports = Vec::with_capacity(seeds.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(report) => reports.push(report),
            Err(message) => {
                return Err(CellFailure {
                    point_key: "run_seeds".to_owned(),
                    seed: seeds[i],
                    message,
                })
            }
        }
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_seed_is_stable_and_distinct() {
        assert_eq!(retry_seed(7, 1), 7, "first attempt uses the grid seed");
        let second = retry_seed(7, 2);
        assert_ne!(second, 7);
        assert_eq!(second, retry_seed(7, 2), "derivation is deterministic");
        assert_ne!(retry_seed(7, 2), retry_seed(7, 3));
        assert_ne!(retry_seed(7, 2), retry_seed(8, 2));
    }

    #[test]
    fn budget_from_default_options_is_unbounded() {
        let opts = RunOptions::new(1, 1);
        let budget = opts.cell_budget();
        assert!(budget.max_events.is_none());
        assert!(budget.deadline_exceeded.is_none());
    }

    #[test]
    fn zero_second_watchdog_trips_immediately() {
        let mut opts = RunOptions::new(1, 1);
        opts.watchdog_secs = Some(0);
        let budget = opts.cell_budget();
        let deadline = budget.deadline_exceeded.expect("deadline set");
        assert!(deadline(), "a zero-second budget is already exceeded");
    }
}
