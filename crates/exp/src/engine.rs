//! The engine: flattens an [`Experiment`]'s grid into one `(point,
//! seed)` work queue, probes the result cache, runs the misses on the
//! work-stealing executor, stores fresh cells back, and re-assembles
//! everything in deterministic point-major, seed-ordered layout.
//!
//! Determinism argument (DESIGN.md §10): the queue order is fixed,
//! every cell is keyed by its queue index, and collection sorts by
//! index — so tables, CSV, and report JSONL are byte-identical for any
//! worker count, and for any mix of cached and fresh cells (the cache
//! stores floats as bit patterns).

use airguard_net::{RunReport, ScenarioConfig};
use airguard_obs::{aggregate_summaries, Progress, ProgressSnapshot, RunSummary};

use crate::cache::ResultCache;
use crate::cell::CellMetrics;
use crate::executor::run_tasks;
use crate::sweep::{Experiment, ExperimentResult, PointResult, Rendered};

/// How to run one experiment.
#[derive(Debug)]
pub struct RunOptions {
    /// The seed set (the paper uses `1..=30`).
    pub seeds: Vec<u64>,
    /// Simulated seconds per run (the paper uses 50).
    pub secs: u64,
    /// Worker threads; 0 means one per available core.
    pub workers: usize,
    /// The result cache, or `None` to always simulate.
    pub cache: Option<ResultCache>,
}

impl RunOptions {
    /// `seeds` seeds (`1..=n`), `secs` simulated seconds, automatic
    /// worker count, no cache.
    #[must_use]
    pub fn new(seed_count: u64, secs: u64) -> Self {
        RunOptions {
            seeds: (1..=seed_count.max(1)).collect(),
            secs: secs.max(1),
            workers: 0,
            cache: None,
        }
    }

    /// The effective worker count.
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        }
    }
}

/// One failed grid cell (the run panicked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// The point's canonical key.
    pub point_key: String,
    /// The seed whose run failed.
    pub seed: u64,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cell [{} seed={}] failed: {}",
            self.point_key, self.seed, self.message
        )
    }
}

/// Everything one engine run produces.
#[derive(Debug)]
pub struct ExperimentOutcome {
    /// The collected grid.
    pub result: ExperimentResult,
    /// The experiment's rendered tables and notes.
    pub rendered: Rendered,
    /// Per-run telemetry report lines (one [`RunSummary`] JSON per
    /// successful cell, labelled `<experiment>/<point-key>`, followed
    /// by one pooled summary per point labelled `…/pooled`).
    pub report_lines: Vec<String>,
    /// Failed cells, in grid order.
    pub failures: Vec<CellFailure>,
    /// Non-fatal problems (cache store errors).
    pub warnings: Vec<String>,
    /// Cell accounting: total / simulated / cached / failed.
    pub progress: ProgressSnapshot,
}

/// Runs `cfg` once under `seed` and extracts the cacheable metrics —
/// the engine's default cell runner.
#[must_use]
pub fn simulate_cell(cfg: &ScenarioConfig, seed: u64) -> CellMetrics {
    CellMetrics::from_report(&cfg.clone().seed(seed).run())
}

/// Runs an experiment with the default simulation runner.
#[must_use]
pub fn run_experiment(exp: &Experiment, opts: &RunOptions) -> ExperimentOutcome {
    run_experiment_with(exp, opts, &simulate_cell)
}

/// Runs an experiment with a caller-supplied cell runner (tests inject
/// panicking or instrumented runners here).
#[must_use]
pub fn run_experiment_with(
    exp: &Experiment,
    opts: &RunOptions,
    runner: &(dyn Fn(&ScenarioConfig, u64) -> CellMetrics + Sync),
) -> ExperimentOutcome {
    // Resolve each point's effective configuration and cache key once.
    let configs: Vec<ScenarioConfig> = exp
        .points
        .iter()
        .map(|p| p.cfg.clone().sim_time_secs(opts.secs.max(1)))
        .collect();
    let digests: Vec<String> = configs.iter().map(ScenarioConfig::config_digest).collect();

    // The global work queue: point-major, seed-ordered.
    let tasks: Vec<(usize, u64)> = (0..exp.points.len())
        .flat_map(|p| opts.seeds.iter().map(move |&s| (p, s)))
        .collect();

    let progress = Progress::new(tasks.len() as u64);
    let mut warnings = Vec::new();

    // Cache probe: resolved cells keep their slot; misses go to the
    // executor.
    let mut outcomes: Vec<Option<Result<CellMetrics, String>>> = vec![None; tasks.len()];
    let mut miss_indices: Vec<usize> = Vec::new();
    for (i, &(p, seed)) in tasks.iter().enumerate() {
        match opts.cache.as_ref().and_then(|c| c.load(&digests[p], seed)) {
            Some(cell) => {
                progress.add_cached(1);
                outcomes[i] = Some(Ok(cell));
            }
            None => miss_indices.push(i),
        }
    }

    // Run the misses across the whole grid — no per-point barriers.
    let fresh = run_tasks(miss_indices.len(), opts.effective_workers(), |k| {
        let (p, seed) = tasks[miss_indices[k]];
        let cell = runner(&configs[p], seed);
        progress.add_simulated(1);
        cell
    });
    for (k, result) in fresh.into_iter().enumerate() {
        let i = miss_indices[k];
        if let Ok(cell) = &result {
            let (p, seed) = tasks[i];
            if let Some(cache) = &opts.cache {
                if let Err(e) = cache.store(&digests[p], seed, cell) {
                    warnings.push(format!(
                        "cache store failed for [{} seed={seed}]: {e}",
                        exp.points[p].key
                    ));
                }
            }
        }
        outcomes[i] = Some(result);
    }

    // Deterministic re-assembly: grid order is queue order.
    let mut failures = Vec::new();
    let mut points = Vec::with_capacity(exp.points.len());
    let mut outcome_iter = outcomes.into_iter();
    for (p, point) in exp.points.iter().enumerate() {
        let mut cells = Vec::with_capacity(opts.seeds.len());
        for &seed in &opts.seeds {
            let outcome = outcome_iter
                .next()
                .flatten()
                .unwrap_or_else(|| Err("cell result lost".into()));
            if let Err(message) = &outcome {
                progress.add_failed(1);
                failures.push(CellFailure {
                    point_key: point.key.clone(),
                    seed,
                    message: message.clone(),
                });
            }
            cells.push(outcome);
        }
        points.push(PointResult {
            key: point.key.clone(),
            digest: digests[p].clone(),
            cells,
        });
    }

    let result = ExperimentResult {
        name: exp.name.to_owned(),
        points,
    };
    let report_lines = report_lines(exp.name, &result);
    let rendered = (exp.render)(&result);

    ExperimentOutcome {
        result,
        rendered,
        report_lines,
        failures,
        warnings,
        progress: progress.snapshot(),
    }
}

/// Builds the telemetry report: per-cell summaries in grid order, then
/// one pooled summary per point.
fn report_lines(exp_name: &str, result: &ExperimentResult) -> Vec<String> {
    let mut lines = Vec::new();
    for point in &result.points {
        let label = format!("{exp_name}/{}", point.key);
        let summaries: Vec<RunSummary> = point
            .ok_cells()
            .map(|cell| cell.to_summary(label.clone()))
            .collect();
        for s in &summaries {
            lines.push(s.to_json());
        }
        if !summaries.is_empty() {
            lines.push(aggregate_summaries(format!("{label}/pooled"), &summaries).to_json());
        }
    }
    lines
}

/// Runs one configuration once per seed through the engine's executor,
/// returning the full reports in seed order — the replacement for the
/// old chunked `bench::run_seeds` and serial
/// `ScenarioConfig::run_seeds`.
///
/// # Errors
///
/// Returns the first failed cell if any seed's run panicked; the
/// remaining seeds still ran to completion.
pub fn run_seeds(
    cfg: &ScenarioConfig,
    seeds: &[u64],
    workers: usize,
) -> Result<Vec<RunReport>, CellFailure> {
    let workers = if workers > 0 {
        workers
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    };
    let results = run_tasks(seeds.len(), workers, |i| cfg.clone().seed(seeds[i]).run());
    let mut reports = Vec::with_capacity(seeds.len());
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Ok(report) => reports.push(report),
            Err(message) => {
                return Err(CellFailure {
                    point_key: "run_seeds".to_owned(),
                    seed: seeds[i],
                    message,
                })
            }
        }
    }
    Ok(reports)
}
