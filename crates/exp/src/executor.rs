//! Work-stealing task executor with per-task panic isolation.
//!
//! The old bench harness fanned out by chunking one point's seeds across
//! threads: every point was a barrier, and a slow seed (or a point with
//! fewer seeds than cores) left workers idle. Here the *entire*
//! `(point, seed)` grid is one queue behind an atomic cursor; each worker
//! repeatedly claims the next unclaimed index until the queue drains, so
//! load balances across the whole grid with no per-point barriers.
//!
//! Determinism: workers collect `(index, result)` pairs and the results
//! are re-assembled in index order, so the output vector is identical to
//! a serial run regardless of worker count or interleaving.
//!
//! Panic isolation: each task runs under `catch_unwind`; a panicking
//! task becomes `Err(message)` in its slot — a failed cell, not a
//! harness abort — and every other task still completes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `count` tasks across `workers` threads, returning one result
/// per task in task order. `workers` is clamped to `[1, count]`; with
/// one worker the tasks run serially on the caller's thread (same
/// failure semantics, no thread spawn).
pub fn run_tasks<T, F>(count: usize, workers: usize, task: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(count.max(1));
    if workers <= 1 {
        return (0..count).map(|i| run_one(&task, i)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    let mut local: Vec<(usize, Result<T, String>)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, run_one(&task, i)));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(count);
        for handle in handles {
            // Task panics are caught inside run_one, so a worker thread
            // itself cannot panic; a failed join still degrades to lost
            // slots (reported below) rather than aborting the harness.
            if let Ok(local) = handle.join() {
                all.extend(local);
            }
        }
        all
    })
    .unwrap_or_default();

    let mut out: Vec<Option<Result<T, String>>> = (0..count).map(|_| None).collect();
    for (i, r) in collected {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|slot| slot.unwrap_or_else(|| Err("worker thread lost before reporting".into())))
        .collect()
}

/// Runs one task under `catch_unwind`, converting a panic payload into
/// an error message.
fn run_one<T, F>(task: &F, i: usize) -> Result<T, String>
where
    F: Fn(usize) -> T + Sync,
{
    catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "panic with non-string payload".to_owned())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for workers in [1, 2, 4, 8] {
            let out = run_tasks(20, workers, |i| i * 10);
            let values: Vec<usize> = out.into_iter().map(|r| r.expect("task ok")).collect();
            assert_eq!(values, (0..20).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_panicking_task_is_a_failed_cell_not_an_abort() {
        let out = run_tasks(5, 3, |i| {
            assert!(i != 2, "cell 2 exploded");
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                let msg = r.as_ref().expect_err("cell 2 failed");
                assert!(msg.contains("cell 2 exploded"), "got: {msg}");
            } else {
                assert_eq!(*r.as_ref().expect("other cells ok"), i);
            }
        }
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<Result<u32, String>> = run_tasks(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = run_tasks(2, 16, |i| i + 1);
        assert_eq!(out.len(), 2);
        assert!(out.into_iter().all(|r| r.is_ok()));
    }
}
