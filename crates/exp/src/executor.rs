//! Work-stealing task executor with per-task panic isolation.
//!
//! The old bench harness fanned out by chunking one point's seeds across
//! threads: every point was a barrier, and a slow seed (or a point with
//! fewer seeds than cores) left workers idle. Here the *entire*
//! `(point, seed)` grid is one queue behind an atomic cursor; each worker
//! repeatedly claims the next unclaimed index until the queue drains, so
//! load balances across the whole grid with no per-point barriers.
//!
//! Determinism: workers push `(index, result)` pairs into a shared
//! collection and the results are re-assembled in index order, so the
//! output vector is identical to a serial run regardless of worker count
//! or interleaving.
//!
//! Panic isolation: each task runs under `catch_unwind`; a panicking
//! task becomes `Err(message)` in its slot — a failed cell, not a
//! harness abort — and every other task still completes. Results are
//! published to the shared collection *as each task finishes* (not in a
//! per-worker batch at thread exit), so a worker thread dying abnormally
//! can only lose the single task it was running, and that slot is filled
//! with an explicit error naming the task and the captured panic payload
//! rather than a generic "lost" marker.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `count` tasks across `workers` threads, returning one result
/// per task in task order. `workers` is clamped to `[1, count]`; with
/// one worker the tasks run serially on the caller's thread (same
/// failure semantics, no thread spawn).
pub fn run_tasks<T, F>(count: usize, workers: usize, task: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.max(1).min(count.max(1));
    if workers <= 1 {
        return (0..count).map(|i| run_one(&task, i)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<T, String>)>> = Mutex::new(Vec::with_capacity(count));
    let mut harness_errors: Vec<String> = Vec::new();
    let scope_outcome = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = run_one(&task, i);
                    // Publish immediately: a completed task survives even
                    // if this worker thread later dies abnormally.
                    lock_ignoring_poison(&collected).push((i, result));
                })
            })
            .collect();
        let mut join_errors = Vec::new();
        for handle in handles {
            // Task panics are caught inside run_one, so a join failure
            // means the worker thread itself died (e.g. a panic in the
            // result-publishing path). Capture the payload so any slot
            // the thread lost carries a real diagnosis.
            if let Err(payload) = handle.join() {
                join_errors.push(panic_message(payload.as_ref()));
            }
        }
        join_errors
    });
    match scope_outcome {
        Ok(errors) => harness_errors.extend(errors),
        Err(payload) => harness_errors.push(panic_message(payload.as_ref())),
    }

    let collected = match collected.into_inner() {
        Ok(pairs) => pairs,
        Err(poisoned) => poisoned.into_inner(),
    };
    assemble(count, collected.into_iter(), &harness_errors)
}

/// Locks `mutex`, recovering the guard from a poisoned lock: a worker
/// that panicked while holding it has already been recorded via its
/// join handle, and the data inside (completed task results) is still
/// valid and must not be discarded.
fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Re-assembles out-of-order `(index, result)` pairs into task order,
/// filling any slot no worker reported with an explicit error that
/// names the task and includes whatever the harness captured about the
/// failure. Factored out of [`run_tasks`] so the lost-slot path is unit
/// testable without actually killing a worker thread.
fn assemble<T>(
    count: usize,
    collected: impl Iterator<Item = (usize, Result<T, String>)>,
    harness_errors: &[String],
) -> Vec<Result<T, String>> {
    let mut out: Vec<Option<Result<T, String>>> = (0..count).map(|_| None).collect();
    for (i, r) in collected {
        if let Some(slot) = out.get_mut(i) {
            *slot = Some(r);
        }
    }
    let context = if harness_errors.is_empty() {
        String::new()
    } else {
        format!(" ({})", harness_errors.join("; "))
    };
    out.into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(format!(
                    "task {i} lost: worker thread died before reporting it{context}"
                ))
            })
        })
        .collect()
}

/// Runs one task under `catch_unwind`, converting a panic payload into
/// an error message.
fn run_one<T, F>(task: &F, i: usize) -> Result<T, String>
where
    F: Fn(usize) -> T + Sync,
{
    catch_unwind(AssertUnwindSafe(|| task(i))).map_err(|payload| panic_message(payload.as_ref()))
}

/// Extracts the human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "panic with non-string payload".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        for workers in [1, 2, 4, 8] {
            let out = run_tasks(20, workers, |i| i * 10);
            let values: Vec<usize> = out.into_iter().map(|r| r.expect("task ok")).collect();
            assert_eq!(values, (0..20).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_panicking_task_is_a_failed_cell_not_an_abort() {
        let out = run_tasks(5, 3, |i| {
            assert!(i != 2, "cell 2 exploded");
            i
        });
        for (i, r) in out.iter().enumerate() {
            if i == 2 {
                let msg = r.as_ref().expect_err("cell 2 failed");
                assert!(msg.contains("cell 2 exploded"), "got: {msg}");
            } else {
                assert_eq!(*r.as_ref().expect("other cells ok"), i);
            }
        }
    }

    #[test]
    fn many_panicking_tasks_all_get_explicit_slots() {
        // Regression for the silent-loss path: with frequent panics and
        // real concurrency, every slot must still come back filled with
        // either its value or the task's own panic message — never the
        // generic "lost" marker.
        let out = run_tasks(50, 4, |i| {
            assert!(i % 3 != 0, "task {i} exploded");
            i
        });
        assert_eq!(out.len(), 50);
        for (i, r) in out.iter().enumerate() {
            if i % 3 == 0 {
                let msg = r.as_ref().expect_err("multiple-of-3 tasks fail");
                assert!(msg.contains(&format!("task {i} exploded")), "got: {msg}");
                assert!(
                    !msg.contains("lost"),
                    "slot {i} was lost, not failed: {msg}"
                );
            } else {
                assert_eq!(*r.as_ref().expect("other tasks ok"), i);
            }
        }
    }

    #[test]
    fn lost_slots_carry_task_index_and_harness_diagnosis() {
        // Simulates a worker dying after finishing tasks 0 and 2 but
        // before reporting task 1: the missing slot must say which task
        // vanished and why, instead of a generic marker.
        let collected = vec![(0usize, Ok(10u32)), (2, Ok(30))];
        let errors = vec!["worker panicked: allocator meltdown".to_owned()];
        let out = assemble(3, collected.into_iter(), &errors);
        assert_eq!(out[0], Ok(10));
        assert_eq!(out[2], Ok(30));
        let msg = out[1].as_ref().expect_err("slot 1 lost");
        assert!(msg.contains("task 1 lost"), "got: {msg}");
        assert!(msg.contains("allocator meltdown"), "got: {msg}");
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<Result<u32, String>> = run_tasks(0, 4, |_| 1);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_tasks_is_fine() {
        let out = run_tasks(2, 16, |i| i + 1);
        assert_eq!(out.len(), 2);
        assert!(out.into_iter().all(|r| r.is_ok()));
    }
}
