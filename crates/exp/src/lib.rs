//! `airguard-exp` — the unified experiment engine.
//!
//! The paper's evaluation (§5) is a family of parameter sweeps averaged
//! over a common seed set. This crate owns that shape end to end:
//!
//! * [`sweep`] — the declarative model: an [`Experiment`] is a grid of
//!   [`Point`]s addressed by named [`Axes`], plus a render function;
//! * [`executor`] — a work-stealing executor that load-balances the
//!   *entire* `(point, seed)` grid across cores with per-task panic
//!   isolation and index-ordered (therefore deterministic) collection;
//! * [`cache`] — a content-addressed result cache keyed by the
//!   scenario's FNV-1a config digest plus seed, so re-running a figure
//!   after an unrelated change reuses completed runs (bit-exactly);
//! * [`engine`] — ties the three together and produces tables, CSV,
//!   telemetry report lines, and per-cell failure accounting, with
//!   per-cell watchdog budgets and bounded retry-with-reseed;
//! * [`manifest`] — a crash-safe append-only progress journal so a
//!   killed sweep resumes instead of restarting;
//! * [`table`] — the console/CSV render target (moved from
//!   `airguard-bench`).
//!
//! The figure registrations themselves live in `airguard-bench`
//! (`figures/`), one layer above; this crate knows nothing about which
//! figures exist.

#![forbid(unsafe_code)]

pub mod cache;
pub mod cell;
pub mod engine;
pub mod executor;
pub mod manifest;
pub mod sweep;
pub mod table;

pub use cache::ResultCache;
pub use cell::{metric, CellMetrics};
pub use engine::{
    retry_seed, run_experiment, run_experiment_with, run_seeds, simulate_cell,
    simulate_cell_budgeted, CellFailure, ExperimentOutcome, RunOptions, ATTEMPTS_COUNTER,
};
pub use executor::run_tasks;
pub use manifest::{ManifestEntry, SweepManifest};
pub use sweep::{Axes, Experiment, ExperimentResult, Figure, Point, PointResult, Rendered};
pub use table::{f2, kbps, write_report_jsonl, Table};
