//! Crash-safe sweep progress manifest.
//!
//! The result cache makes *successful* cells resumable, but a sweep
//! killed mid-flight used to forget everything else: which cells had
//! already failed (and would hang or fail again on rerun), and how many
//! attempts each cell took. The manifest is a tiny append-only text
//! file next to the cache that records one line per finished cell the
//! moment it finishes, so a killed-and-restarted sweep can skip both
//! completed work (via the cache) and known-bad cells (via the
//! manifest) instead of re-simulating — or re-hanging on — them.
//!
//! Format (one record per line, `v1`):
//!
//! ```text
//! airguard-manifest v1
//! ok <digest> <seed> <attempts>
//! failed <digest> <seed> <attempts> <reason…>
//! ```
//!
//! Crash safety: each record is a single short `write_all` to a file
//! opened in append mode; a record torn by a crash fails to parse and
//! is ignored on load, costing at most one cell of progress. Later
//! records override earlier ones for the same `(digest, seed)`, so a
//! cell retried in a fresh sweep just appends its new verdict.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Header line identifying the file and format version.
const HEADER: &str = "airguard-manifest v1";

/// The entries recovered from a manifest, keyed by `(config digest,
/// seed)`; later records for the same cell have already overridden
/// earlier ones.
pub type ManifestEntries = BTreeMap<(String, u64), ManifestEntry>;

/// What the manifest remembers about one finished cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Whether the cell eventually succeeded.
    pub ok: bool,
    /// Attempts consumed (1 = first try, >1 = retried).
    pub attempts: u32,
    /// Failure reason (empty for successful cells).
    pub reason: String,
}

/// An append-only progress journal for one experiment's sweep.
///
/// Writes are serialized through a mutex so concurrent workers produce
/// whole lines; the file handle itself is opened in append mode.
#[derive(Debug)]
pub struct SweepManifest {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl SweepManifest {
    /// Opens (creating if needed) the manifest for experiment `name`
    /// under `dir`, returning it together with every valid entry
    /// already on disk. Unparseable lines — including a record torn by
    /// a crash — are skipped, not fatal.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message when the directory or file cannot
    /// be created or read.
    pub fn open(dir: &Path, name: &str) -> Result<(Self, ManifestEntries), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("manifest dir {}: {e}", dir.display()))?;
        let path = dir.join(format!("{name}.manifest"));
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => BTreeMap::new(),
            Err(e) => return Err(format!("manifest read {}: {e}", path.display())),
        };
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("manifest open {}: {e}", path.display()))?;
        if existing.is_empty() {
            // Fresh or fully-torn file: (re)write the header so readers
            // can identify the format. Appending a duplicate header to
            // a torn file is harmless — headers parse as no entry.
            let _ = writeln!(file, "{HEADER}");
        }
        Ok((
            SweepManifest {
                path,
                file: Mutex::new(file),
            },
            existing,
        ))
    }

    /// Where this manifest lives on disk.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a successful cell. Errors are swallowed: the manifest is
    /// an optimization, and a failed append must not fail the sweep.
    pub fn record_ok(&self, digest: &str, seed: u64, attempts: u32) {
        self.append(&format!("ok {digest} {seed} {attempts}\n"));
    }

    /// Records a failed cell with its (newline-sanitized) reason.
    pub fn record_failed(&self, digest: &str, seed: u64, attempts: u32, reason: &str) {
        let mut line = format!("failed {digest} {seed} {attempts} ");
        for ch in reason.chars() {
            let _ = write!(line, "{}", if ch == '\n' || ch == '\r' { ' ' } else { ch });
        }
        line.push('\n');
        self.append(&line);
    }

    fn append(&self, line: &str) {
        if let Ok(mut file) = self.file.lock() {
            let _ = file.write_all(line.as_bytes());
            let _ = file.flush();
        }
    }
}

/// Parses manifest text, returning the last valid record per cell.
fn parse(text: &str) -> ManifestEntries {
    let mut entries = BTreeMap::new();
    for line in text.lines() {
        let mut parts = line.splitn(4, ' ');
        let (verdict, digest, seed, rest) = (
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
            parts.next().unwrap_or(""),
        );
        let ok = match verdict {
            "ok" => true,
            "failed" => false,
            _ => continue,
        };
        let Ok(seed) = seed.parse::<u64>() else {
            continue;
        };
        let (attempts, reason) = if ok {
            match rest.parse::<u32>() {
                Ok(a) => (a, String::new()),
                Err(_) => continue,
            }
        } else {
            let mut tail = rest.splitn(2, ' ');
            let Ok(a) = tail.next().unwrap_or("").parse::<u32>() else {
                continue;
            };
            (a, tail.next().unwrap_or("").to_owned())
        };
        if digest.is_empty() || attempts == 0 {
            continue;
        }
        entries.insert(
            (digest.to_owned(), seed),
            ManifestEntry {
                ok,
                attempts,
                reason,
            },
        );
    }
    entries
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("airguard-manifest-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn round_trips_ok_and_failed_records() {
        let tmp = TempDir::new("roundtrip");
        {
            let (m, existing) = SweepManifest::open(&tmp.0, "exp").expect("open");
            assert!(existing.is_empty());
            m.record_ok("abc", 1, 1);
            m.record_failed("abc", 2, 3, "watchdog: deadline\nexceeded");
        }
        let (_, entries) = SweepManifest::open(&tmp.0, "exp").expect("reopen");
        assert_eq!(
            entries.get(&("abc".to_owned(), 1)),
            Some(&ManifestEntry {
                ok: true,
                attempts: 1,
                reason: String::new()
            })
        );
        let failed = entries.get(&("abc".to_owned(), 2)).expect("failed entry");
        assert!(!failed.ok);
        assert_eq!(failed.attempts, 3);
        assert_eq!(failed.reason, "watchdog: deadline exceeded");
    }

    #[test]
    fn later_records_override_earlier_ones() {
        let tmp = TempDir::new("override");
        let (m, _) = SweepManifest::open(&tmp.0, "exp").expect("open");
        m.record_failed("d", 7, 2, "flaky");
        m.record_ok("d", 7, 1);
        let (_, entries) = SweepManifest::open(&tmp.0, "exp").expect("reopen");
        assert!(entries.get(&("d".to_owned(), 7)).expect("entry").ok);
    }

    #[test]
    fn torn_and_garbage_lines_are_skipped() {
        let tmp = TempDir::new("torn");
        let (m, _) = SweepManifest::open(&tmp.0, "exp").expect("open");
        m.record_ok("good", 1, 1);
        // Simulate a crash mid-append plus unrelated garbage.
        let path = m.path().to_path_buf();
        drop(m);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("append");
        file.write_all(b"garbage line\nok torn 5")
            .expect("write garbage");
        drop(file);
        let (_, entries) = SweepManifest::open(&tmp.0, "exp").expect("reopen");
        assert_eq!(entries.len(), 1);
        assert!(entries.contains_key(&("good".to_owned(), 1)));
    }

    #[test]
    fn distinct_experiments_get_distinct_files() {
        let tmp = TempDir::new("distinct");
        let (a, _) = SweepManifest::open(&tmp.0, "fig5").expect("a");
        let (b, _) = SweepManifest::open(&tmp.0, "chaos").expect("b");
        assert_ne!(a.path(), b.path());
    }
}
