//! The declarative experiment model.
//!
//! An [`Experiment`] is a named set of grid [`Point`]s — each a
//! [`ScenarioConfig`] addressed by its [`Axes`] (ordered
//! `axis = value` pairs, e.g. `scenario=zero,pm=50`) — plus a render
//! function that turns the collected [`ExperimentResult`] into console
//! tables. The engine flattens `points × seeds` into one global work
//! queue; the sweep definition never mentions seeds, threads, or the
//! cache.

use airguard_metrics::Bin;
use airguard_net::ScenarioConfig;

use crate::cell::CellMetrics;
use crate::table::Table;

/// Ordered `axis = value` coordinates naming one grid point.
///
/// The rendered key (`"scenario=zero,pm=50"`) is the point's identity:
/// sweep construction and render look points up by building the same
/// `Axes` value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Axes(Vec<(String, String)>);

impl Axes {
    /// No coordinates yet.
    #[must_use]
    pub fn new() -> Self {
        Axes(Vec::new())
    }

    /// Adds one `axis = value` coordinate.
    #[must_use]
    pub fn with(mut self, axis: &str, value: impl std::fmt::Display) -> Self {
        self.0.push((axis.to_owned(), value.to_string()));
        self
    }

    /// The canonical key: coordinates joined with `,` in insertion
    /// order.
    #[must_use]
    pub fn key(&self) -> String {
        self.0
            .iter()
            .map(|(a, v)| format!("{a}={v}"))
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// One grid point: a configuration at named coordinates.
#[derive(Debug, Clone)]
pub struct Point {
    /// The point's canonical key ([`Axes::key`]).
    pub key: String,
    /// The scenario to run (sim time and seed are applied by the
    /// engine).
    pub cfg: ScenarioConfig,
}

/// Tables rendered from an experiment, ready to print and export.
#[derive(Debug, Clone)]
pub struct Figure {
    /// CSV base name under `results/` (e.g. `fig9a`).
    pub name: String,
    /// The rendered table.
    pub table: Table,
}

/// Render output: figures plus free-form note lines printed after the
/// tables (e.g. the intro claim's degradation sentence).
#[derive(Debug, Clone, Default)]
pub struct Rendered {
    /// Tables to print and write as CSV.
    pub figures: Vec<Figure>,
    /// Note lines printed after the tables.
    pub notes: Vec<String>,
}

/// A named, declarative parameter sweep.
pub struct Experiment {
    /// Registry name (`--figure` argument, CSV base name).
    pub name: &'static str,
    /// One-line description shown by `--list`.
    pub title: &'static str,
    /// Whether the CLI writes the per-run telemetry report
    /// (`results/<name>.report.jsonl`) without `--jsonl`.
    pub jsonl_default: bool,
    /// The grid.
    pub points: Vec<Point>,
    /// Builds the output tables from the collected grid.
    pub render: fn(&ExperimentResult) -> Rendered,
}

impl Experiment {
    /// An empty experiment rendering no tables.
    #[must_use]
    pub fn new(name: &'static str, title: &'static str) -> Self {
        Experiment {
            name,
            title,
            jsonl_default: false,
            points: Vec::new(),
            render: |_| Rendered::default(),
        }
    }

    /// Adds a grid point.
    ///
    /// # Panics
    ///
    /// Panics if `axes` duplicates an existing point's key — a sweep
    /// definition bug caught at registration time.
    pub fn push(&mut self, axes: &Axes, cfg: ScenarioConfig) {
        let key = axes.key();
        assert!(
            self.points.iter().all(|p| p.key != key),
            "duplicate sweep point `{key}` in experiment `{}`",
            self.name
        );
        self.points.push(Point { key, cfg });
    }
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("points", &self.points.len())
            .finish()
    }
}

/// The collected grid: one [`PointResult`] per point, in registration
/// order.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The experiment's name.
    pub name: String,
    /// Per-point results, in the experiment's point order.
    pub points: Vec<PointResult>,
}

impl ExperimentResult {
    /// The result at `axes`.
    ///
    /// # Panics
    ///
    /// Panics if no such point exists — render functions look up keys
    /// their own sweep construction produced, so a miss is a
    /// definition bug.
    #[must_use]
    pub fn point(&self, axes: &Axes) -> &PointResult {
        let key = axes.key();
        self.points
            .iter()
            .find(|p| p.key == key)
            .unwrap_or_else(|| {
                panic!("experiment `{}` has no point `{key}`", self.name) // lint:allow(panic-macro) — render functions look up keys their own sweep construction produced; a miss is a definition bug worth an immediate abort
            })
    }

    /// Mean of a scalar metric at `axes` (over successful cells).
    #[must_use]
    pub fn mean(&self, axes: &Axes, metric: &str) -> f64 {
        self.point(axes).mean(metric)
    }
}

/// One point's cells, seed-ordered; failed cells carry the panic
/// message.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The point's canonical key.
    pub key: String,
    /// The seed-independent configuration digest (the cache key).
    pub digest: String,
    /// One outcome per seed, in seed-set order.
    pub cells: Vec<Result<CellMetrics, String>>,
}

impl PointResult {
    /// The successful cells, in seed order.
    pub fn ok_cells(&self) -> impl Iterator<Item = &CellMetrics> {
        self.cells.iter().filter_map(|c| c.as_ref().ok())
    }

    /// Mean of a scalar metric over successful cells (0.0 when none
    /// succeeded, matching the historical empty-report behaviour).
    #[must_use]
    pub fn mean(&self, metric: &str) -> f64 {
        let values: Vec<f64> = self.ok_cells().map(|c| c.scalar(metric)).collect();
        if values.is_empty() {
            return 0.0;
        }
        values.iter().sum::<f64>() / values.len() as f64
    }

    /// Pools the Fig.-8 time series over successful cells by summing
    /// per-bin counts (the paper pools its 30 runs the same way).
    /// Shorter series are padded — all cells of one point share a
    /// horizon, so lengths only differ when a cell failed mid-grid.
    #[must_use]
    pub fn pooled_series(&self) -> Vec<Bin> {
        let mut pooled: Vec<Bin> = Vec::new();
        for cell in self.ok_cells() {
            if pooled.len() < cell.series.len() {
                pooled.resize(cell.series.len(), Bin::default());
            }
            for (acc, bin) in pooled.iter_mut().zip(&cell.series) {
                acc.packets += bin.packets;
                acc.flagged += bin.flagged;
            }
        }
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn cell(seed: u64, value: f64) -> CellMetrics {
        let mut scalars = BTreeMap::new();
        scalars.insert("m".to_owned(), value);
        CellMetrics {
            seed,
            elapsed_us: 0,
            wall_us: 0,
            summary_digest: String::new(),
            scalars,
            series: vec![
                Bin {
                    packets: 2,
                    flagged: 1,
                },
                Bin {
                    packets: 4,
                    flagged: 0,
                },
            ],
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    #[test]
    fn axes_key_is_ordered() {
        let a = Axes::new().with("scenario", "zero").with("pm", 50);
        assert_eq!(a.key(), "scenario=zero,pm=50");
    }

    #[test]
    fn mean_skips_failed_cells() {
        let p = PointResult {
            key: "k".into(),
            digest: "d".into(),
            cells: vec![Ok(cell(1, 10.0)), Err("boom".into()), Ok(cell(3, 20.0))],
        };
        assert_eq!(p.mean("m"), 15.0);
        assert_eq!(p.mean("missing"), 0.0);
    }

    #[test]
    fn pooled_series_sums_bins() {
        let p = PointResult {
            key: "k".into(),
            digest: "d".into(),
            cells: vec![Ok(cell(1, 0.0)), Ok(cell(2, 0.0))],
        };
        let pooled = p.pooled_series();
        assert_eq!(pooled.len(), 2);
        assert_eq!(pooled[0].packets, 4);
        assert_eq!(pooled[0].flagged, 2);
        assert_eq!(pooled[1].packets, 8);
    }

    #[test]
    #[should_panic(expected = "duplicate sweep point")]
    fn duplicate_points_are_rejected() {
        let mut e = Experiment::new("demo", "demo");
        let axes = Axes::new().with("pm", 0);
        let cfg = ScenarioConfig::new(airguard_net::StandardScenario::ZeroFlow);
        e.push(&axes, cfg.clone());
        e.push(&axes, cfg);
    }

    #[test]
    #[should_panic(expected = "no point")]
    fn unknown_point_lookup_panics() {
        let r = ExperimentResult {
            name: "demo".into(),
            points: Vec::new(),
        };
        let _ = r.point(&Axes::new().with("pm", 1));
    }
}
