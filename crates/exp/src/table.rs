//! Console tables with CSV export — the render target of every figure.
//!
//! Moved here from `airguard-bench` so experiment definitions (which
//! live one layer below the CLI) can produce tables without a circular
//! dependency. [`Table::to_csv_string`] is the canonical byte-exact
//! rendering: the determinism tests compare it across worker counts and
//! across cache hits.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A fixed-width console table that can also be written as CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n== {} ==", self.title); // lint:allow(print-macro) — console table rendering is this harness's user-facing output, not library diagnostics
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.header)); // lint:allow(print-macro) — console table rendering is this harness's user-facing output, not library diagnostics
        for row in &self.rows {
            println!("{}", fmt_row(row)); // lint:allow(print-macro) — console table rendering is this harness's user-facing output, not library diagnostics
        }
    }

    /// The CSV rendering: header line plus one line per row, `\n`
    /// terminated. This string is the byte-identity contract of the
    /// determinism tests.
    #[must_use]
    pub fn to_csv_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV under `results/<name>.csv` (creating the
    /// directory), returning the path written.
    ///
    /// # Errors
    ///
    /// Propagates any I/O failure; callers must surface it rather than
    /// silently dropping the artifact.
    pub fn write_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv_string().as_bytes())?;
        Ok(path)
    }
}

/// Writes pre-rendered JSONL report lines under
/// `results/<name>.report.jsonl`, returning the path written.
///
/// # Errors
///
/// Propagates any I/O failure; callers must surface it rather than
/// silently dropping the artifact.
pub fn write_report_jsonl(name: &str, lines: &[String]) -> std::io::Result<PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.report.jsonl"));
    let mut f = std::fs::File::create(&path)?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    Ok(path)
}

/// Formats a float cell with two decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput in Kb/s with one decimal.
#[must_use]
pub fn kbps(v_bps: f64) -> String {
    format!("{:.1}", v_bps / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
        assert_eq!(t.to_csv_string(), "a,b\n1,2\n");
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(kbps(1500.0), "1.5");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into()]);
    }
}
