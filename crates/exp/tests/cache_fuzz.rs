//! Property test for the cache corruption path (DESIGN.md §12):
//! arbitrary truncation and garbage injected into on-disk
//! `results/cache/v1/<digest>/<seed>.cell` files must never error or
//! poison a sweep — a detectable corruption is a silent cache miss that
//! re-simulates to the exact baseline output, and even a mutation that
//! happens to still parse leaves the sweep completing with every cell
//! slot filled.
//!
//! The cell runner here is synthetic (pure function of the seed, no
//! simulator), so each proptest case re-runs the whole engine in
//! microseconds.

use std::collections::BTreeMap;
use std::path::PathBuf;

use airguard_exp::{
    run_experiment_with, Axes, CellMetrics, Experiment, ExperimentResult, Rendered, ResultCache,
    RunOptions,
};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
use proptest::prelude::*;

const SEEDS: u64 = 3;
const POINTS: usize = 2;

fn experiment() -> Experiment {
    let mut e = Experiment::new("fuzz", "cache corruption fixture");
    e.render = |_: &ExperimentResult| Rendered {
        figures: Vec::new(),
        notes: Vec::new(),
    };
    for pm in [0.0, 50.0] {
        e.push(
            &Axes::new().with("pm", format!("{pm:.0}")),
            ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .n_senders(2)
                .misbehavior_percent(pm),
        );
    }
    e
}

/// A deterministic stand-in for the simulator: cheap, but exercises
/// every field class the cache text format serializes.
fn synthetic_cell(cfg: &ScenarioConfig, seed: u64) -> CellMetrics {
    let digest = cfg.config_digest();
    let mut scalars = BTreeMap::new();
    scalars.insert("fuzz.scalar".to_owned(), (seed as f64) * 1.25 + 0.1);
    let mut counters = BTreeMap::new();
    counters.insert("fuzz.counter".to_owned(), seed * 31);
    CellMetrics {
        seed,
        elapsed_us: 1_000_000 + seed,
        wall_us: 0,
        summary_digest: digest,
        scalars,
        series: Vec::new(),
        counters,
        histograms: BTreeMap::new(),
    }
}

fn options(cache: ResultCache) -> RunOptions {
    let mut o = RunOptions::new(SEEDS, 1);
    o.workers = 2;
    o.cache = Some(cache);
    o
}

/// One way to damage a stored cell file.
#[derive(Debug, Clone)]
enum Damage {
    /// Keep only the first `n % len` bytes.
    Truncate(usize),
    /// XOR one byte (never a no-op: the mask is non-zero).
    Flip { pos: usize, mask: u8 },
    /// Append raw garbage.
    Append(Vec<u8>),
    /// Replace the whole file with raw garbage.
    Replace(Vec<u8>),
}

fn damage_strategy() -> impl Strategy<Value = Damage> {
    prop_oneof![
        (0usize..4096).prop_map(Damage::Truncate),
        ((0usize..4096), 1u8..=255).prop_map(|(pos, mask)| Damage::Flip { pos, mask }),
        proptest::collection::vec(any::<u8>(), 0..96).prop_map(Damage::Append),
        proptest::collection::vec(any::<u8>(), 0..96).prop_map(Damage::Replace),
    ]
}

fn apply(damage: &Damage, bytes: &mut Vec<u8>) {
    match damage {
        Damage::Truncate(n) => {
            let keep = if bytes.is_empty() { 0 } else { n % bytes.len() };
            bytes.truncate(keep);
        }
        Damage::Flip { pos, mask } => {
            if !bytes.is_empty() {
                let i = pos % bytes.len();
                bytes[i] ^= mask;
            }
        }
        Damage::Append(garbage) => bytes.extend_from_slice(garbage),
        Damage::Replace(garbage) => *bytes = garbage.clone(),
    }
}

struct TempCache {
    root: PathBuf,
}

impl TempCache {
    fn new(tag: u64) -> Self {
        let root =
            std::env::temp_dir().join(format!("airguard-exp-fuzz-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        TempCache { root }
    }

    fn cache(&self) -> ResultCache {
        ResultCache::new(self.root.clone())
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn corrupted_cells_resimulate_cleanly(
        which in 0..(POINTS as u64 * SEEDS),
        damage in damage_strategy(),
    ) {
        let tmp = TempCache::new(which);
        let exp = experiment();
        let opts = options(tmp.cache());
        let runner = |cfg: &ScenarioConfig, seed: u64| Ok(synthetic_cell(cfg, seed));

        // Populate the cache, then corrupt exactly one stored cell.
        let baseline = run_experiment_with(&exp, &opts, &runner);
        prop_assert!(baseline.failures.is_empty(), "{:?}", baseline.failures);
        prop_assert_eq!(baseline.progress.simulated, POINTS as u64 * SEEDS);

        let point = (which / SEEDS) as usize;
        let seed = which % SEEDS + 1;
        let digest = baseline.result.points[point].digest.clone();
        let path = tmp.cache().cell_path(&digest, seed);
        let mut bytes = std::fs::read(&path).expect("stored cell exists");
        apply(&damage, &mut bytes);
        std::fs::write(&path, &bytes).expect("write corrupted cell");

        // The engine's view of the damaged file, via the exact load
        // path the sweep uses.
        let survivor = tmp.cache().load(&digest, seed);

        let rerun = run_experiment_with(&exp, &opts, &runner);

        // The sweep must never error or poison: no failures, every
        // slot filled, full cell accounting.
        prop_assert!(rerun.failures.is_empty(), "{:?}", rerun.failures);
        prop_assert_eq!(
            rerun.progress.cached + rerun.progress.simulated,
            POINTS as u64 * SEEDS
        );
        for p in &rerun.result.points {
            for cell in &p.cells {
                prop_assert!(cell.is_ok());
            }
        }

        if survivor.is_none() {
            // Corruption detected: exactly the damaged cell was a miss,
            // and re-simulation restores byte-identical output.
            prop_assert_eq!(rerun.progress.simulated, 1);
            prop_assert_eq!(&rerun.report_lines, &baseline.report_lines);
            // The repaired on-disk cell round-trips again.
            prop_assert!(tmp.cache().load(&digest, seed).is_some());
        } else {
            // The mutation still parses as a well-formed cell (e.g. a
            // bit flip inside a stored value): indistinguishable from a
            // legitimate entry by design of format v1, but it must be
            // served as a plain hit, not break the sweep.
            prop_assert_eq!(rerun.progress.simulated, 0);
        }
    }
}
