//! End-to-end engine tests over the real simulator: determinism across
//! worker counts, cache hit/miss/invalidation, and failed-cell
//! isolation.

use std::collections::BTreeMap;
use std::path::PathBuf;

use airguard_exp::{
    f2, metric, run_experiment, run_experiment_with, simulate_cell, Axes, CellMetrics, Experiment,
    ExperimentResult, Figure, Rendered, ResultCache, RunOptions, Table,
};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

/// A tiny but real sweep: 2 points × a handful of seeds at 1 s horizon.
fn tiny_experiment() -> Experiment {
    let mut e = Experiment::new("tiny", "integration fixture");
    e.render = render;
    for pm in [0.0, 50.0] {
        e.push(
            &Axes::new().with("pm", format!("{pm:.0}")),
            ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .n_senders(2)
                .misbehavior_percent(pm),
        );
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new("tiny", &["pm", "correct%", "msb_bps"]);
    for pm in ["0", "50"] {
        let a = Axes::new().with("pm", pm);
        t.row(&[
            pm.to_owned(),
            f2(r.mean(&a, metric::CORRECT_PCT)),
            f2(r.mean(&a, metric::MSB_BPS)),
        ]);
    }
    Rendered {
        figures: vec![Figure {
            name: "tiny".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}

fn opts(seeds: u64, secs: u64, workers: usize) -> RunOptions {
    let mut o = RunOptions::new(seeds, secs);
    o.workers = workers;
    o
}

/// A scratch cache rooted under the system temp dir, removed on drop.
struct TempCache {
    root: PathBuf,
}

impl TempCache {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("airguard-exp-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        TempCache { root }
    }

    fn cache(&self) -> ResultCache {
        ResultCache::new(self.root.clone())
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let exp = tiny_experiment();
    let serial = run_experiment(&exp, &opts(3, 1, 1));
    for workers in [2usize, 4, 8] {
        let parallel = run_experiment(&exp, &opts(3, 1, workers));
        assert_eq!(
            serial.rendered.figures[0].table.to_csv_string(),
            parallel.rendered.figures[0].table.to_csv_string(),
            "CSV must not depend on worker count ({workers} workers)"
        );
        assert_eq!(
            serial.report_lines, parallel.report_lines,
            "report JSONL must not depend on worker count ({workers} workers)"
        );
    }
    assert!(serial.failures.is_empty());
    assert_eq!(serial.progress.simulated, 6);
}

#[test]
fn cache_turns_reruns_into_pure_reads_and_invalidates_on_config_change() {
    let tmp = TempCache::new("cache");
    let exp = tiny_experiment();

    let mut o = opts(3, 1, 2);
    o.cache = Some(tmp.cache());
    let first = run_experiment(&exp, &o);
    assert_eq!((first.progress.simulated, first.progress.cached), (6, 0));
    assert!(first.warnings.is_empty(), "{:?}", first.warnings);

    let second = run_experiment(&exp, &o);
    assert_eq!(
        (second.progress.simulated, second.progress.cached),
        (0, 6),
        "a re-run must re-read every cell"
    );
    assert_eq!(
        first.rendered.figures[0].table.to_csv_string(),
        second.rendered.figures[0].table.to_csv_string(),
        "cached cells must render byte-identically"
    );
    assert_eq!(first.report_lines, second.report_lines);

    // A different horizon is a different config digest: full miss.
    let mut longer = opts(3, 2, 2);
    longer.cache = Some(tmp.cache());
    let third = run_experiment(&exp, &longer);
    assert_eq!((third.progress.simulated, third.progress.cached), (6, 0));

    // A larger seed set reuses the old seeds and simulates the new one.
    let mut more_seeds = opts(4, 1, 2);
    more_seeds.cache = Some(tmp.cache());
    let fourth = run_experiment(&exp, &more_seeds);
    assert_eq!((fourth.progress.simulated, fourth.progress.cached), (2, 6));
}

#[test]
fn failed_cells_are_isolated_and_reported() {
    let exp = tiny_experiment();
    let outcome = run_experiment_with(&exp, &opts(3, 1, 2), &|cfg, seed| {
        assert!(seed != 2, "seed 2 exploded"); // lint:allow(panic-macro) — the test injects a panicking cell on purpose
        simulate_cell(cfg, seed)
    });
    assert_eq!(outcome.failures.len(), 2, "one failure per point");
    for (f, key) in outcome.failures.iter().zip(["pm=0", "pm=50"]) {
        assert_eq!(f.seed, 2);
        assert_eq!(f.point_key, key);
        assert!(f.message.contains("seed 2 exploded"), "{}", f.message);
    }
    assert_eq!(outcome.progress.failed, 2);
    assert_eq!(outcome.progress.simulated, 4);
    for point in &outcome.result.points {
        assert!(point.cells[0].is_ok() && point.cells[2].is_ok());
        assert!(point.cells[1].is_err(), "seed 2 is the middle slot");
        assert_eq!(point.ok_cells().count(), 2);
    }
    // Means still render from the surviving cells.
    let csv = outcome.rendered.figures[0].table.to_csv_string();
    assert!(csv.lines().count() == 3, "{csv}");
}

#[test]
fn corrupt_cache_entries_fall_back_to_simulation() {
    let tmp = TempCache::new("corrupt");
    let exp = tiny_experiment();
    let mut o = opts(2, 1, 1);
    o.cache = Some(tmp.cache());
    let first = run_experiment(&exp, &o);
    assert_eq!(first.progress.simulated, 4);

    // Truncate one stored cell; the engine must treat it as a miss.
    let digest = &first.result.points[0].digest;
    let path = tmp.cache().cell_path(digest, 1);
    std::fs::write(&path, "airguard-cell v1\nseed 1\n").expect("truncate cell");
    let second = run_experiment(&exp, &o);
    assert_eq!(
        (second.progress.simulated, second.progress.cached),
        (1, 3),
        "only the corrupted cell re-simulates"
    );
    assert_eq!(
        first.rendered.figures[0].table.to_csv_string(),
        second.rendered.figures[0].table.to_csv_string()
    );
}

#[test]
fn cached_cells_survive_a_round_trip_exactly() {
    let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .n_senders(2)
        .sim_time_secs(1);
    let cell = simulate_cell(&cfg, 7);
    let reparsed = CellMetrics::parse_cache_text(&cell.to_cache_text()).expect("parses");
    assert_eq!(cell, reparsed);
    let scalars: BTreeMap<&str, f64> = cell.scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    assert!(scalars.contains_key(metric::CORRECT_PCT));
    assert!(scalars.contains_key(metric::TOTAL_BYTES));
}
