//! End-to-end engine tests over the real simulator: determinism across
//! worker counts, cache hit/miss/invalidation, and failed-cell
//! isolation.

use std::collections::BTreeMap;
use std::path::PathBuf;

use airguard_exp::{
    f2, metric, retry_seed, run_experiment, run_experiment_with, simulate_cell, Axes, CellMetrics,
    Experiment, ExperimentResult, Figure, Rendered, ResultCache, RunOptions, Table,
    ATTEMPTS_COUNTER,
};
use airguard_net::{Protocol, ScenarioConfig, StandardScenario};

/// A tiny but real sweep: 2 points × a handful of seeds at 1 s horizon.
fn tiny_experiment() -> Experiment {
    let mut e = Experiment::new("tiny", "integration fixture");
    e.render = render;
    for pm in [0.0, 50.0] {
        e.push(
            &Axes::new().with("pm", format!("{pm:.0}")),
            ScenarioConfig::new(StandardScenario::ZeroFlow)
                .protocol(Protocol::Correct)
                .n_senders(2)
                .misbehavior_percent(pm),
        );
    }
    e
}

fn render(r: &ExperimentResult) -> Rendered {
    let mut t = Table::new("tiny", &["pm", "correct%", "msb_bps"]);
    for pm in ["0", "50"] {
        let a = Axes::new().with("pm", pm);
        t.row(&[
            pm.to_owned(),
            f2(r.mean(&a, metric::CORRECT_PCT)),
            f2(r.mean(&a, metric::MSB_BPS)),
        ]);
    }
    Rendered {
        figures: vec![Figure {
            name: "tiny".into(),
            table: t,
        }],
        notes: Vec::new(),
    }
}

fn opts(seeds: u64, secs: u64, workers: usize) -> RunOptions {
    let mut o = RunOptions::new(seeds, secs);
    o.workers = workers;
    o
}

/// A scratch cache rooted under the system temp dir, removed on drop.
struct TempCache {
    root: PathBuf,
}

impl TempCache {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("airguard-exp-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        TempCache { root }
    }

    fn cache(&self) -> ResultCache {
        ResultCache::new(self.root.clone())
    }
}

impl Drop for TempCache {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn parallel_output_is_byte_identical_to_serial() {
    let exp = tiny_experiment();
    let serial = run_experiment(&exp, &opts(3, 1, 1));
    for workers in [2usize, 4, 8] {
        let parallel = run_experiment(&exp, &opts(3, 1, workers));
        assert_eq!(
            serial.rendered.figures[0].table.to_csv_string(),
            parallel.rendered.figures[0].table.to_csv_string(),
            "CSV must not depend on worker count ({workers} workers)"
        );
        assert_eq!(
            serial.report_lines, parallel.report_lines,
            "report JSONL must not depend on worker count ({workers} workers)"
        );
    }
    assert!(serial.failures.is_empty());
    assert_eq!(serial.progress.simulated, 6);
}

#[test]
fn cache_turns_reruns_into_pure_reads_and_invalidates_on_config_change() {
    let tmp = TempCache::new("cache");
    let exp = tiny_experiment();

    let mut o = opts(3, 1, 2);
    o.cache = Some(tmp.cache());
    let first = run_experiment(&exp, &o);
    assert_eq!((first.progress.simulated, first.progress.cached), (6, 0));
    assert!(first.warnings.is_empty(), "{:?}", first.warnings);

    let second = run_experiment(&exp, &o);
    assert_eq!(
        (second.progress.simulated, second.progress.cached),
        (0, 6),
        "a re-run must re-read every cell"
    );
    assert_eq!(
        first.rendered.figures[0].table.to_csv_string(),
        second.rendered.figures[0].table.to_csv_string(),
        "cached cells must render byte-identically"
    );
    assert_eq!(first.report_lines, second.report_lines);

    // A different horizon is a different config digest: full miss.
    let mut longer = opts(3, 2, 2);
    longer.cache = Some(tmp.cache());
    let third = run_experiment(&exp, &longer);
    assert_eq!((third.progress.simulated, third.progress.cached), (6, 0));

    // A larger seed set reuses the old seeds and simulates the new one.
    let mut more_seeds = opts(4, 1, 2);
    more_seeds.cache = Some(tmp.cache());
    let fourth = run_experiment(&exp, &more_seeds);
    assert_eq!((fourth.progress.simulated, fourth.progress.cached), (2, 6));
}

#[test]
fn failed_cells_are_isolated_and_reported() {
    let exp = tiny_experiment();
    let outcome = run_experiment_with(&exp, &opts(3, 1, 2), &|cfg, seed| {
        assert!(seed != 2, "seed 2 exploded"); // lint:allow(panic-macro) — the test injects a panicking cell on purpose
        Ok(simulate_cell(cfg, seed))
    });
    assert_eq!(outcome.failures.len(), 2, "one failure per point");
    for (f, key) in outcome.failures.iter().zip(["pm=0", "pm=50"]) {
        assert_eq!(f.seed, 2);
        assert_eq!(f.point_key, key);
        assert!(f.message.contains("seed 2 exploded"), "{}", f.message);
    }
    assert_eq!(outcome.progress.failed, 2);
    assert_eq!(outcome.progress.simulated, 4);
    for point in &outcome.result.points {
        assert!(point.cells[0].is_ok() && point.cells[2].is_ok());
        assert!(point.cells[1].is_err(), "seed 2 is the middle slot");
        assert_eq!(point.ok_cells().count(), 2);
    }
    // Means still render from the surviving cells.
    let csv = outcome.rendered.figures[0].table.to_csv_string();
    assert!(csv.lines().count() == 3, "{csv}");
}

#[test]
fn corrupt_cache_entries_fall_back_to_simulation() {
    let tmp = TempCache::new("corrupt");
    let exp = tiny_experiment();
    let mut o = opts(2, 1, 1);
    o.cache = Some(tmp.cache());
    let first = run_experiment(&exp, &o);
    assert_eq!(first.progress.simulated, 4);

    // Truncate one stored cell; the engine must treat it as a miss.
    let digest = &first.result.points[0].digest;
    let path = tmp.cache().cell_path(digest, 1);
    std::fs::write(&path, "airguard-cell v1\nseed 1\n").expect("truncate cell");
    let second = run_experiment(&exp, &o);
    assert_eq!(
        (second.progress.simulated, second.progress.cached),
        (1, 3),
        "only the corrupted cell re-simulates"
    );
    assert_eq!(
        first.rendered.figures[0].table.to_csv_string(),
        second.rendered.figures[0].table.to_csv_string()
    );
}

#[test]
fn transient_failures_succeed_on_retry_with_attempt_accounting() {
    let exp = tiny_experiment();
    let mut o = opts(3, 1, 2);
    o.retries = 2;
    // Seed 2's first attempt fails; the retry runs under the derived
    // seed and succeeds. The grid slot stays keyed to seed 2.
    let outcome = run_experiment_with(&exp, &o, &|cfg, seed| {
        if seed == 2 {
            return Err("transient: cosmic ray".into());
        }
        Ok(simulate_cell(cfg, seed))
    });
    assert!(outcome.failures.is_empty(), "{:?}", outcome.failures);
    assert_eq!(outcome.progress.simulated, 6);
    for point in &outcome.result.points {
        let cell = point.cells[1].as_ref().expect("retried cell succeeds");
        assert_eq!(cell.seed, 2, "cell stays keyed to its grid seed");
        assert_eq!(
            cell.counters.get(ATTEMPTS_COUNTER).copied(),
            Some(2),
            "the retry is recorded on the cell"
        );
        assert!(
            !point.cells[0]
                .as_ref()
                .expect("first-try cell")
                .counters
                .contains_key(ATTEMPTS_COUNTER),
            "first-try cells carry no attempts counter"
        );
    }
}

#[test]
fn exhausted_retries_report_the_attempt_count() {
    let exp = tiny_experiment();
    let mut o = opts(2, 1, 2);
    o.retries = 2;
    let outcome = run_experiment_with(&exp, &o, &|cfg, seed| {
        // Fail seed 1 on every attempt: the derived retry seeds are
        // also rejected by mapping them back to the grid seed.
        if seed == 1 || (2..=3).any(|a| retry_seed(1, a) == seed) {
            return Err("hard failure".into());
        }
        Ok(simulate_cell(cfg, seed))
    });
    assert_eq!(outcome.failures.len(), 2, "{:?}", outcome.failures);
    for f in &outcome.failures {
        assert_eq!(f.seed, 1);
        assert!(
            f.message.contains("failed after 3 attempts"),
            "{}",
            f.message
        );
        assert!(f.message.contains("hard failure"), "{}", f.message);
    }
}

#[test]
fn watchdog_budget_turns_runaway_cells_into_failures() {
    let exp = tiny_experiment();
    let mut o = opts(2, 1, 2);
    // An absurdly small virtual-event budget: every cell trips it.
    o.max_events = Some(3);
    let outcome = run_experiment(&exp, &o);
    assert_eq!(outcome.failures.len(), 4, "{:?}", outcome.failures);
    for f in &outcome.failures {
        assert!(f.message.contains("watchdog"), "{}", f.message);
        assert!(f.message.contains("event budget"), "{}", f.message);
    }
    assert_eq!(outcome.progress.failed, 4);
    assert_eq!(outcome.progress.simulated, 0);
}

#[test]
fn wall_clock_watchdog_fires_on_a_zero_deadline() {
    let exp = tiny_experiment();
    let mut o = opts(1, 1, 1);
    o.watchdog_secs = Some(0);
    let outcome = run_experiment(&exp, &o);
    assert_eq!(outcome.failures.len(), 2, "{:?}", outcome.failures);
    for f in &outcome.failures {
        assert!(f.message.contains("watchdog"), "{}", f.message);
        assert!(f.message.contains("deadline"), "{}", f.message);
    }
}

#[test]
fn manifest_resume_skips_completed_and_failed_cells() {
    let tmp = TempCache::new("resume");
    let exp = tiny_experiment();
    let mut o = opts(3, 1, 2);
    o.cache = Some(tmp.cache());
    o.manifest_dir = Some(tmp.root.join("manifest"));

    // First sweep: seed 2 fails hard (all retries exhausted), the rest
    // complete and land in the cache + manifest.
    let first = run_experiment_with(&exp, &o, &|cfg, seed| {
        if seed == 2 || retry_seed(2, 2) == seed {
            return Err("hung on purpose".into());
        }
        Ok(simulate_cell(cfg, seed))
    });
    assert_eq!(first.progress.simulated, 4);
    assert_eq!(first.progress.failed, 2);

    // Resumed sweep: a runner that panics if it is ever invoked proves
    // nothing re-runs — completed cells come from the cache and the
    // known-failed cells are re-reported from the manifest.
    let second = run_experiment_with(&exp, &o, &|_, seed| {
        panic!("resume must not re-run any cell (got seed {seed})") // lint:allow(panic-macro) — the test asserts the runner is never reached
    });
    assert_eq!(second.progress.simulated, 0, "{:?}", second.failures);
    assert_eq!(second.progress.cached, 4);
    assert_eq!(second.failures.len(), 2);
    for f in &second.failures {
        assert_eq!(f.seed, 2);
        assert!(f.message.contains("skipped"), "{}", f.message);
        assert!(f.message.contains("hung on purpose"), "{}", f.message);
    }

    // With resume off, failed cells run again (and still fail here).
    let mut no_resume = opts(3, 1, 2);
    no_resume.cache = Some(tmp.cache());
    no_resume.manifest_dir = Some(tmp.root.join("manifest"));
    no_resume.resume = false;
    let third = run_experiment_with(&exp, &no_resume, &|cfg, seed| Ok(simulate_cell(cfg, seed)));
    assert!(third.failures.is_empty(), "{:?}", third.failures);
    assert_eq!(third.progress.simulated, 2, "only the failed cells re-run");
    assert_eq!(third.progress.cached, 4);
}

#[test]
fn cached_cells_survive_a_round_trip_exactly() {
    let cfg = ScenarioConfig::new(StandardScenario::ZeroFlow)
        .protocol(Protocol::Correct)
        .n_senders(2)
        .sim_time_secs(1);
    let cell = simulate_cell(&cfg, 7);
    let reparsed = CellMetrics::parse_cache_text(&cell.to_cache_text()).expect("parses");
    // Wall-clock cost is struct-only by design: a fresh cell carries
    // it, the cache text never does, so a rehydrated cell reads zero —
    // that asymmetry is how callers tell cached from simulated.
    assert_eq!(reparsed.wall_us, 0, "wall_us must not survive the cache");
    let mut fresh = cell;
    fresh.wall_us = 0;
    assert_eq!(fresh, reparsed);
    let cell = fresh;
    let scalars: BTreeMap<&str, f64> = cell.scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    assert!(scalars.contains_key(metric::CORRECT_PCT));
    assert!(scalars.contains_key(metric::TOTAL_BYTES));
}
