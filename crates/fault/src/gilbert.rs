//! The Gilbert–Elliott loss process.
//!
//! One instance models the bursty noise environment at one listener: a
//! hidden good/bad state advanced once per delivery sample, with a
//! state-dependent frame loss probability. All randomness comes from the
//! dedicated `RngStream` handed in at construction, so the loss pattern
//! is a pure function of (master seed, stream key, sample count).

use airguard_sim::RngStream;
use rand::RngExt;

use crate::plan::BurstLoss;

/// Per-listener Gilbert–Elliott channel state.
#[derive(Debug)]
pub struct GilbertElliott {
    cfg: BurstLoss,
    bad: bool,
    rng: RngStream,
}

impl GilbertElliott {
    /// Creates a channel in the good state.
    ///
    /// `rng` should be a dedicated stream (e.g.
    /// `seed.stream("fault.loss", listener)`) so loss sampling never
    /// perturbs channel or MAC randomness.
    #[must_use]
    pub fn new(cfg: BurstLoss, rng: RngStream) -> Self {
        GilbertElliott {
            cfg,
            bad: false,
            rng,
        }
    }

    /// Advances the state machine one sample and reports whether the
    /// frame is lost. Exactly two RNG draws per call, in both states, so
    /// the stream position depends only on how many deliveries were
    /// sampled.
    pub fn drops(&mut self) -> bool {
        let flip = if self.bad {
            self.cfg.p_exit
        } else {
            self.cfg.p_enter
        };
        if self.rng.random_range(0.0..1.0) < flip {
            self.bad = !self.bad;
        }
        let loss = if self.bad {
            self.cfg.loss_bad
        } else {
            self.cfg.loss_good
        };
        self.rng.random_range(0.0..1.0) < loss
    }

    /// Whether the channel is currently in the bad (bursty) state.
    #[must_use]
    pub fn in_bad_state(&self) -> bool {
        self.bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_sim::MasterSeed;

    fn channel(cfg: BurstLoss, seed: u64) -> GilbertElliott {
        GilbertElliott::new(cfg, MasterSeed::new(seed).stream("fault.loss", 0))
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut ge = channel(
            BurstLoss {
                p_enter: 0.5,
                p_exit: 0.5,
                loss_good: 0.0,
                loss_bad: 0.0,
            },
            1,
        );
        assert!((0..10_000).all(|_| !ge.drops()));
    }

    #[test]
    fn total_loss_always_drops() {
        let mut ge = channel(
            BurstLoss {
                p_enter: 0.0,
                p_exit: 1.0,
                loss_good: 1.0,
                loss_bad: 1.0,
            },
            2,
        );
        assert!((0..1_000).all(|_| ge.drops()));
    }

    #[test]
    fn same_stream_reproduces_the_same_loss_pattern() {
        let cfg = BurstLoss {
            p_enter: 0.05,
            p_exit: 0.2,
            loss_good: 0.01,
            loss_bad: 0.8,
        };
        let pattern = |seed| {
            let mut ge = channel(cfg, seed);
            (0..5_000).map(|_| ge.drops()).collect::<Vec<bool>>()
        };
        assert_eq!(pattern(7), pattern(7));
        assert_ne!(pattern(7), pattern(8), "different seeds diverge");
    }

    #[test]
    fn bad_state_raises_the_loss_rate() {
        let cfg = BurstLoss {
            p_enter: 0.1,
            p_exit: 0.1,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut ge = channel(cfg, 3);
        let n = 50_000;
        let lost = (0..n).filter(|_| ge.drops()).count() as f64 / f64::from(n);
        // The chain spends half its time in each state.
        assert!((lost - 0.5).abs() < 0.02, "loss rate {lost}");
    }

    #[test]
    fn losses_come_in_bursts() {
        // Sticky states: long runs of losses and long runs of successes.
        let cfg = BurstLoss {
            p_enter: 0.01,
            p_exit: 0.01,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut ge = channel(cfg, 4);
        let samples: Vec<bool> = (0..20_000).map(|_| ge.drops()).collect();
        let flips = samples.windows(2).filter(|w| w[0] != w[1]).count();
        // Independent coin flips would change outcome ~50% of the time;
        // a sticky chain changes state ~2% of the time.
        assert!(flips < 1_000, "observed {flips} flips — not bursty");
        assert!(samples.iter().any(|&l| l) && samples.iter().any(|&l| !l));
    }
}
