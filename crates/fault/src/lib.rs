//! Deterministic fault injection for the airguard simulator.
//!
//! The paper's detection claims are made under one well-behaved channel;
//! this crate supplies the hostile counterpart. A [`FaultPlan`] is a
//! declarative, seed-independent description of *what* goes wrong in a
//! run — burst loss on the medium, node crash/restart churn, corrupted
//! control-frame fields, receiver clock drift — while *when* each
//! individual fault fires is drawn from dedicated `"fault.*"` RNG
//! streams derived from the run's master seed. The same seed and the
//! same plan therefore reproduce the same faults byte for byte, which
//! keeps faulted runs as replayable as clean ones.
//!
//! The crate deliberately knows nothing about the MAC or the runner: it
//! defines the plan vocabulary, validates it against a topology, and
//! provides the Gilbert–Elliott loss process. The wiring lives at the
//! injection sites (`phy::medium`, `mac::dcf`, `net::runner`), each of
//! which is covered by the `fault-path-unwrap` lint rule: fault paths
//! must degrade via `Result`/`Option`, never panic.

#![forbid(unsafe_code)]

mod gilbert;
mod plan;

pub use gilbert::GilbertElliott;
pub use plan::{BurstLoss, ClockDrift, Corruption, CrashEvent, FaultError, FaultPlan};
