//! The declarative fault plan and its validation.
//!
//! A plan is data, not behaviour: every injector config here is a plain
//! value whose `Debug` rendering is stable, because the simulation's
//! config digest incorporates it (a faulted run must never share a cache
//! entry with a clean one). Validation happens once, at config-build
//! time, so a malformed plan is a clear error instead of a mid-run
//! panic.

use std::fmt;

use airguard_sim::SimDuration;

/// A plan describing every fault injected into one run.
///
/// All components are optional; [`FaultPlan::normalized`] collapses a
/// plan whose components are all no-ops into `None`, so a zero-intensity
/// plan is *indistinguishable* from no plan at all — same config digest,
/// same RNG consumption, byte-identical trace.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Gilbert–Elliott burst loss applied per (transmission, listener).
    pub burst_loss: Option<BurstLoss>,
    /// Node crash/restart events.
    pub churn: Vec<CrashEvent>,
    /// Control-frame field corruption.
    pub corruption: Option<Corruption>,
    /// Receiver clock drift scaling idle-slot readings.
    pub clock_drift: Option<ClockDrift>,
}

impl FaultPlan {
    /// True when no component would ever inject anything.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.burst_loss.as_ref().is_none_or(BurstLoss::is_noop)
            && self.churn.is_empty()
            && self.corruption.as_ref().is_none_or(Corruption::is_noop)
            && self.clock_drift.as_ref().is_none_or(ClockDrift::is_noop)
    }

    /// Drops no-op components; returns `None` when nothing is left.
    ///
    /// This is what guarantees the zero-intensity byte-identity
    /// property: callers store the normalized form, so a plan of all
    /// zeros never reaches an injection site.
    #[must_use]
    pub fn normalized(mut self) -> Option<FaultPlan> {
        if self.burst_loss.as_ref().is_some_and(BurstLoss::is_noop) {
            self.burst_loss = None;
        }
        if self.corruption.as_ref().is_some_and(Corruption::is_noop) {
            self.corruption = None;
        }
        if self.clock_drift.as_ref().is_some_and(ClockDrift::is_noop) {
            self.clock_drift = None;
        }
        if self.is_noop() {
            None
        } else {
            Some(self)
        }
    }

    /// Checks the plan against a topology of `node_count` nodes.
    ///
    /// # Errors
    ///
    /// Returns the first impossibility found: a probability outside
    /// `[0, 1]`, a crash or drift target not in the topology, a
    /// corruption probability with no magnitude, or a drift that would
    /// run a clock backwards.
    pub fn validate(&self, node_count: usize) -> Result<(), FaultError> {
        if let Some(loss) = &self.burst_loss {
            loss.validate()?;
        }
        for crash in &self.churn {
            crash.validate(node_count)?;
        }
        if let Some(corruption) = &self.corruption {
            corruption.validate()?;
        }
        if let Some(drift) = &self.clock_drift {
            drift.validate(node_count)?;
        }
        Ok(())
    }
}

/// Gilbert–Elliott burst loss: a two-state Markov channel per listener.
///
/// Each delivery sample first advances the listener's good/bad state
/// (`p_enter`, `p_exit`), then drops the frame with the state's loss
/// probability. `loss_bad` near 1 with small `p_exit` produces the
/// correlated loss bursts the model is named for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstLoss {
    /// P(good → bad) per delivery sample.
    pub p_enter: f64,
    /// P(bad → good) per delivery sample.
    pub p_exit: f64,
    /// Frame loss probability in the good state.
    pub loss_good: f64,
    /// Frame loss probability in the bad state.
    pub loss_bad: f64,
}

impl BurstLoss {
    /// True when no frame can ever be dropped.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        // lint:allow(float-eq) — exact-zero test: only a literal 0.0 probability makes the injector inert
        self.loss_good == 0.0 && (self.loss_bad == 0.0 || self.p_enter == 0.0)
    }

    fn validate(&self) -> Result<(), FaultError> {
        for (name, p) in [
            ("burst_loss.p_enter", self.p_enter),
            ("burst_loss.p_exit", self.p_exit),
            ("burst_loss.loss_good", self.loss_good),
            ("burst_loss.loss_bad", self.loss_bad),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultError::ProbabilityOutOfRange { name, value: p });
            }
        }
        Ok(())
    }
}

/// One node crash: the node goes deaf and mute at `at`, loses its MAC
/// state, and comes back `down_for` later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The crashing node (dense topology index).
    pub node: u32,
    /// Crash instant, as an offset from the start of the run.
    pub at: SimDuration,
    /// How long the node stays down.
    pub down_for: SimDuration,
    /// Whether the node's diagnosis state (monitor/observer tables)
    /// survives the crash — "battery-backed" detection state versus a
    /// full cold boot.
    pub preserve_monitor: bool,
}

impl CrashEvent {
    fn validate(&self, node_count: usize) -> Result<(), FaultError> {
        if self.node as usize >= node_count {
            return Err(FaultError::NodeOutOfRange {
                what: "churn crash",
                node: self.node,
                node_count,
            });
        }
        Ok(())
    }
}

/// Corruption of the modified protocol's control-frame fields.
///
/// Each receivable delivery of a frame carrying the field is corrupted
/// independently: the CTS/ACK-carried assigned backoff is shifted by a
/// uniform nonzero delta in `±backoff_max_delta` slots (clamped at
/// zero), and the RTS/DATA `attempt` field by `±attempt_max_delta`
/// (clamped to `1..`, since 0 means "field absent").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corruption {
    /// Per-delivery probability of corrupting a carried assigned backoff.
    pub backoff_prob: f64,
    /// Maximum absolute shift applied to the assigned backoff, in slots.
    pub backoff_max_delta: u16,
    /// Per-delivery probability of corrupting a carried attempt number.
    pub attempt_prob: f64,
    /// Maximum absolute shift applied to the attempt number.
    pub attempt_max_delta: u8,
}

impl Corruption {
    /// True when no field can ever be corrupted.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        // lint:allow(float-eq) — exact-zero test: only a literal 0.0 probability makes the injector inert
        self.backoff_prob == 0.0 && self.attempt_prob == 0.0
    }

    fn validate(&self) -> Result<(), FaultError> {
        for (name, p) in [
            ("corruption.backoff_prob", self.backoff_prob),
            ("corruption.attempt_prob", self.attempt_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(FaultError::ProbabilityOutOfRange { name, value: p });
            }
        }
        if self.backoff_prob > 0.0 && self.backoff_max_delta == 0 {
            return Err(FaultError::CorruptionWithoutMagnitude {
                field: "assigned backoff",
            });
        }
        if self.attempt_prob > 0.0 && self.attempt_max_delta == 0 {
            return Err(FaultError::CorruptionWithoutMagnitude { field: "attempt" });
        }
        Ok(())
    }
}

/// Clock drift: affected nodes misread their idle-slot counters.
///
/// A monitor whose clock runs fast counts more idle slots than really
/// elapsed and accuses honest senders of shrinking their backoff — the
/// false-positive mechanism this injector probes. The reading is scaled
/// by `(1000 + per_mille) / 1000` with round-to-nearest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDrift {
    /// Signed drift in parts per thousand (`+50` = 5 % fast clock).
    pub per_mille: i32,
    /// Affected nodes (dense topology indices); empty means every node.
    pub nodes: Vec<u32>,
}

impl ClockDrift {
    /// True when the drift leaves every reading unchanged.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.per_mille == 0
    }

    fn validate(&self, node_count: usize) -> Result<(), FaultError> {
        if self.per_mille <= -1000 {
            return Err(FaultError::DriftTooNegative {
                per_mille: self.per_mille,
            });
        }
        for &node in &self.nodes {
            if node as usize >= node_count {
                return Err(FaultError::NodeOutOfRange {
                    what: "clock drift",
                    node,
                    node_count,
                });
            }
        }
        Ok(())
    }
}

/// Why a [`FaultPlan`] cannot run against a given topology.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A probability parameter is outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Dotted parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A fault targets a node the topology does not contain.
    NodeOutOfRange {
        /// Which injector named the node.
        what: &'static str,
        /// The offending node index.
        node: u32,
        /// Nodes in the topology.
        node_count: usize,
    },
    /// A corruption probability is positive but its magnitude is zero.
    CorruptionWithoutMagnitude {
        /// Which field lacks a magnitude.
        field: &'static str,
    },
    /// A drift at or below -1000 per mille would stop or reverse the clock.
    DriftTooNegative {
        /// The offending drift.
        per_mille: i32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::ProbabilityOutOfRange { name, value } => {
                write!(f, "fault plan: {name} = {value} is outside [0, 1]")
            }
            FaultError::NodeOutOfRange {
                what,
                node,
                node_count,
            } => write!(
                f,
                "fault plan: {what} targets node {node}, but the topology has only {node_count} nodes (0..{})",
                node_count.saturating_sub(1)
            ),
            FaultError::CorruptionWithoutMagnitude { field } => write!(
                f,
                "fault plan: {field} corruption probability is positive but its max delta is 0"
            ),
            FaultError::DriftTooNegative { per_mille } => write!(
                f,
                "fault plan: clock drift {per_mille} per mille would stop or reverse the clock (must be > -1000)"
            ),
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_plan() -> FaultPlan {
        FaultPlan {
            burst_loss: Some(BurstLoss {
                p_enter: 0.05,
                p_exit: 0.2,
                loss_good: 0.01,
                loss_bad: 0.8,
            }),
            churn: vec![CrashEvent {
                node: 2,
                at: SimDuration::from_secs(1),
                down_for: SimDuration::from_millis(500),
                preserve_monitor: false,
            }],
            corruption: Some(Corruption {
                backoff_prob: 0.1,
                backoff_max_delta: 8,
                attempt_prob: 0.1,
                attempt_max_delta: 2,
            }),
            clock_drift: Some(ClockDrift {
                per_mille: 50,
                nodes: vec![0],
            }),
        }
    }

    #[test]
    fn full_plan_validates() {
        full_plan().validate(4).unwrap();
    }

    #[test]
    fn empty_plan_is_noop_and_normalizes_away() {
        assert!(FaultPlan::default().is_noop());
        assert_eq!(FaultPlan::default().normalized(), None);
    }

    #[test]
    fn zero_intensity_components_normalize_away() {
        let plan = FaultPlan {
            burst_loss: Some(BurstLoss {
                p_enter: 0.0,
                p_exit: 1.0,
                loss_good: 0.0,
                loss_bad: 0.9,
            }),
            churn: Vec::new(),
            corruption: Some(Corruption {
                backoff_prob: 0.0,
                backoff_max_delta: 8,
                attempt_prob: 0.0,
                attempt_max_delta: 1,
            }),
            clock_drift: Some(ClockDrift {
                per_mille: 0,
                nodes: Vec::new(),
            }),
        };
        assert!(plan.is_noop());
        assert_eq!(plan.normalized(), None);
    }

    #[test]
    fn normalization_keeps_live_components() {
        let mut plan = full_plan();
        plan.corruption = Some(Corruption {
            backoff_prob: 0.0,
            backoff_max_delta: 8,
            attempt_prob: 0.0,
            attempt_max_delta: 1,
        });
        let kept = plan.normalized().unwrap();
        assert!(kept.corruption.is_none(), "dead component dropped");
        assert!(kept.burst_loss.is_some() && !kept.churn.is_empty());
    }

    #[test]
    fn probabilities_outside_unit_interval_are_rejected() {
        let mut plan = full_plan();
        plan.burst_loss = Some(BurstLoss {
            p_enter: 1.5,
            p_exit: 0.2,
            loss_good: 0.0,
            loss_bad: 0.5,
        });
        let err = plan.validate(4).unwrap_err();
        assert!(matches!(err, FaultError::ProbabilityOutOfRange { name, .. }
                if name == "burst_loss.p_enter"));
        assert!(err.to_string().contains("outside [0, 1]"), "{err}");
    }

    #[test]
    fn crash_of_missing_node_is_rejected() {
        let plan = full_plan();
        let err = plan.validate(2).unwrap_err();
        assert!(matches!(err, FaultError::NodeOutOfRange { node: 2, .. }));
        assert!(err.to_string().contains("only 2 nodes"), "{err}");
    }

    #[test]
    fn corruption_without_magnitude_is_rejected() {
        let mut plan = full_plan();
        plan.corruption = Some(Corruption {
            backoff_prob: 0.5,
            backoff_max_delta: 0,
            attempt_prob: 0.0,
            attempt_max_delta: 0,
        });
        let err = plan.validate(4).unwrap_err();
        assert!(matches!(
            err,
            FaultError::CorruptionWithoutMagnitude {
                field: "assigned backoff"
            }
        ));
    }

    #[test]
    fn reversed_clock_is_rejected() {
        let mut plan = full_plan();
        plan.clock_drift = Some(ClockDrift {
            per_mille: -1000,
            nodes: Vec::new(),
        });
        assert!(matches!(
            plan.validate(4).unwrap_err(),
            FaultError::DriftTooNegative { per_mille: -1000 }
        ));
    }

    #[test]
    fn drift_of_missing_node_is_rejected() {
        let mut plan = full_plan();
        plan.clock_drift = Some(ClockDrift {
            per_mille: 10,
            nodes: vec![9],
        });
        assert!(matches!(
            plan.validate(4).unwrap_err(),
            FaultError::NodeOutOfRange {
                what: "clock drift",
                node: 9,
                ..
            }
        ));
    }
}
