//! Fixture: a justified frame clone off the steady-state path.
pub fn snapshot(frame: &Frame) -> Frame {
    frame.clone() // lint:allow(hot-path-clone) — one-shot diagnostic snapshot, not per-delivery
}
