//! Fixture: a properly justified allow suppresses the finding.
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // lint:allow(panic-unwrap) — callers are internal and pass non-empty slices
}
