//! Fixture: bounded queues with explicit capacity, plus one justified
//! exception through the allow escape hatch.

use std::collections::VecDeque;
use std::sync::mpsc;

pub fn start() -> mpsc::Receiver<u64> {
    let (tx, rx) = mpsc::sync_channel(64);
    tx.send(1).ok();
    rx
}

pub fn staging() -> VecDeque<u64> {
    let mut q = VecDeque::with_capacity(8);
    q.push_back(1);
    q
}

pub fn scratch() -> VecDeque<u64> {
    VecDeque::new() // lint:allow(bounded-channel) — drained before return, bounded by one batch
}
