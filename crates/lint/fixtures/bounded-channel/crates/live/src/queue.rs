//! Fixture: capacity-less queues in a streaming crate.

use std::collections::VecDeque;
use std::sync::mpsc;

pub fn start() -> mpsc::Receiver<u64> {
    let (tx, rx) = mpsc::channel();
    tx.send(1).ok();
    rx
}

pub fn staging() -> VecDeque<u64> {
    VecDeque::new()
}
