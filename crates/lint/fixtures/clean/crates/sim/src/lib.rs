//! Fixture: fully compliant simulation-crate code.
use std::collections::BTreeMap;

pub fn histogram(values: &[u32]) -> BTreeMap<u32, u32> {
    let mut out = BTreeMap::new();
    for &v in values {
        *out.entry(v).or_insert(0) += 1;
    }
    out
}
