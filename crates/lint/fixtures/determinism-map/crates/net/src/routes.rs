//! Fixture: hash-ordered container inside a simulation crate.
use std::collections::HashMap;

pub fn routes() -> HashMap<u32, u32> {
    HashMap::new()
}
