//! Fixture: ambient randomness inside a simulation crate.
pub fn jitter() -> u32 {
    let mut rng = rand::thread_rng();
    let _ = &mut rng;
    rand::random()
}
