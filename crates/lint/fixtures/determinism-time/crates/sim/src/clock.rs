//! Fixture: wall-clock use inside a simulation crate.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
