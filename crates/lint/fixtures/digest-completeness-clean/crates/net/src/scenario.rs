//! Fixture: every config field is consumed by the identity function.

pub struct ScenarioConfig {
    pub nodes: u32,
    pub offered_load: u64,
    pub selfish_fraction: u64,
}

impl ScenarioConfig {
    pub fn identity(&self) -> String {
        format!(
            "nodes={};load={};selfish={}",
            self.nodes, self.offered_load, self.selfish_fraction
        )
    }
}
