//! Fixture: a detector gains a tuning knob that never reaches its
//! identity string, so two differently-tuned sweeps alias one cache
//! cell.

pub struct SequentialConfig {
    pub drift: f64,
    pub threshold: f64,
    pub warmup_packets: u32,
}

impl SequentialConfig {
    pub fn identity(&self) -> String {
        format!("cusum:drift={};threshold={}", self.drift, self.threshold)
    }
}

pub struct CwEstimationConfig {
    pub min_samples: u64,
    pub fraction: f64,
}

impl CwEstimationConfig {
    pub fn identity(&self) -> String {
        format!(
            "cw:min_samples={};fraction={}",
            self.min_samples, self.fraction
        )
    }
}
