//! Fixture: a config struct whose newest field never reaches the
//! digest.

pub struct ScenarioConfig {
    pub nodes: u32,
    pub offered_load: u64,
    pub selfish_fraction: u64,
}

impl ScenarioConfig {
    pub fn identity(&self) -> String {
        format!("nodes={};load={}", self.nodes, self.offered_load)
    }
}
