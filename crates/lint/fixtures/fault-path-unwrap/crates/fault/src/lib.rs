// Fixture: unwrap on a fault-injection path. The generic panic rule is
// allowed on the line so only fault-path-unwrap fires, proving the rule
// carries its own ID and cannot be silenced by a panic-family allow.
pub fn next_loss(plan: &Plan) -> f64 {
    plan.burst_loss.unwrap().loss_good // lint:allow(panic-unwrap) — fixture isolates the fault-path rule
}
