//! Fixture: exact equality against a float literal.
pub fn is_half(x: f64) -> bool {
    x == 0.5
}
