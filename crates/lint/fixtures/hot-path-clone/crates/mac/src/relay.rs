//! Fixture: deep frame copy in hot-path library code.
pub fn relay(frame: &Frame) -> Frame {
    frame.clone()
}
