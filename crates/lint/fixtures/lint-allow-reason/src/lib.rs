//! Fixture: allow directive with no justification.
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap() // lint:allow(panic-unwrap)
}
