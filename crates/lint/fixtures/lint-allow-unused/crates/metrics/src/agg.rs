//! Fixture: a stale allow directive suppressing nothing.

pub fn total(values: &[u64]) -> u64 {
    // lint:allow(panic-unwrap) — left behind after the unwrap was refactored away
    values.iter().sum()
}
