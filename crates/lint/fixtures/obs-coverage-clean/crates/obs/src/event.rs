//! Fixture: every variant is mapped and emitted.

pub enum ObsEvent {
    TxStart { node: u32 },
    Collision { victim: u32 },
}

impl ObsEvent {
    pub fn category(&self) -> u32 {
        match self {
            ObsEvent::TxStart { .. } => 1,
            ObsEvent::Collision { .. } => 2,
        }
    }
}
