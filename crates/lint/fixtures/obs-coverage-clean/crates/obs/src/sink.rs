//! Fixture: real emission sites for every variant.

use crate::event::ObsEvent;

pub fn emit_tx(node: u32) -> ObsEvent {
    ObsEvent::TxStart { node }
}

pub fn emit_collision(victim: u32) -> ObsEvent {
    ObsEvent::Collision { victim }
}
