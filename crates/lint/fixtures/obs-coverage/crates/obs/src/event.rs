//! Fixture: one variant missing from the category map, another never
//! emitted outside tests.

pub enum ObsEvent {
    TxStart { node: u32 },
    Collision { victim: u32 },
    Orphan { detail: u64 },
}

impl ObsEvent {
    pub fn category(&self) -> u32 {
        match self {
            ObsEvent::TxStart { .. } => 1,
            ObsEvent::Collision { .. } => 2,
            _ => 0,
        }
    }
}
