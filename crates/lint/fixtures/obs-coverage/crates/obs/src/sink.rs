//! Fixture: real emission sites for the mapped variants only.

use crate::event::ObsEvent;

pub fn emit_tx(node: u32) -> ObsEvent {
    ObsEvent::TxStart { node }
}

pub fn emit_collision(victim: u32) -> ObsEvent {
    ObsEvent::Collision { victim }
}

#[cfg(test)]
mod tests {
    use super::ObsEvent;

    #[test]
    fn orphan_is_only_built_in_tests() {
        let _ = ObsEvent::Orphan { detail: 7 };
    }
}
