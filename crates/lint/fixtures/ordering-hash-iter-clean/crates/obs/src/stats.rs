//! Fixture: an order-stable container draws no findings.

use std::collections::BTreeMap;

pub struct Stats {
    pub per_node: BTreeMap<u32, u64>,
}
