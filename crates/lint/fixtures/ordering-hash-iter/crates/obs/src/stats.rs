//! Fixture: the hash-typed field lives outside the ordering scope.

use std::collections::HashMap;

pub struct Stats {
    pub per_node: HashMap<u32, u64>,
}
