//! Fixture: hash-order iteration inside an ordering-scoped crate.

use crate::stats::Stats;

pub fn summarize(stats: &Stats) -> u64 {
    let mut total = 0;
    for count in stats.per_node.values() {
        total += count;
    }
    total
}
