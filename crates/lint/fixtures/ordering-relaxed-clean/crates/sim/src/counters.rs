//! Fixture: a designated counter module may use relaxed atomics.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bump(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}
