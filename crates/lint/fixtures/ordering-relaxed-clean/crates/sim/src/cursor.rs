//! Fixture: sequentially-consistent atomics are always fine.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn next(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::SeqCst)
}
