//! Fixture: a relaxed atomic outside the designated counter modules.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn next(cursor: &AtomicUsize) -> usize {
    cursor.fetch_add(1, Ordering::Relaxed)
}
