//! Fixture: expect in library code.
pub fn parse(s: &str) -> u32 {
    s.parse().expect("caller passes digits")
}
