//! Fixture: panic-family macro in library code.
pub fn pick(n: u8) -> u8 {
    match n {
        0 => 1,
        _ => unreachable!(),
    }
}
