//! Fixture: unwrap in library code.
pub fn first(xs: &[u64]) -> u64 {
    *xs.first().unwrap()
}
