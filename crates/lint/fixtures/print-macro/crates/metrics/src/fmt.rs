pub fn show(total: u64) {
    println!("total = {total}");
}
