fn main() {
    println!("a CLI owns its stdout; the rule must not fire here");
}
