//! Fixture: raw integer arithmetic on a microsecond identifier.
pub fn deadline(now_us: u64, difs: u64) -> u64 {
    now_us + difs * 3
}
