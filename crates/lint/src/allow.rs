//! The `lint:allow` escape hatch.
//!
//! A violation is suppressed by a line comment of the form
//!
//! ```text
//! some_code(); // lint:allow(panic-expect) — reason the invariant holds
//! // lint:allow(determinism-map) — applies to the next line
//! ```
//!
//! The directive must name a known rule and *must* carry a reason (at
//! least a few words after a `—`, `-`, or `:` separator); a reasonless
//! directive is itself reported as `lint-allow-reason`. A trailing
//! directive covers its own line; a comment-only directive line covers
//! the following line as well.
//!
//! Directives track whether they actually suppressed a finding: the
//! engine reports the stale ones as `lint-allow-unused`, so escape
//! hatches are removed when the code they excused is gone.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::Lexed;
use crate::rules::cfg_test_spans;
use std::collections::BTreeSet;

/// One well-formed `lint:allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// Line of the directive comment itself.
    pub line: u32,
    pub col: u32,
    pub rule: Rule,
    /// Source lines the directive suppresses findings on.
    pub covered: Vec<u32>,
    /// Directives inside `#[cfg(test)]` items are never reported as
    /// unused — no rule runs there, so they cannot be consumed.
    pub exempt: bool,
    /// Whether the directive suppressed at least one finding this run.
    pub used: bool,
}

/// Parsed allow directives for one file.
#[derive(Debug, Default, Clone)]
pub struct Allows {
    pub directives: Vec<Directive>,
    /// Malformed directives to report.
    pub diagnostics: Vec<Diagnostic>,
}

impl Allows {
    /// Whether `rule` is suppressed at `line`, without consuming.
    #[must_use]
    pub fn covers(&self, line: u32, rule: Rule) -> bool {
        self.directives
            .iter()
            .any(|d| d.rule == rule && d.covered.contains(&line))
    }

    /// Marks every directive covering `(line, rule)` as used; returns
    /// whether any did (i.e. whether the finding is suppressed).
    pub fn consume(&mut self, line: u32, rule: Rule) -> bool {
        let mut hit = false;
        for d in &mut self.directives {
            if d.rule == rule && d.covered.contains(&line) {
                d.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Drops suppressed diagnostics, marking the consuming directives
    /// used. Meta rules about the directives themselves pass through.
    #[must_use]
    pub fn apply(&mut self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| !d.rule.suppressible() || !self.consume(d.line, d.rule))
            .collect()
    }

    /// Diagnostics for directives that suppressed nothing. Call after
    /// every rule pass has had its chance to consume them.
    #[must_use]
    pub fn unused(&self, path: &str) -> Vec<Diagnostic> {
        self.directives
            .iter()
            .filter(|d| !d.used && !d.exempt)
            .map(|d| Diagnostic {
                path: path.to_owned(),
                line: d.line,
                col: d.col,
                rule: Rule::AllowUnused,
                message: format!(
                    "lint:allow({}) suppresses nothing; remove the stale directive",
                    d.rule
                ),
            })
            .collect()
    }
}

/// Minimum length of a reason, so `— x` cannot pass as justification.
const MIN_REASON_LEN: usize = 8;

/// Scans a lexed file for `lint:allow` directives.
#[must_use]
pub fn scan(path: &str, lexed: &Lexed) -> Allows {
    let mut allows = Allows::default();
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let test_lines: Vec<(u32, u32)> = cfg_test_spans(&lexed.tokens)
        .into_iter()
        .map(|(a, b)| (lexed.tokens[a].line, lexed.tokens[b].line))
        .collect();

    for comment in &lexed.comments {
        let Some((rule_text, rest)) = parse_directive(&comment.text) else {
            continue;
        };
        let Some(rule) = Rule::from_id(rule_text) else {
            allows.diagnostics.push(Diagnostic {
                path: path.to_owned(),
                line: comment.line,
                col: comment.col,
                rule: Rule::AllowReason,
                message: format!("lint:allow names unknown rule `{rule_text}`"),
            });
            continue;
        };
        if !has_reason(rest) {
            allows.diagnostics.push(Diagnostic {
                path: path.to_owned(),
                line: comment.line,
                col: comment.col,
                rule: Rule::AllowReason,
                message: format!(
                    "lint:allow({rule}) must state a reason: `// lint:allow({rule}) — <why the rule is safe to break here>`"
                ),
            });
            continue;
        }
        let mut covered = vec![comment.line];
        // A directive on a comment-only line also covers the next line
        // bearing code.
        if !token_lines.contains(&comment.line) {
            let next = lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line);
            if let Some(next) = next {
                covered.push(next);
            }
        }
        let exempt = test_lines
            .iter()
            .any(|&(a, b)| comment.line >= a && comment.line <= b);
        allows.directives.push(Directive {
            line: comment.line,
            col: comment.col,
            rule,
            covered,
            exempt,
            used: false,
        });
    }
    allows
}

/// Extracts `(rule-id, rest-of-comment)` from a comment body if it is a
/// directive.
fn parse_directive(text: &str) -> Option<(&str, &str)> {
    let trimmed = text.trim_start_matches(['/', '!']).trim_start();
    let body = trimmed.strip_prefix("lint:allow(")?;
    let close = body.find(')')?;
    Some((body[..close].trim(), &body[close + 1..]))
}

/// Whether the text after the closing paren constitutes a reason.
fn has_reason(rest: &str) -> bool {
    let reason = rest
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':', ' '])
        .trim();
    reason.len() >= MIN_REASON_LEN
}

#[cfg(test)]
mod tests {
    use super::scan;
    use crate::diagnostics::{Diagnostic, Rule};
    use crate::lexer::lex;

    fn diag(line: u32, rule: Rule) -> Diagnostic {
        Diagnostic {
            path: "f.rs".into(),
            line,
            col: 1,
            rule,
            message: "x".into(),
        }
    }

    #[test]
    fn trailing_directive_covers_its_line() {
        let lexed = lex(
            "let x = m.get(&k).unwrap(); // lint:allow(panic-unwrap) — key inserted two lines up\n",
        );
        let allows = scan("f.rs", &lexed);
        assert!(allows.covers(1, Rule::PanicUnwrap));
        assert!(!allows.covers(1, Rule::PanicExpect));
        assert!(allows.diagnostics.is_empty());
    }

    #[test]
    fn standalone_directive_covers_next_code_line() {
        let src = "// lint:allow(determinism-map) — sorted before iteration below\nuse std::collections::HashMap;\n";
        let allows = scan("f.rs", &lex(src));
        assert!(allows.covers(1, Rule::DeterminismMap));
        assert!(allows.covers(2, Rule::DeterminismMap));
    }

    #[test]
    fn reasonless_directive_is_reported_and_grants_nothing() {
        let allows = scan("f.rs", &lex("x(); // lint:allow(panic-unwrap)\n"));
        assert!(!allows.covers(1, Rule::PanicUnwrap));
        assert!(allows.directives.is_empty());
        assert_eq!(allows.diagnostics.len(), 1);
        assert_eq!(allows.diagnostics[0].rule, Rule::AllowReason);
    }

    #[test]
    fn short_reason_is_not_a_reason() {
        let allows = scan("f.rs", &lex("x(); // lint:allow(panic-unwrap) — ok\n"));
        assert!(!allows.covers(1, Rule::PanicUnwrap));
        assert_eq!(allows.diagnostics.len(), 1);
    }

    #[test]
    fn unknown_rule_is_reported() {
        let allows = scan(
            "f.rs",
            &lex("x(); // lint:allow(no-such) — whatever reason\n"),
        );
        assert_eq!(allows.diagnostics.len(), 1);
        assert!(allows.diagnostics[0].message.contains("unknown rule"));
    }

    #[test]
    fn apply_consumes_and_unused_reports_the_rest() {
        let src = "a(); // lint:allow(panic-unwrap) — consumed by the finding below\n\
                   b(); // lint:allow(panic-expect) — nothing here ever fires\n";
        let mut allows = scan("f.rs", &lex(src));
        let kept = allows.apply(vec![diag(1, Rule::PanicUnwrap)]);
        assert!(kept.is_empty());
        let unused = allows.unused("f.rs");
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, Rule::AllowUnused);
        assert_eq!(unused[0].line, 2);
        assert!(unused[0].message.contains("panic-expect"));
    }

    #[test]
    fn meta_rules_pass_through_apply() {
        let src = "x(); // lint:allow(lint-allow-unused) — trying to silence the silencer\n";
        let mut allows = scan("f.rs", &lex(src));
        let kept = allows.apply(vec![diag(1, Rule::AllowUnused)]);
        assert_eq!(kept.len(), 1, "meta rules cannot be allowed away");
        // And the directive that tried is itself unused.
        assert_eq!(allows.unused("f.rs").len(), 1);
    }

    #[test]
    fn directives_inside_cfg_test_are_exempt_from_unused() {
        let src = "#[cfg(test)]\nmod tests {\n    // lint:allow(panic-unwrap) — tests may unwrap anyway\n    fn f() { x.unwrap(); }\n}\n";
        let allows = scan("f.rs", &lex(src));
        assert_eq!(allows.directives.len(), 1);
        assert!(allows.directives[0].exempt);
        assert!(allows.unused("f.rs").is_empty());
    }
}
