//! The `lint:allow` escape hatch.
//!
//! A violation is suppressed by a line comment of the form
//!
//! ```text
//! some_code(); // lint:allow(panic-expect) — reason the invariant holds
//! // lint:allow(determinism-map) — applies to the next line
//! ```
//!
//! The directive must name a known rule and *must* carry a reason (at
//! least a few words after a `—`, `-`, or `:` separator); a reasonless
//! directive is itself reported as `lint-allow-reason`. A trailing
//! directive covers its own line; a comment-only directive line covers
//! the following line as well.

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::Lexed;
use std::collections::BTreeSet;

/// Parsed allow directives for one file.
#[derive(Debug, Default)]
pub struct Allows {
    /// `(line, rule)` pairs that are suppressed.
    granted: BTreeSet<(u32, Rule)>,
    /// Malformed directives to report.
    pub diagnostics: Vec<Diagnostic>,
}

impl Allows {
    /// Whether `rule` is suppressed at `line`.
    #[must_use]
    pub fn covers(&self, line: u32, rule: Rule) -> bool {
        self.granted.contains(&(line, rule))
    }
}

/// Minimum length of a reason, so `— x` cannot pass as justification.
const MIN_REASON_LEN: usize = 8;

/// Scans a lexed file for `lint:allow` directives.
#[must_use]
pub fn scan(path: &str, lexed: &Lexed) -> Allows {
    let mut allows = Allows::default();
    let token_lines: BTreeSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();

    for comment in &lexed.comments {
        let Some((rule_text, rest)) = parse_directive(&comment.text) else {
            continue;
        };
        let Some(rule) = Rule::from_id(rule_text) else {
            allows.diagnostics.push(Diagnostic {
                path: path.to_owned(),
                line: comment.line,
                col: comment.col,
                rule: Rule::AllowReason,
                message: format!("lint:allow names unknown rule `{rule_text}`"),
            });
            continue;
        };
        if !has_reason(rest) {
            allows.diagnostics.push(Diagnostic {
                path: path.to_owned(),
                line: comment.line,
                col: comment.col,
                rule: Rule::AllowReason,
                message: format!(
                    "lint:allow({rule}) must state a reason: `// lint:allow({rule}) — <why the rule is safe to break here>`"
                ),
            });
            continue;
        }
        allows.granted.insert((comment.line, rule));
        // A directive on a comment-only line also covers the next line
        // bearing code.
        if !token_lines.contains(&comment.line) {
            let next = lexed
                .tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > comment.line);
            if let Some(next) = next {
                allows.granted.insert((next, rule));
            }
        }
    }
    allows
}

/// Extracts `(rule-id, rest-of-comment)` from a comment body if it is a
/// directive.
fn parse_directive(text: &str) -> Option<(&str, &str)> {
    let trimmed = text.trim_start_matches(['/', '!']).trim_start();
    let body = trimmed.strip_prefix("lint:allow(")?;
    let close = body.find(')')?;
    Some((body[..close].trim(), &body[close + 1..]))
}

/// Whether the text after the closing paren constitutes a reason.
fn has_reason(rest: &str) -> bool {
    let reason = rest
        .trim_start()
        .trim_start_matches(['—', '–', '-', ':', ' '])
        .trim();
    reason.len() >= MIN_REASON_LEN
}

#[cfg(test)]
mod tests {
    use super::scan;
    use crate::diagnostics::Rule;
    use crate::lexer::lex;

    #[test]
    fn trailing_directive_covers_its_line() {
        let lexed = lex(
            "let x = m.get(&k).unwrap(); // lint:allow(panic-unwrap) — key inserted two lines up\n",
        );
        let allows = scan("f.rs", &lexed);
        assert!(allows.covers(1, Rule::PanicUnwrap));
        assert!(!allows.covers(1, Rule::PanicExpect));
        assert!(allows.diagnostics.is_empty());
    }

    #[test]
    fn standalone_directive_covers_next_code_line() {
        let src = "// lint:allow(determinism-map) — sorted before iteration below\nuse std::collections::HashMap;\n";
        let allows = scan("f.rs", &lex(src));
        assert!(allows.covers(1, Rule::DeterminismMap));
        assert!(allows.covers(2, Rule::DeterminismMap));
    }

    #[test]
    fn reasonless_directive_is_reported_and_grants_nothing() {
        let allows = scan("f.rs", &lex("x(); // lint:allow(panic-unwrap)\n"));
        assert!(!allows.covers(1, Rule::PanicUnwrap));
        assert_eq!(allows.diagnostics.len(), 1);
        assert_eq!(allows.diagnostics[0].rule, Rule::AllowReason);
    }

    #[test]
    fn short_reason_is_not_a_reason() {
        let allows = scan("f.rs", &lex("x(); // lint:allow(panic-unwrap) — ok\n"));
        assert!(!allows.covers(1, Rule::PanicUnwrap));
        assert_eq!(allows.diagnostics.len(), 1);
    }

    #[test]
    fn unknown_rule_is_reported() {
        let allows = scan(
            "f.rs",
            &lex("x(); // lint:allow(no-such) — whatever reason\n"),
        );
        assert_eq!(allows.diagnostics.len(), 1);
        assert!(allows.diagnostics[0].message.contains("unknown rule"));
    }
}
