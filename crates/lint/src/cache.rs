//! Incremental analysis cache under `target/lint-cache/`.
//!
//! Pass 1 is pure per file: the summary depends only on the file's bytes
//! and the config. Each summary is persisted as a small line-oriented
//! record keyed by the FNV-1a digest of the source plus a fingerprint of
//! the config and tool version; on the next run an unchanged file skips
//! lexing and parsing entirely. Cache entries are written
//! temp-then-rename so a crashed run never leaves a truncated record,
//! and any parse irregularity on load is treated as a miss — the cache
//! can always be deleted (or `--fix-cache`d) with no behavioral change.

use crate::allow::{Allows, Directive};
use crate::config::LintConfig;
use crate::diagnostics::{Diagnostic, Rule};
use crate::index::FileSummary;
use crate::items::{EnumDef, Field, FileItems, FnDef, IterCall, PathUse, StructDef, Variant};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Bumped whenever the item model, the rules, or this record format
/// change shape; distinct versions never share cache entries.
pub const TOOL_VERSION: &str = "airguard-lint 0.2.0";

const MAGIC: &str = "airguard-lint-cache v1";

/// FNV-1a, 64-bit, rendered as fixed-width hex.
#[must_use]
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// One cache directory bound to a config fingerprint.
pub struct Cache {
    dir: PathBuf,
    fingerprint: String,
}

impl Cache {
    /// Opens (and creates) the cache at `dir` for `cfg`.
    #[must_use]
    pub fn new(dir: PathBuf, cfg: &LintConfig) -> Self {
        let fingerprint = fnv1a_hex(format!("{TOOL_VERSION}\n{cfg:?}").as_bytes());
        Cache { dir, fingerprint }
    }

    /// Deletes every entry (`--fix-cache`).
    pub fn purge(&self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }

    fn entry_path(&self, rel: &str) -> PathBuf {
        self.dir.join(format!("{}.lint", fnv1a_hex(rel.as_bytes())))
    }

    /// Loads the summary for `rel` if the entry matches both the source
    /// digest and the config fingerprint.
    #[must_use]
    pub fn load(&self, rel: &str, source_digest: &str) -> Option<FileSummary> {
        let text = std::fs::read_to_string(self.entry_path(rel)).ok()?;
        parse_entry(&text, rel, source_digest, &self.fingerprint)
    }

    /// Persists `summary` (temp file + rename; failures are ignored — a
    /// read-only target dir degrades to a cold run, not an error).
    pub fn store(&self, summary: &FileSummary, source_digest: &str) {
        if std::fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let text = render_entry(summary, source_digest, &self.fingerprint);
        let path = self.entry_path(&summary.path);
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, text).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }
}

/// Default cache location for a workspace root.
#[must_use]
pub fn default_dir(root: &Path) -> PathBuf {
    root.join("target").join("lint-cache").join("v1")
}

fn render_entry(summary: &FileSummary, source_digest: &str, fingerprint: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{MAGIC}");
    let _ = writeln!(s, "cfg {fingerprint}");
    let _ = writeln!(s, "src {source_digest}");
    let _ = writeln!(s, "path {}", summary.path);
    for st in &summary.items.structs {
        let _ = writeln!(s, "S {} {}", st.line, st.name);
        for f in &st.fields {
            let _ = writeln!(s, "F {} {} {}", f.line, f.col, f.name);
        }
    }
    for en in &summary.items.enums {
        let _ = writeln!(s, "E {} {}", en.line, en.name);
        for v in &en.variants {
            let _ = writeln!(s, "V {} {} {}", v.line, v.col, v.name);
        }
    }
    for f in &summary.items.fns {
        let _ = writeln!(
            s,
            "N {} {} {} {}",
            f.line,
            f.owner.as_deref().unwrap_or("-"),
            f.name,
            f.body_idents.join(",")
        );
    }
    for p in &summary.items.path_uses {
        let _ = writeln!(
            s,
            "P {} {} {} {} {}",
            p.line,
            p.col,
            u8::from(p.construction),
            p.head,
            p.tail
        );
    }
    for c in &summary.items.iter_calls {
        let _ = writeln!(s, "I {} {} {} {}", c.line, c.col, c.recv, c.method);
    }
    for h in &summary.items.hash_typed {
        let _ = writeln!(s, "H {h}");
    }
    for d in &summary.allows.directives {
        let covered: Vec<String> = d.covered.iter().map(u32::to_string).collect();
        let _ = writeln!(
            s,
            "D {} {} {} {} {}",
            d.line,
            d.col,
            d.rule.id(),
            u8::from(d.exempt),
            covered.join(",")
        );
    }
    for d in &summary.allows.diagnostics {
        let _ = writeln!(s, "A {} {} {} {}", d.line, d.col, d.rule.id(), d.message);
    }
    for d in &summary.raw_diagnostics {
        let _ = writeln!(s, "G {} {} {} {}", d.line, d.col, d.rule.id(), d.message);
    }
    s
}

fn parse_entry(
    text: &str,
    rel: &str,
    source_digest: &str,
    fingerprint: &str,
) -> Option<FileSummary> {
    let mut lines = text.lines();
    if lines.next()? != MAGIC {
        return None;
    }
    if lines.next()? != format!("cfg {fingerprint}") {
        return None;
    }
    if lines.next()? != format!("src {source_digest}") {
        return None;
    }
    if lines.next()?.strip_prefix("path ")? != rel {
        return None;
    }

    let mut items = FileItems::default();
    let mut allows = Allows::default();
    let mut raw_diagnostics = Vec::new();
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "S" => {
                let (line_no, name) = rest.split_once(' ')?;
                items.structs.push(StructDef {
                    name: name.to_owned(),
                    line: line_no.parse().ok()?,
                    fields: Vec::new(),
                });
            }
            "F" => {
                let mut parts = rest.splitn(3, ' ');
                let field = Field {
                    line: parts.next()?.parse().ok()?,
                    col: parts.next()?.parse().ok()?,
                    name: parts.next()?.to_owned(),
                };
                items.structs.last_mut()?.fields.push(field);
            }
            "E" => {
                let (line_no, name) = rest.split_once(' ')?;
                items.enums.push(EnumDef {
                    name: name.to_owned(),
                    line: line_no.parse().ok()?,
                    variants: Vec::new(),
                });
            }
            "V" => {
                let mut parts = rest.splitn(3, ' ');
                let variant = Variant {
                    line: parts.next()?.parse().ok()?,
                    col: parts.next()?.parse().ok()?,
                    name: parts.next()?.to_owned(),
                };
                items.enums.last_mut()?.variants.push(variant);
            }
            "N" => {
                let mut parts = rest.splitn(4, ' ');
                let line_no = parts.next()?.parse().ok()?;
                let owner = match parts.next()? {
                    "-" => None,
                    o => Some(o.to_owned()),
                };
                let name = parts.next()?.to_owned();
                let body_idents = match parts.next() {
                    Some("") | None => Vec::new(),
                    Some(ids) => ids.split(',').map(str::to_owned).collect(),
                };
                items.fns.push(FnDef {
                    owner,
                    name,
                    line: line_no,
                    body_idents,
                });
            }
            "P" => {
                let mut parts = rest.splitn(5, ' ');
                items.path_uses.push(PathUse {
                    line: parts.next()?.parse().ok()?,
                    col: parts.next()?.parse().ok()?,
                    construction: parts.next()? == "1",
                    head: parts.next()?.to_owned(),
                    tail: parts.next()?.to_owned(),
                });
            }
            "I" => {
                let mut parts = rest.splitn(4, ' ');
                items.iter_calls.push(IterCall {
                    line: parts.next()?.parse().ok()?,
                    col: parts.next()?.parse().ok()?,
                    recv: parts.next()?.to_owned(),
                    method: parts.next()?.to_owned(),
                });
            }
            "H" => items.hash_typed.push(rest.to_owned()),
            "D" => {
                let mut parts = rest.splitn(5, ' ');
                let line_no = parts.next()?.parse().ok()?;
                let col = parts.next()?.parse().ok()?;
                let rule = Rule::from_id(parts.next()?)?;
                let exempt = parts.next()? == "1";
                let covered = parts
                    .next()?
                    .split(',')
                    .map(str::parse)
                    .collect::<Result<Vec<u32>, _>>()
                    .ok()?;
                allows.directives.push(Directive {
                    line: line_no,
                    col,
                    rule,
                    covered,
                    exempt,
                    used: false,
                });
            }
            "A" | "G" => {
                let mut parts = rest.splitn(4, ' ');
                let diag = Diagnostic {
                    path: rel.to_owned(),
                    line: parts.next()?.parse().ok()?,
                    col: parts.next()?.parse().ok()?,
                    rule: Rule::from_id(parts.next()?)?,
                    message: parts.next().unwrap_or_default().to_owned(),
                };
                if tag == "A" {
                    allows.diagnostics.push(diag);
                } else {
                    raw_diagnostics.push(diag);
                }
            }
            _ => return None,
        }
    }
    Some(FileSummary {
        path: rel.to_owned(),
        items,
        raw_diagnostics,
        allows,
    })
}

#[cfg(test)]
mod tests {
    use super::{fnv1a_hex, Cache};
    use crate::allow;
    use crate::config::LintConfig;
    use crate::index::FileSummary;
    use crate::items::parse_items;
    use crate::lexer::lex;
    use crate::rules;

    fn summary(path: &str, src: &str) -> FileSummary {
        let lexed = lex(src);
        let cfg = LintConfig::default();
        FileSummary {
            path: path.to_owned(),
            items: parse_items(&lexed.tokens),
            raw_diagnostics: rules::check(path, &lexed.tokens, crate::rules_for(path, &cfg)),
            allows: allow::scan(path, &lexed),
        }
    }

    fn temp_cache(name: &str, cfg: &LintConfig) -> Cache {
        let dir = std::env::temp_dir().join(format!("airguard-lint-cache-test-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::new(dir, cfg)
    }

    #[test]
    fn fnv_is_stable_and_distinct() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), fnv1a_hex(b"a"));
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
    }

    #[test]
    fn round_trip_preserves_the_summary() {
        let src = "pub struct Cfg {\n    pub nodes: u32,\n}\nimpl Cfg {\n    pub fn identity(&self) -> String { format!(\"{}\", self.nodes) }\n}\nfn f(m: &HashMap<u32, u32>) {\n    emit(Ev::Seen { tx: 1 });\n    for k in m.keys() { g(k); } // lint:allow(determinism-map) — sorted downstream by caller\n    x.unwrap();\n}\n";
        let cfg = LintConfig::default();
        let cache = temp_cache("round-trip", &cfg);
        let original = summary("crates/sim/src/x.rs", src);
        assert!(
            !original.raw_diagnostics.is_empty(),
            "fixture should produce raw findings"
        );
        assert!(!original.allows.directives.is_empty());
        let digest = fnv1a_hex(src.as_bytes());
        cache.store(&original, &digest);
        let loaded = cache.load("crates/sim/src/x.rs", &digest).expect("hit");
        assert_eq!(loaded.items, original.items);
        assert_eq!(loaded.raw_diagnostics, original.raw_diagnostics);
        assert_eq!(loaded.allows.directives, original.allows.directives);
        assert_eq!(loaded.allows.diagnostics, original.allows.diagnostics);
    }

    #[test]
    fn stale_source_and_stale_config_both_miss() {
        let cfg = LintConfig::default();
        let cache = temp_cache("stale", &cfg);
        let original = summary("crates/sim/src/x.rs", "fn f() {}\n");
        cache.store(&original, "aaaa");
        assert!(cache.load("crates/sim/src/x.rs", "aaaa").is_some());
        assert!(cache.load("crates/sim/src/x.rs", "bbbb").is_none());

        // A different config maps to a different fingerprint: same
        // entry file, but the load must miss.
        let mut other = LintConfig::default();
        other.determinism_crates.push("metrics".into());
        let cache2 = Cache::new(cache.dir.clone(), &other);
        assert!(cache2.load("crates/sim/src/x.rs", "aaaa").is_none());
    }

    #[test]
    fn purge_and_corrupt_entries_degrade_to_misses() {
        let cfg = LintConfig::default();
        let cache = temp_cache("purge", &cfg);
        let original = summary("a.rs", "fn f() {}\n");
        cache.store(&original, "aaaa");
        cache.purge();
        assert!(cache.load("a.rs", "aaaa").is_none());

        cache.store(&original, "aaaa");
        let entry = cache.entry_path("a.rs");
        let mut text = std::fs::read_to_string(&entry).expect("entry");
        text.push_str("Z bogus trailing record\n");
        std::fs::write(&entry, text).expect("rewrite");
        assert!(cache.load("a.rs", "aaaa").is_none());
    }
}
