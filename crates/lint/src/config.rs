//! `lint.toml` — per-crate rule scoping.
//!
//! Parsed with a deliberately tiny TOML-subset reader (the offline build
//! has no `toml` crate): comments, `[section]` headers, and
//! `key = "string"` / `key = ["a", "b"]` pairs on single lines. That is
//! the entire grammar `lint.toml` needs.
//!
//! ```toml
//! exclude = ["vendor", "target"]
//!
//! [determinism]
//! crates = ["sim", "phy", "mac", "core", "net"]
//!
//! [unit-safety]
//! exempt = ["crates/sim/src/time.rs"]
//! ```

/// Effective configuration for a lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Path prefixes (relative to the root) never scanned.
    pub exclude: Vec<String>,
    /// Crate directory names (under `crates/`) the determinism rules
    /// cover.
    pub determinism_crates: Vec<String>,
    /// Exact file paths exempt from the unit-safety rules.
    pub unit_exempt: Vec<String>,
    /// Crate directory names (under `crates/`) whose library code the
    /// hot-path allocation rules cover.
    pub hot_path_crates: Vec<String>,
    /// Crate directory names (under `crates/`) whose library code the
    /// fault-path hygiene rule covers in full.
    pub fault_path_crates: Vec<String>,
    /// Exact file paths (injector call sites outside those crates) the
    /// fault-path hygiene rule also covers.
    pub fault_path_files: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            exclude: vec![
                "target".into(),
                "vendor".into(),
                "crates/lint/fixtures".into(),
            ],
            determinism_crates: vec![
                "sim".into(),
                "phy".into(),
                "mac".into(),
                "core".into(),
                "net".into(),
            ],
            unit_exempt: vec![
                "crates/sim/src/time.rs".into(),
                "crates/phy/src/units.rs".into(),
            ],
            hot_path_crates: vec!["sim".into(), "phy".into(), "mac".into()],
            fault_path_crates: vec!["fault".into()],
            fault_path_files: vec![
                "crates/phy/src/medium.rs".into(),
                "crates/mac/src/drift.rs".into(),
                "crates/net/src/faults.rs".into(),
            ],
        }
    }
}

/// A malformed `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl LintConfig {
    /// Parses `lint.toml` contents, overriding defaults key by key.
    pub fn parse(text: &str) -> Result<LintConfig, ConfigError> {
        let mut cfg = LintConfig::default();
        let mut section = String::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(ConfigError {
                        line: lineno,
                        message: "unterminated section header".into(),
                    });
                };
                section = name.trim().to_owned();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let values = parse_string_list(value.trim()).ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("value for `{key}` must be a string or list of strings"),
            })?;
            match (section.as_str(), key) {
                ("", "exclude") => cfg.exclude = values,
                ("determinism", "crates") => cfg.determinism_crates = values,
                ("unit-safety", "exempt") => cfg.unit_exempt = values,
                ("hot-path", "crates") => cfg.hot_path_crates = values,
                ("fault-path", "crates") => cfg.fault_path_crates = values,
                ("fault-path", "files") => cfg.fault_path_files = values,
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown key `{key}` in section `[{section}]`"),
                    });
                }
            }
        }
        Ok(cfg)
    }
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string would break this, but no configurable
    // value contains `#`; keep the reader simple.
    line.split('#').next().unwrap_or("")
}

fn parse_string_list(value: &str) -> Option<Vec<String>> {
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner.strip_suffix(']')?;
        let mut out = Vec::new();
        let trimmed = inner.trim().trim_end_matches(',');
        if trimmed.trim().is_empty() {
            return Some(out);
        }
        for item in trimmed.split(',') {
            out.push(parse_string(item.trim())?);
        }
        Some(out)
    } else {
        Some(vec![parse_string(value)?])
    }
}

fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_owned())
}

#[cfg(test)]
mod tests {
    use super::LintConfig;

    #[test]
    fn defaults_cover_the_five_sim_crates() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.determinism_crates, ["sim", "phy", "mac", "core", "net"]);
        assert!(cfg
            .unit_exempt
            .contains(&"crates/sim/src/time.rs".to_owned()));
        assert_eq!(cfg.hot_path_crates, ["sim", "phy", "mac"]);
        assert_eq!(cfg.fault_path_crates, ["fault"]);
        assert_eq!(
            cfg.fault_path_files,
            [
                "crates/phy/src/medium.rs",
                "crates/mac/src/drift.rs",
                "crates/net/src/faults.rs",
            ]
        );
    }

    #[test]
    fn fault_path_section_overrides_both_keys() {
        let cfg = LintConfig::parse(
            "[fault-path]\ncrates = [\"fault\", \"exp\"]\nfiles = [\"crates/net/src/faults.rs\"]\n",
        )
        .expect("valid config");
        assert_eq!(cfg.fault_path_crates, ["fault", "exp"]);
        assert_eq!(cfg.fault_path_files, ["crates/net/src/faults.rs"]);
        assert!(LintConfig::parse("[fault-path]\nexempt = [\"x\"]").is_err());
    }

    #[test]
    fn parse_overrides_only_named_keys() {
        let cfg = LintConfig::parse(
            "# comment\nexclude = [\"x\"]\n\n[determinism]\ncrates = [\"sim\", \"mac\"]\n",
        )
        .expect("valid config");
        assert_eq!(cfg.exclude, ["x"]);
        assert_eq!(cfg.determinism_crates, ["sim", "mac"]);
        // Untouched section keeps its default.
        assert_eq!(cfg.unit_exempt.len(), 2);
    }

    #[test]
    fn single_string_becomes_one_element_list() {
        let cfg = LintConfig::parse("exclude = \"only\"").expect("valid");
        assert_eq!(cfg.exclude, ["only"]);
    }

    #[test]
    fn unknown_keys_and_bad_syntax_are_errors() {
        assert!(LintConfig::parse("nonsense = [\"a\"]").is_err());
        assert!(LintConfig::parse("[determinism]\ncrates = 5").is_err());
        assert!(LintConfig::parse("just some words").is_err());
        let err = LintConfig::parse("\n\n[broken\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn trailing_commas_and_empty_lists_parse() {
        let cfg = LintConfig::parse("exclude = [\"a\", \"b\",]").expect("valid");
        assert_eq!(cfg.exclude, ["a", "b"]);
        let cfg = LintConfig::parse("exclude = []").expect("valid");
        assert!(cfg.exclude.is_empty());
    }
}
