//! `lint.toml` — per-crate rule scoping.
//!
//! Parsed with a deliberately tiny TOML-subset reader (the offline build
//! has no `toml` crate): comments, `[section]` headers, and
//! `key = "string"` / `key = ["a", "b"]` pairs; a list may span multiple
//! lines as long as it opens with `[` and closes with `]`. That is the
//! entire grammar `lint.toml` needs.
//!
//! ```toml
//! exclude = ["vendor", "target"]
//!
//! [determinism]
//! crates = ["sim", "phy", "mac", "core", "net"]
//!
//! [digest-completeness]
//! structs = ["crates/net/src/scenario.rs#ScenarioConfig=identity"]
//! ```
//!
//! Parsing is strict: an unknown section, key, or rule name is a hard
//! error with a did-you-mean hint — a typo'd scope must fail loudly, not
//! silently disable a rule. [`LintConfig::validate`] additionally checks
//! every named crate and path against the actual workspace.

use crate::diagnostics::Rule;
use std::path::Path;

/// One cross-file completeness target: an item in a file, plus the
/// functions whose bodies must jointly consume its fields/variants.
/// Written in `lint.toml` as `"path#Item=fn1+fn2"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemSpec {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Struct or enum name.
    pub item: String,
    /// Function names (methods of the item) that count as consumption.
    pub fns: Vec<String>,
}

impl ItemSpec {
    fn parse(raw: &str) -> Result<ItemSpec, String> {
        let (path, rest) = raw
            .split_once('#')
            .ok_or_else(|| format!("spec `{raw}` is missing `#`; expected `path#Item=fn1+fn2`"))?;
        let (item, fns) = rest
            .split_once('=')
            .ok_or_else(|| format!("spec `{raw}` is missing `=`; expected `path#Item=fn1+fn2`"))?;
        let fns: Vec<String> = fns
            .split('+')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        if path.is_empty() || item.is_empty() || fns.is_empty() {
            return Err(format!(
                "spec `{raw}` needs a path, an item name, and at least one function"
            ));
        }
        Ok(ItemSpec {
            path: path.trim().to_owned(),
            item: item.trim().to_owned(),
            fns,
        })
    }
}

/// Effective configuration for a lint run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintConfig {
    /// Path prefixes (relative to the root) never scanned.
    pub exclude: Vec<String>,
    /// Crate directory names (under `crates/`) the determinism rules
    /// cover.
    pub determinism_crates: Vec<String>,
    /// Exact file paths exempt from the unit-safety rules.
    pub unit_exempt: Vec<String>,
    /// Crate directory names (under `crates/`) whose library code the
    /// hot-path allocation rules cover.
    pub hot_path_crates: Vec<String>,
    /// Crate directory names (under `crates/`) whose library code the
    /// fault-path hygiene rule covers in full.
    pub fault_path_crates: Vec<String>,
    /// Exact file paths (injector call sites outside those crates) the
    /// fault-path hygiene rule also covers.
    pub fault_path_files: Vec<String>,
    /// Crate directory names (under `crates/`) whose producer→consumer
    /// queues the bounded-channel rule covers.
    pub bounded_channel_crates: Vec<String>,
    /// Crate directory names the ordering-hygiene rules cover
    /// (`ordering-relaxed` per file, `ordering-hash-iter` cross-file).
    pub ordering_crates: Vec<String>,
    /// Exact file paths (counter modules) exempt from
    /// `ordering-relaxed`.
    pub ordering_exempt: Vec<String>,
    /// Digest-completeness targets: every field of the struct must be
    /// consumed by the listed functions.
    pub digest_structs: Vec<ItemSpec>,
    /// Obs-coverage targets: every variant of the enum must appear in
    /// the listed functions and be constructed at a non-test site.
    pub obs_events: Vec<ItemSpec>,
    /// Rule IDs dropped from the final report.
    pub disabled_rules: Vec<Rule>,
    /// `section.key` names explicitly set by the parsed file.
    /// [`LintConfig::validate`] cross-checks only these against the
    /// workspace — built-in defaults describe the real workspace and
    /// would spuriously fail in fixture trees.
    pub explicit: Vec<String>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            exclude: vec![
                "target".into(),
                "vendor".into(),
                "crates/lint/fixtures".into(),
            ],
            determinism_crates: vec![
                "sim".into(),
                "phy".into(),
                "mac".into(),
                "core".into(),
                "net".into(),
            ],
            unit_exempt: vec![
                "crates/sim/src/time.rs".into(),
                "crates/phy/src/units.rs".into(),
            ],
            hot_path_crates: vec!["sim".into(), "phy".into(), "mac".into()],
            fault_path_crates: vec!["fault".into()],
            fault_path_files: vec![
                "crates/phy/src/medium.rs".into(),
                "crates/mac/src/drift.rs".into(),
                "crates/net/src/faults.rs".into(),
            ],
            // The cross-file scopes default to empty: their targets are
            // workspace-specific, so the real lists live in the
            // workspace's `lint.toml` (and fixtures carry their own).
            // Likewise bounded-channel: which crates are streaming
            // services is a workspace fact.
            bounded_channel_crates: Vec::new(),
            ordering_crates: Vec::new(),
            ordering_exempt: Vec::new(),
            digest_structs: Vec::new(),
            obs_events: Vec::new(),
            disabled_rules: Vec::new(),
            explicit: Vec::new(),
        }
    }
}

/// A malformed `lint.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// `(section, key)` pairs the parser accepts; the root section is `""`.
const KNOWN_KEYS: &[(&str, &str)] = &[
    ("", "exclude"),
    ("determinism", "crates"),
    ("unit-safety", "exempt"),
    ("hot-path", "crates"),
    ("fault-path", "crates"),
    ("fault-path", "files"),
    ("bounded-channel", "crates"),
    ("ordering", "crates"),
    ("ordering", "relaxed-exempt"),
    ("digest-completeness", "structs"),
    ("obs-coverage", "events"),
    ("rules", "disabled"),
];

impl LintConfig {
    /// Parses `lint.toml` contents, overriding defaults key by key.
    pub fn parse(text: &str) -> Result<LintConfig, ConfigError> {
        let mut cfg = LintConfig::default();
        let mut section = String::new();

        let mut lines = text.lines().enumerate();
        while let Some((idx, raw)) = lines.next() {
            let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let Some(name) = name.strip_suffix(']') else {
                    return Err(ConfigError {
                        line: lineno,
                        message: "unterminated section header".into(),
                    });
                };
                section = name.trim().to_owned();
                let known = KNOWN_KEYS.iter().any(|(s, _)| *s == section);
                if !known {
                    let sections: Vec<&str> = KNOWN_KEYS
                        .iter()
                        .map(|(s, _)| *s)
                        .filter(|s| !s.is_empty())
                        .collect();
                    return Err(ConfigError {
                        line: lineno,
                        message: format!(
                            "unknown section `[{section}]`{}",
                            did_you_mean(&section, &sections)
                        ),
                    });
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            if !KNOWN_KEYS.contains(&(section.as_str(), key)) {
                let keys: Vec<&str> = KNOWN_KEYS
                    .iter()
                    .filter(|(s, _)| *s == section)
                    .map(|(_, k)| *k)
                    .collect();
                return Err(ConfigError {
                    line: lineno,
                    message: format!(
                        "unknown key `{key}` in section `[{section}]`{}",
                        did_you_mean(key, &keys)
                    ),
                });
            }
            // A list may continue over following lines until its `]`.
            let mut value = value.trim().to_owned();
            while value.starts_with('[') && !value.contains(']') {
                let Some((_, cont)) = lines.next() else {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unterminated list for `{key}`"),
                    });
                };
                value.push(' ');
                value.push_str(strip_comment(cont).trim());
            }
            let values = parse_string_list(&value).ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("value for `{key}` must be a string or list of strings"),
            })?;
            cfg.explicit.push(format!("{section}.{key}"));
            match (section.as_str(), key) {
                ("", "exclude") => cfg.exclude = values,
                ("determinism", "crates") => cfg.determinism_crates = values,
                ("unit-safety", "exempt") => cfg.unit_exempt = values,
                ("hot-path", "crates") => cfg.hot_path_crates = values,
                ("fault-path", "crates") => cfg.fault_path_crates = values,
                ("fault-path", "files") => cfg.fault_path_files = values,
                ("bounded-channel", "crates") => cfg.bounded_channel_crates = values,
                ("ordering", "crates") => cfg.ordering_crates = values,
                ("ordering", "relaxed-exempt") => cfg.ordering_exempt = values,
                ("digest-completeness", "structs") => {
                    cfg.digest_structs = parse_specs(&values, lineno)?;
                }
                ("obs-coverage", "events") => {
                    cfg.obs_events = parse_specs(&values, lineno)?;
                }
                ("rules", "disabled") => {
                    cfg.disabled_rules = parse_rules(&values, lineno)?;
                }
                // lint:allow(panic-macro) — every pair was checked against KNOWN_KEYS above
                _ => unreachable!("filtered by KNOWN_KEYS"),
            }
        }
        Ok(cfg)
    }

    /// Checks every crate name and path against the workspace at
    /// `root`. Run when an explicit `lint.toml` is in effect — a scope
    /// that names nothing real silently disables its rule, which is
    /// exactly the failure mode strict parsing exists to prevent.
    pub fn validate(&self, root: &Path) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();
        let actual_crates: Vec<String> = std::fs::read_dir(root.join("crates"))
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().is_dir())
                    .filter_map(|e| e.file_name().into_string().ok())
                    .collect()
            })
            .unwrap_or_default();
        let crate_lists = [
            (
                "determinism",
                "determinism.crates",
                &self.determinism_crates,
            ),
            ("hot-path", "hot-path.crates", &self.hot_path_crates),
            ("fault-path", "fault-path.crates", &self.fault_path_crates),
            (
                "bounded-channel",
                "bounded-channel.crates",
                &self.bounded_channel_crates,
            ),
            ("ordering", "ordering.crates", &self.ordering_crates),
        ];
        for (section, key, crates) in crate_lists {
            if !self.explicit.iter().any(|k| k == key) {
                continue;
            }
            for name in crates {
                if !actual_crates.iter().any(|c| c == name) {
                    let cands: Vec<&str> = actual_crates.iter().map(String::as_str).collect();
                    errors.push(format!(
                        "[{section}] names crate `{name}` but crates/{name}/ does not exist{}",
                        did_you_mean(name, &cands)
                    ));
                }
            }
        }
        let path_lists = [
            (
                "unit-safety exempt",
                "unit-safety.exempt",
                &self.unit_exempt,
            ),
            (
                "fault-path files",
                "fault-path.files",
                &self.fault_path_files,
            ),
            (
                "ordering relaxed-exempt",
                "ordering.relaxed-exempt",
                &self.ordering_exempt,
            ),
        ];
        for (what, key, paths) in path_lists {
            if !self.explicit.iter().any(|k| k == key) {
                continue;
            }
            for p in paths {
                if !root.join(p).is_file() {
                    errors.push(format!("{what} names `{p}` but no such file exists"));
                }
            }
        }
        for spec in self.digest_structs.iter().chain(&self.obs_events) {
            if !root.join(&spec.path).is_file() {
                errors.push(format!(
                    "spec `{}#{}` names a file that does not exist",
                    spec.path, spec.item
                ));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }
}

fn parse_specs(values: &[String], lineno: u32) -> Result<Vec<ItemSpec>, ConfigError> {
    values
        .iter()
        .map(|raw| {
            ItemSpec::parse(raw).map_err(|message| ConfigError {
                line: lineno,
                message,
            })
        })
        .collect()
}

fn parse_rules(values: &[String], lineno: u32) -> Result<Vec<Rule>, ConfigError> {
    values
        .iter()
        .map(|raw| {
            Rule::from_id(raw).ok_or_else(|| {
                let ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
                ConfigError {
                    line: lineno,
                    message: format!("unknown rule `{raw}`{}", did_you_mean(raw, &ids)),
                }
            })
        })
        .collect()
}

/// A `; did you mean ...?` suffix when a candidate is close enough.
fn did_you_mean(input: &str, candidates: &[&str]) -> String {
    let best = candidates
        .iter()
        .map(|c| (edit_distance(input, c), *c))
        .min();
    match best {
        Some((d, c)) if d <= 3 && d < input.len() => format!("; did you mean `{c}`?"),
        _ => String::new(),
    }
}

/// Levenshtein distance, small-alphabet DP.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

fn strip_comment(line: &str) -> &str {
    // A `#` inside a quoted string would break this — but the spec
    // grammar (`"path#Item=fns"`) needs `#` inside strings. Only strip a
    // `#` that starts the line or follows whitespace, which is how every
    // real comment is written.
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'#' && (i == 0 || bytes[i - 1].is_ascii_whitespace()) {
            return &line[..i];
        }
    }
    line
}

fn parse_string_list(value: &str) -> Option<Vec<String>> {
    if let Some(inner) = value.strip_prefix('[') {
        let inner = inner.strip_suffix(']')?;
        let mut out = Vec::new();
        for item in inner.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue; // trailing comma or blank continuation line
            }
            out.push(parse_string(item)?);
        }
        Some(out)
    } else {
        Some(vec![parse_string(value)?])
    }
}

fn parse_string(value: &str) -> Option<String> {
    let inner = value.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_owned())
}

#[cfg(test)]
mod tests {
    use super::{ItemSpec, LintConfig};
    use crate::diagnostics::Rule;

    #[test]
    fn defaults_cover_the_five_sim_crates() {
        let cfg = LintConfig::default();
        assert_eq!(cfg.determinism_crates, ["sim", "phy", "mac", "core", "net"]);
        assert!(cfg
            .unit_exempt
            .contains(&"crates/sim/src/time.rs".to_owned()));
        assert_eq!(cfg.hot_path_crates, ["sim", "phy", "mac"]);
        assert_eq!(cfg.fault_path_crates, ["fault"]);
        assert_eq!(
            cfg.fault_path_files,
            [
                "crates/phy/src/medium.rs",
                "crates/mac/src/drift.rs",
                "crates/net/src/faults.rs",
            ]
        );
        // Cross-file scopes are workspace-specific, so defaults are
        // empty and the workspace lint.toml provides the real lists.
        assert!(cfg.bounded_channel_crates.is_empty());
        assert!(cfg.ordering_crates.is_empty());
        assert!(cfg.digest_structs.is_empty());
        assert!(cfg.obs_events.is_empty());
    }

    #[test]
    fn fault_path_section_overrides_both_keys() {
        let cfg = LintConfig::parse(
            "[fault-path]\ncrates = [\"fault\", \"exp\"]\nfiles = [\"crates/net/src/faults.rs\"]\n",
        )
        .expect("valid config");
        assert_eq!(cfg.fault_path_crates, ["fault", "exp"]);
        assert_eq!(cfg.fault_path_files, ["crates/net/src/faults.rs"]);
        assert!(LintConfig::parse("[fault-path]\nexempt = [\"x\"]").is_err());
    }

    #[test]
    fn parse_overrides_only_named_keys() {
        let cfg = LintConfig::parse(
            "# comment\nexclude = [\"x\"]\n\n[determinism]\ncrates = [\"sim\", \"mac\"]\n",
        )
        .expect("valid config");
        assert_eq!(cfg.exclude, ["x"]);
        assert_eq!(cfg.determinism_crates, ["sim", "mac"]);
        // Untouched section keeps its default.
        assert_eq!(cfg.unit_exempt.len(), 2);
    }

    #[test]
    fn bounded_channel_section_parses_its_crate_list() {
        let cfg = LintConfig::parse("[bounded-channel]\ncrates = [\"live\", \"net\"]\n")
            .expect("valid config");
        assert_eq!(cfg.bounded_channel_crates, ["live", "net"]);
        assert!(LintConfig::parse("[bounded-channel]\nfiles = [\"x\"]").is_err());
    }

    #[test]
    fn single_string_becomes_one_element_list() {
        let cfg = LintConfig::parse("exclude = \"only\"").expect("valid");
        assert_eq!(cfg.exclude, ["only"]);
    }

    #[test]
    fn unknown_keys_and_bad_syntax_are_errors() {
        assert!(LintConfig::parse("nonsense = [\"a\"]").is_err());
        assert!(LintConfig::parse("[determinism]\ncrates = 5").is_err());
        assert!(LintConfig::parse("just some words").is_err());
        let err = LintConfig::parse("\n\n[broken\n").unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn trailing_commas_and_empty_lists_parse() {
        let cfg = LintConfig::parse("exclude = [\"a\", \"b\",]").expect("valid");
        assert_eq!(cfg.exclude, ["a", "b"]);
        let cfg = LintConfig::parse("exclude = []").expect("valid");
        assert!(cfg.exclude.is_empty());
    }

    #[test]
    fn multi_line_lists_parse_with_comments() {
        let cfg = LintConfig::parse(
            "[ordering]\ncrates = [\n  \"sim\", # the scheduler\n  \"phy\",\n]\n",
        )
        .expect("valid");
        assert_eq!(cfg.ordering_crates, ["sim", "phy"]);
        assert!(LintConfig::parse("[ordering]\ncrates = [\n  \"sim\",\n").is_err());
    }

    #[test]
    fn typos_get_did_you_mean_hints() {
        let err = LintConfig::parse("[determinsim]\ncrates = [\"sim\"]\n").unwrap_err();
        assert!(
            err.message.contains("did you mean `determinism`?"),
            "got: {}",
            err.message
        );
        let err = LintConfig::parse("[determinism]\ncrate = [\"sim\"]\n").unwrap_err();
        assert!(
            err.message.contains("did you mean `crates`?"),
            "got: {}",
            err.message
        );
        let err = LintConfig::parse("[rules]\ndisabled = [\"determinism-mpa\"]\n").unwrap_err();
        assert!(
            err.message.contains("did you mean `determinism-map`?"),
            "got: {}",
            err.message
        );
    }

    #[test]
    fn specs_parse_path_item_and_fns() {
        let cfg = LintConfig::parse(
            "[digest-completeness]\nstructs = [\"crates/net/src/scenario.rs#ScenarioConfig=identity+simulation_config\"]\n",
        )
        .expect("valid");
        assert_eq!(
            cfg.digest_structs,
            [ItemSpec {
                path: "crates/net/src/scenario.rs".into(),
                item: "ScenarioConfig".into(),
                fns: vec!["identity".into(), "simulation_config".into()],
            }]
        );
        // The `#` inside the quoted spec must not read as a comment.
        assert!(LintConfig::parse("[obs-coverage]\nevents = [\"a.rs#E\"]").is_err());
        assert!(LintConfig::parse("[obs-coverage]\nevents = [\"a.rs=f\"]").is_err());
    }

    #[test]
    fn disabled_rules_parse_to_rule_ids() {
        let cfg = LintConfig::parse("[rules]\ndisabled = [\"print-macro\", \"float-eq\"]\n")
            .expect("valid");
        assert_eq!(cfg.disabled_rules, [Rule::PrintMacro, Rule::FloatEq]);
    }

    #[test]
    fn validate_reports_ghost_crates_and_paths() {
        let dir = std::env::temp_dir().join("airguard-lint-validate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates/sim/src")).expect("mkdir");
        std::fs::write(dir.join("crates/sim/src/time.rs"), "").expect("write");
        let mut cfg = LintConfig::parse(
            "[determinism]\ncrates = [\"sim\", \"smi\"]\n[unit-safety]\nexempt = [\"crates/sim/src/time.rs\", \"crates/sim/src/gone.rs\"]\n",
        )
        .expect("valid syntax");
        // Defaults that are not explicitly set are never cross-checked,
        // even though the temp workspace lacks their crates and files.
        assert!(!cfg.hot_path_crates.is_empty());
        let errors = cfg.validate(&dir).unwrap_err();
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("smi") && errors[0].contains("did you mean `sim`?"));
        assert!(errors[1].contains("gone.rs"));
        cfg.determinism_crates = vec!["sim".into()];
        cfg.unit_exempt = vec!["crates/sim/src/time.rs".into()];
        assert!(cfg.validate(&dir).is_ok());
    }
}
