//! Diagnostic records and rule identifiers.

use std::fmt;

/// Every rule the tool can report, with its stable ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time sources (`Instant`, `SystemTime`) in simulation
    /// crates.
    DeterminismTime,
    /// Ambient randomness (`thread_rng`, `rand::random`) in simulation
    /// crates.
    DeterminismRng,
    /// Hash-ordered containers (`HashMap`, `HashSet`) in simulation
    /// crates.
    DeterminismMap,
    /// Raw integer arithmetic on time-suffixed identifiers outside the
    /// unit modules.
    UnitMixedArith,
    /// `==` / `!=` against a floating-point literal.
    FloatEq,
    /// `.unwrap()` in library code.
    PanicUnwrap,
    /// `.expect(..)` in library code.
    PanicExpect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library
    /// code.
    PanicMacro,
    /// `println!` / `eprintln!` / `print!` / `eprint!` in crate library
    /// code, bypassing the typed telemetry layer.
    PrintMacro,
    /// `.clone()` of a frame value in hot-path crate library code,
    /// defeating the shared `FrameRef` allocation.
    HotPathClone,
    /// `.unwrap()` / `.expect(..)` on a fault-injection path (the
    /// `fault` crate and the injector call sites wired into phy/mac/net).
    FaultPathUnwrap,
    /// A `lint:allow` directive missing its mandatory reason.
    AllowReason,
}

impl Rule {
    /// The stable ID used in diagnostics and `lint:allow(..)` directives.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::DeterminismTime => "determinism-time",
            Rule::DeterminismRng => "determinism-rng",
            Rule::DeterminismMap => "determinism-map",
            Rule::UnitMixedArith => "unit-mixed-arith",
            Rule::FloatEq => "float-eq",
            Rule::PanicUnwrap => "panic-unwrap",
            Rule::PanicExpect => "panic-expect",
            Rule::PanicMacro => "panic-macro",
            Rule::PrintMacro => "print-macro",
            Rule::HotPathClone => "hot-path-clone",
            Rule::FaultPathUnwrap => "fault-path-unwrap",
            Rule::AllowReason => "lint-allow-reason",
        }
    }

    /// Parses a rule ID as written in a `lint:allow(..)` directive.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        const ALL: [Rule; 12] = [
            Rule::DeterminismTime,
            Rule::DeterminismRng,
            Rule::DeterminismMap,
            Rule::UnitMixedArith,
            Rule::FloatEq,
            Rule::PanicUnwrap,
            Rule::PanicExpect,
            Rule::PanicMacro,
            Rule::PrintMacro,
            Rule::HotPathClone,
            Rule::FaultPathUnwrap,
            Rule::AllowReason,
        ];
        ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the lint root, with forward slashes.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::{Diagnostic, Rule};

    #[test]
    fn display_matches_grep_friendly_format() {
        let d = Diagnostic {
            path: "crates/mac/src/dcf.rs".into(),
            line: 250,
            col: 21,
            rule: Rule::DeterminismMap,
            message: "HashMap is hash-ordered".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/mac/src/dcf.rs:250:21: determinism-map: HashMap is hash-ordered"
        );
    }

    #[test]
    fn rule_ids_round_trip() {
        for rule in [
            Rule::DeterminismTime,
            Rule::DeterminismRng,
            Rule::DeterminismMap,
            Rule::UnitMixedArith,
            Rule::FloatEq,
            Rule::PanicUnwrap,
            Rule::PanicExpect,
            Rule::PanicMacro,
            Rule::PrintMacro,
            Rule::HotPathClone,
            Rule::FaultPathUnwrap,
            Rule::AllowReason,
        ] {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("no-such-rule"), None);
    }
}
