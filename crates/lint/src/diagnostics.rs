//! Diagnostic records and rule identifiers.

use std::fmt;

/// Every rule the tool can report, with its stable ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time sources (`Instant`, `SystemTime`) in simulation
    /// crates.
    DeterminismTime,
    /// Ambient randomness (`thread_rng`, `rand::random`) in simulation
    /// crates.
    DeterminismRng,
    /// Hash-ordered containers (`HashMap`, `HashSet`) in simulation
    /// crates.
    DeterminismMap,
    /// Raw integer arithmetic on time-suffixed identifiers outside the
    /// unit modules.
    UnitMixedArith,
    /// `==` / `!=` against a floating-point literal.
    FloatEq,
    /// `.unwrap()` in library code.
    PanicUnwrap,
    /// `.expect(..)` in library code.
    PanicExpect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!` in library
    /// code.
    PanicMacro,
    /// `println!` / `eprintln!` / `print!` / `eprint!` in crate library
    /// code, bypassing the typed telemetry layer.
    PrintMacro,
    /// `.clone()` of a frame value in hot-path crate library code,
    /// defeating the shared `FrameRef` allocation.
    HotPathClone,
    /// `.unwrap()` / `.expect(..)` on a fault-injection path (the
    /// `fault` crate and the injector call sites wired into phy/mac/net).
    FaultPathUnwrap,
    /// An unbounded channel or grow-forever queue constructed in a
    /// streaming crate (scoped by `[bounded-channel]` in `lint.toml`):
    /// every queue between a producer and a consumer must carry an
    /// explicit capacity so overload surfaces as backpressure, not as
    /// unbounded memory growth.
    BoundedChannel,
    /// A config struct field not consumed by its digest/identity
    /// functions (cross-file; scoped by `[digest-completeness]` in
    /// `lint.toml`).
    DigestCompleteness,
    /// An `ObsEvent` variant missing from the category/kind maps or
    /// never constructed at a non-test call site (cross-file; scoped by
    /// `[obs-coverage]`).
    ObsCoverage,
    /// Iteration over a hash-ordered container field from an
    /// ordering-scoped crate (cross-file; the field may be declared in
    /// another crate).
    OrderingHashIter,
    /// `Ordering::Relaxed` outside the designated counter modules.
    OrderingRelaxed,
    /// A `lint:allow` directive missing its mandatory reason.
    AllowReason,
    /// A well-formed `lint:allow` directive that suppresses nothing.
    AllowUnused,
}

impl Rule {
    /// Every rule, in declaration order (which is also the sort order
    /// diagnostics use).
    pub const ALL: [Rule; 18] = [
        Rule::DeterminismTime,
        Rule::DeterminismRng,
        Rule::DeterminismMap,
        Rule::UnitMixedArith,
        Rule::FloatEq,
        Rule::PanicUnwrap,
        Rule::PanicExpect,
        Rule::PanicMacro,
        Rule::PrintMacro,
        Rule::HotPathClone,
        Rule::FaultPathUnwrap,
        Rule::BoundedChannel,
        Rule::DigestCompleteness,
        Rule::ObsCoverage,
        Rule::OrderingHashIter,
        Rule::OrderingRelaxed,
        Rule::AllowReason,
        Rule::AllowUnused,
    ];

    /// The stable ID used in diagnostics and `lint:allow(..)` directives.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Rule::DeterminismTime => "determinism-time",
            Rule::DeterminismRng => "determinism-rng",
            Rule::DeterminismMap => "determinism-map",
            Rule::UnitMixedArith => "unit-mixed-arith",
            Rule::FloatEq => "float-eq",
            Rule::PanicUnwrap => "panic-unwrap",
            Rule::PanicExpect => "panic-expect",
            Rule::PanicMacro => "panic-macro",
            Rule::PrintMacro => "print-macro",
            Rule::HotPathClone => "hot-path-clone",
            Rule::FaultPathUnwrap => "fault-path-unwrap",
            Rule::BoundedChannel => "bounded-channel",
            Rule::DigestCompleteness => "digest-completeness",
            Rule::ObsCoverage => "obs-coverage",
            Rule::OrderingHashIter => "ordering-hash-iter",
            Rule::OrderingRelaxed => "ordering-relaxed",
            Rule::AllowReason => "lint-allow-reason",
            Rule::AllowUnused => "lint-allow-unused",
        }
    }

    /// One-line description, used for the SARIF rule table.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Rule::DeterminismTime => "wall-clock time source in a simulation crate",
            Rule::DeterminismRng => "ambient randomness in a simulation crate",
            Rule::DeterminismMap => "hash-ordered container in a simulation crate",
            Rule::UnitMixedArith => "raw integer arithmetic on a time quantity",
            Rule::FloatEq => "exact equality on floating-point values",
            Rule::PanicUnwrap => ".unwrap() in library code",
            Rule::PanicExpect => ".expect(..) in library code",
            Rule::PanicMacro => "panicking macro in library code",
            Rule::PrintMacro => "raw stdio print in crate library code",
            Rule::HotPathClone => "deep frame copy on the simulation hot path",
            Rule::FaultPathUnwrap => "panicking call on a fault-injection path",
            Rule::BoundedChannel => "unbounded channel or grow-forever queue in a streaming crate",
            Rule::DigestCompleteness => "config field not consumed by its digest functions",
            Rule::ObsCoverage => "telemetry event variant unmapped or never emitted",
            Rule::OrderingHashIter => "iteration over a hash-ordered field in a determinism crate",
            Rule::OrderingRelaxed => "Ordering::Relaxed outside a counter module",
            Rule::AllowReason => "lint:allow directive without a reason",
            Rule::AllowUnused => "lint:allow directive that suppresses nothing",
        }
    }

    /// Whether a `lint:allow` directive can suppress this rule. The two
    /// meta rules about the directives themselves cannot be allowed
    /// away, or a stale directive could hide its own staleness.
    #[must_use]
    pub fn suppressible(self) -> bool {
        !matches!(self, Rule::AllowReason | Rule::AllowUnused)
    }

    /// Parses a rule ID as written in a `lint:allow(..)` directive.
    #[must_use]
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the lint root, with forward slashes.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::{Diagnostic, Rule};

    #[test]
    fn display_matches_grep_friendly_format() {
        let d = Diagnostic {
            path: "crates/mac/src/dcf.rs".into(),
            line: 250,
            col: 21,
            rule: Rule::DeterminismMap,
            message: "HashMap is hash-ordered".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/mac/src/dcf.rs:250:21: determinism-map: HashMap is hash-ordered"
        );
    }

    #[test]
    fn rule_ids_round_trip() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
            assert!(!rule.description().is_empty());
        }
        assert_eq!(Rule::from_id("no-such-rule"), None);
    }

    #[test]
    fn rule_ids_are_unique() {
        for (i, a) in Rule::ALL.iter().enumerate() {
            for b in &Rule::ALL[i + 1..] {
                assert_ne!(a.id(), b.id());
            }
        }
    }

    #[test]
    fn meta_rules_are_not_suppressible() {
        assert!(!Rule::AllowReason.suppressible());
        assert!(!Rule::AllowUnused.suppressible());
        assert!(Rule::PanicUnwrap.suppressible());
        assert!(Rule::DigestCompleteness.suppressible());
    }
}
