//! The two-pass lint engine.
//!
//! Pass 1 analyzes every file independently (lex, item parse, per-file
//! rules, allow scan) — embarrassingly parallel, so a worker pool pulls
//! file indices off an atomic cursor and writes each summary into its
//! slot. Slotting by index, not completion order, makes the report
//! byte-identical at any worker count. Unchanged files are served from
//! the [`crate::cache`] instead of being re-analyzed.
//!
//! Pass 2 is cheap and sequential: the summaries form a
//! [`WorkspaceIndex`], the cross-file rules run over it, and allow
//! directives are applied centrally — which is also what makes
//! unused-allow detection possible, since by then every rule has had its
//! chance to consume each directive.

use crate::cache::{fnv1a_hex, Cache};
use crate::config::LintConfig;
use crate::diagnostics::Diagnostic;
use crate::index::{FileSummary, WorkspaceIndex};
use crate::{allow, items, lexer, rules, xrules, FileClass};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// How the incremental cache participates in a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// No reads, no writes (fixture trees, tests).
    Disabled,
    /// Normal operation: read hits, write misses.
    Enabled,
    /// Purge first, then rebuild everything (`--fix-cache`).
    Rebuild,
}

/// Engine knobs, all CLI-settable.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Pass-1 worker threads; 1 means fully sequential.
    pub workers: usize,
    pub cache: CacheMode,
    /// Override for the cache directory (defaults to
    /// `<root>/target/lint-cache/v1`).
    pub cache_dir: Option<PathBuf>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            workers: 1,
            cache: CacheMode::Disabled,
            cache_dir: None,
        }
    }
}

/// The outcome of a run: the final diagnostics plus cache statistics.
#[derive(Debug)]
pub struct LintReport {
    /// Sorted, deduplicated, allow-filtered diagnostics.
    pub diagnostics: Vec<Diagnostic>,
    pub files_total: usize,
    /// Files analyzed from source this run.
    pub files_analyzed: usize,
    /// Files served from the incremental cache.
    pub files_cached: usize,
}

/// Runs both passes over the workspace at `root`.
pub fn run(root: &Path, cfg: &LintConfig, opts: &EngineOptions) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    crate::collect_rs_files(root, root, cfg, &mut files)?;
    files.sort();

    let cache = match opts.cache {
        CacheMode::Disabled => None,
        mode => {
            let dir = opts
                .cache_dir
                .clone()
                .unwrap_or_else(|| crate::cache::default_dir(root));
            let cache = Cache::new(dir, cfg);
            if mode == CacheMode::Rebuild {
                cache.purge();
            }
            Some(cache)
        }
    };

    // Pass 1: per-file summaries, slotted by file index.
    let files_total = files.len();
    let slots: Mutex<Vec<Option<(FileSummary, bool)>>> =
        Mutex::new((0..files_total).map(|_| None).collect());
    let cursor = AtomicUsize::new(0);
    let io_error: Mutex<Option<std::io::Error>> = Mutex::new(None);
    let workers = opts.workers.max(1).min(files_total.max(1));

    let work = |_: usize| loop {
        let i = cursor.fetch_add(1, Ordering::SeqCst);
        if i >= files_total {
            break;
        }
        let rel = &files[i];
        let source = match std::fs::read_to_string(root.join(rel)) {
            Ok(s) => s,
            Err(e) => {
                // Poisoning cannot lose data here: a poisoned guard
                // still holds the slot, so recover it instead of
                // propagating a second panic.
                *io_error.lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
                break;
            }
        };
        let digest = fnv1a_hex(source.as_bytes());
        let (summary, cached) = match cache.as_ref().and_then(|c| c.load(rel, &digest)) {
            Some(summary) => (summary, true),
            None => {
                let summary = analyze(rel, &source, cfg);
                if let Some(c) = &cache {
                    c.store(&summary, &digest);
                }
                (summary, false)
            }
        };
        slots.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some((summary, cached));
    };

    if workers <= 1 {
        work(0);
    } else {
        let work = &work;
        let joined = crossbeam::thread::scope(|s| {
            for w in 0..workers {
                s.spawn(move |_| work(w));
            }
        });
        if let Err(payload) = joined {
            // A worker panic is a lint bug; surface it as itself.
            std::panic::resume_unwind(payload);
        }
    }
    if let Some(e) = io_error
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(e);
    }

    let mut files_analyzed = 0;
    let mut files_cached = 0;
    let summaries: Vec<FileSummary> = slots
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .flatten()
        .map(|(summary, cached)| {
            if cached {
                files_cached += 1;
            } else {
                files_analyzed += 1;
            }
            summary
        })
        .collect();

    // Pass 2: cross-file rules over the index, then central allow
    // application and unused-directive reporting.
    let mut index = WorkspaceIndex::new(summaries);
    let cross = xrules::check(&index, cfg);
    let mut diagnostics = Vec::new();
    let mut orphans = Vec::new();
    for diag in cross {
        match index.files.get_mut(&diag.path) {
            Some(f) => f.raw_diagnostics.push(diag),
            // A spec can name a file outside the walked tree; its
            // finding still must surface.
            None => orphans.push(diag),
        }
    }
    diagnostics.extend(orphans);
    for summary in index.files.values_mut() {
        let raw = std::mem::take(&mut summary.raw_diagnostics);
        diagnostics.extend(summary.allows.apply(raw));
        diagnostics.append(&mut summary.allows.diagnostics);
        if summary.class() != FileClass::TestLike {
            diagnostics.extend(summary.allows.unused(&summary.path));
        }
    }
    diagnostics.retain(|d| !cfg.disabled_rules.contains(&d.rule));
    diagnostics.sort();
    diagnostics.dedup();

    Ok(LintReport {
        diagnostics,
        files_total,
        files_analyzed,
        files_cached,
    })
}

/// Pass-1 analysis of one file from source.
#[must_use]
pub fn analyze(rel: &str, source: &str, cfg: &LintConfig) -> FileSummary {
    let lexed = lexer::lex(source);
    FileSummary {
        path: rel.to_owned(),
        items: items::parse_items(&lexed.tokens),
        raw_diagnostics: rules::check(rel, &lexed.tokens, crate::rules_for(rel, cfg)),
        allows: allow::scan(rel, &lexed),
    }
}

#[cfg(test)]
mod tests {
    use super::{run, CacheMode, EngineOptions};
    use crate::config::LintConfig;
    use crate::diagnostics::Rule;
    use std::path::PathBuf;

    /// Lays out a miniature workspace on disk.
    fn workspace(name: &str, files: &[(&str, &str)]) -> PathBuf {
        let root = std::env::temp_dir().join(format!("airguard-lint-engine-test-{name}"));
        let _ = std::fs::remove_dir_all(&root);
        for (rel, src) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
            std::fs::write(path, src).expect("write");
        }
        root
    }

    const CFG_RS: &str = "pub struct Cfg {\n    pub nodes: u32,\n    pub rate: u64,\n}\nimpl Cfg {\n    pub fn identity(&self) -> String { format!(\"{}\", self.nodes) }\n}\n";

    fn digest_cfg() -> LintConfig {
        LintConfig {
            digest_structs: vec![crate::config::ItemSpec {
                path: "crates/net/src/cfg.rs".into(),
                item: "Cfg".into(),
                fns: vec!["identity".into()],
            }],
            ..LintConfig::default()
        }
    }

    #[test]
    fn cross_file_findings_respect_allows_and_unused_is_reported() {
        let allowed = "pub struct Cfg {\n    pub nodes: u32,\n    // lint:allow(digest-completeness) — rate is display-only, never cached\n    pub rate: u64,\n}\nimpl Cfg {\n    pub fn identity(&self) -> String { format!(\"{}\", self.nodes) }\n    // lint:allow(digest-completeness) — stale: nothing fires on this line\n    pub fn extra(&self) {}\n}\n";
        let root = workspace("allows", &[("crates/net/src/cfg.rs", allowed)]);
        let report = run(&root, &digest_cfg(), &EngineOptions::default()).expect("run");
        let rules: Vec<Rule> = report.diagnostics.iter().map(|d| d.rule).collect();
        assert_eq!(rules, [Rule::AllowUnused], "{:?}", report.diagnostics);
        assert_eq!(report.diagnostics[0].line, 8);
    }

    #[test]
    fn workers_do_not_change_the_report() {
        let files: Vec<(String, String)> = (0..17)
            .map(|i| {
                (
                    format!("crates/sim/src/m{i}.rs"),
                    format!("fn f{i}() {{ let x = opt.unwrap(); use_it(x); }}\n"),
                )
            })
            .collect();
        let refs: Vec<(&str, &str)> = files
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str()))
            .collect();
        let root = workspace("workers", &refs);
        let cfg = LintConfig::default();
        let baseline = run(&root, &cfg, &EngineOptions::default()).expect("run");
        assert_eq!(baseline.diagnostics.len(), 17);
        for workers in [2, 4, 8] {
            let opts = EngineOptions {
                workers,
                ..EngineOptions::default()
            };
            let report = run(&root, &cfg, &opts).expect("run");
            assert_eq!(
                report.diagnostics, baseline.diagnostics,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn second_run_is_fully_cached_and_identical() {
        let root = workspace(
            "cache",
            &[
                ("crates/net/src/cfg.rs", CFG_RS),
                ("crates/sim/src/a.rs", "fn f() { x.unwrap(); }\n"),
            ],
        );
        let opts = EngineOptions {
            workers: 2,
            cache: CacheMode::Enabled,
            cache_dir: Some(root.join("lint-cache")),
        };
        let cfg = digest_cfg();
        let cold = run(&root, &cfg, &opts).expect("cold");
        assert_eq!(cold.files_analyzed, 2);
        assert_eq!(cold.files_cached, 0);
        assert!(cold
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::DigestCompleteness));

        let warm = run(&root, &cfg, &opts).expect("warm");
        assert_eq!(warm.files_analyzed, 0);
        assert_eq!(warm.files_cached, 2);
        assert_eq!(warm.diagnostics, cold.diagnostics);

        // Touching one file re-analyzes only that file.
        std::fs::write(
            root.join("crates/sim/src/a.rs"),
            "fn f() { x.unwrap(); y.unwrap(); }\n",
        )
        .expect("rewrite");
        let touched = run(&root, &cfg, &opts).expect("touched");
        assert_eq!(touched.files_analyzed, 1);
        assert_eq!(touched.files_cached, 1);

        // Rebuild mode purges and analyzes everything again.
        let rebuild = run(
            &root,
            &cfg,
            &EngineOptions {
                cache: CacheMode::Rebuild,
                ..opts.clone()
            },
        )
        .expect("rebuild");
        assert_eq!(rebuild.files_analyzed, 2);
        assert_eq!(rebuild.diagnostics, touched.diagnostics);
    }

    #[test]
    fn disabled_rules_are_dropped_from_the_report() {
        let root = workspace(
            "disabled",
            &[("crates/sim/src/a.rs", "fn f() { x.unwrap(); }\n")],
        );
        let cfg = LintConfig {
            disabled_rules: vec![Rule::PanicUnwrap],
            ..LintConfig::default()
        };
        let report = run(&root, &cfg, &EngineOptions::default()).expect("run");
        assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
    }
}
