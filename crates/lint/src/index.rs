//! The workspace index: per-file pass-1 summaries, keyed by path.
//!
//! Pass 1 produces one [`FileSummary`] per file (parsed items, raw
//! per-file diagnostics, allow directives); the index is the ordered
//! collection pass 2's cross-file rules query. Summaries are exactly
//! what the incremental cache stores, so a cached file re-enters the
//! index without being re-read.

use crate::allow::Allows;
use crate::diagnostics::Diagnostic;
use crate::items::FileItems;
use crate::FileClass;
use std::collections::BTreeMap;

/// Everything pass 1 knows about one file.
#[derive(Debug, Clone)]
pub struct FileSummary {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Parsed item model.
    pub items: FileItems,
    /// Raw per-file findings, before allow filtering (includes the
    /// malformed-directive findings, which are never filtered).
    pub raw_diagnostics: Vec<Diagnostic>,
    /// Allow directives, with used-tracking state.
    pub allows: Allows,
}

impl FileSummary {
    /// The file's role classification.
    #[must_use]
    pub fn class(&self) -> FileClass {
        crate::classify(&self.path)
    }
}

/// All pass-1 summaries, ordered by path for deterministic pass-2
/// iteration.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    pub files: BTreeMap<String, FileSummary>,
}

impl WorkspaceIndex {
    /// Builds the index from pass-1 results.
    #[must_use]
    pub fn new(summaries: Vec<FileSummary>) -> Self {
        WorkspaceIndex {
            files: summaries.into_iter().map(|s| (s.path.clone(), s)).collect(),
        }
    }

    /// All functions owned by `owner` (any file) whose name is in
    /// `names`, in path order.
    pub fn fns_of<'a>(
        &'a self,
        owner: &'a str,
        names: &'a [String],
    ) -> impl Iterator<Item = &'a crate::items::FnDef> {
        self.files.values().flat_map(move |f| {
            f.items
                .fns
                .iter()
                .filter(move |fd| fd.owner.as_deref() == Some(owner) && names.contains(&fd.name))
        })
    }

    /// The union of hash-typed names across every file. Pass 2's
    /// ordering rule checks iteration receivers against this set.
    #[must_use]
    pub fn hash_typed_names(&self) -> std::collections::BTreeSet<&str> {
        self.files
            .values()
            .flat_map(|f| f.items.hash_typed.iter().map(String::as_str))
            .collect()
    }
}
