//! Pass-1 item model: a lightweight structural parse of one file.
//!
//! Built on [`crate::lexer`] output — still no `syn`, no type
//! information. The parser recognizes just enough item structure for the
//! cross-file rules: struct fields, enum variants, functions (with their
//! `impl` owner and the set of identifiers their bodies mention),
//! two-segment paths like `ObsEvent::Collision` (classified as
//! construction or pattern), map-iteration method calls, and
//! `name: HashMap<..>` type ascriptions. Everything inside
//! `#[cfg(test)]` items is ignored, mirroring the per-file rules.

use crate::lexer::Token;
use crate::rules::cfg_test_spans;
use std::collections::BTreeSet;

/// One named struct field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// A `struct` definition (tuple and unit structs carry no fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    pub name: String,
    pub line: u32,
    pub fields: Vec<Field>,
}

/// One enum variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    pub name: String,
    pub line: u32,
    pub col: u32,
}

/// An `enum` definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnumDef {
    pub name: String,
    pub line: u32,
    pub variants: Vec<Variant>,
}

/// A function with a body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The `impl` target type, if the fn lives in an impl block
    /// (`impl Trait for Foo` attributes to `Foo`).
    pub owner: Option<String>,
    pub name: String,
    pub line: u32,
    /// Sorted, deduplicated identifiers the body mentions. Identifiers
    /// immediately followed by `: _` are excluded: `seed: _` in a
    /// destructuring pattern explicitly discards the field, which must
    /// not count as consumption.
    pub body_idents: Vec<String>,
}

impl FnDef {
    /// Whether the body mentions `ident`.
    #[must_use]
    pub fn mentions(&self, ident: &str) -> bool {
        self.body_idents
            .binary_search_by(|s| s.as_str().cmp(ident))
            .is_ok()
    }
}

/// A two-segment path use `Head::Tail` with both segments capitalized
/// (an enum-variant shape), outside `use` statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathUse {
    pub head: String,
    pub tail: String,
    pub line: u32,
    pub col: u32,
    /// Heuristic: true when the site builds a value, false when it
    /// matches one (followed by `=>`/`|`/`=`, or braces containing `..`).
    pub construction: bool,
}

/// A `.keys()` / `.values()` / `.iter()`-family call with its receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterCall {
    pub recv: String,
    pub method: String,
    pub line: u32,
    pub col: u32,
}

/// Everything pass 1 extracts from one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileItems {
    pub structs: Vec<StructDef>,
    pub enums: Vec<EnumDef>,
    pub fns: Vec<FnDef>,
    pub path_uses: Vec<PathUse>,
    pub iter_calls: Vec<IterCall>,
    /// Names ascribed a `HashMap`/`HashSet` type anywhere in the file
    /// (fields, locals, parameters).
    pub hash_typed: Vec<String>,
}

/// Iteration methods whose hash-ordered result order leaks into
/// control flow.
pub const MAP_ITER_METHODS: &[&str] = &[
    "keys",
    "values",
    "values_mut",
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
];

/// Parses the item model from a token stream, skipping `#[cfg(test)]`
/// items.
#[must_use]
pub fn parse_items(tokens: &[Token]) -> FileItems {
    // cfg(test) spans are complete items, so dropping them keeps the
    // remaining stream brace-balanced.
    let spans = cfg_test_spans(tokens);
    let kept: Vec<&Token> = tokens
        .iter()
        .enumerate()
        .filter(|(i, _)| !spans.iter().any(|&(a, b)| *i >= a && *i <= b))
        .map(|(_, t)| t)
        .collect();

    let mut items = FileItems::default();
    parse_structure(&kept, None, &mut items);
    parse_flat(&kept, &mut items);
    items
}

/// Structural scan: structs, enums, impl blocks, fns. `owner` is the
/// enclosing impl target, if any.
fn parse_structure(tokens: &[&Token], owner: Option<&str>, items: &mut FileItems) {
    let mut i = 0;
    while i < tokens.len() {
        match tokens[i].ident() {
            Some("struct") if tokens.get(i + 1).and_then(|t| t.ident()).is_some() => {
                i = parse_struct(tokens, i, items);
            }
            Some("enum") if tokens.get(i + 1).and_then(|t| t.ident()).is_some() => {
                i = parse_enum(tokens, i, items);
            }
            Some("impl") => {
                i = parse_impl(tokens, i, items);
            }
            Some("fn") if tokens.get(i + 1).and_then(|t| t.ident()).is_some() => {
                i = parse_fn(tokens, i, owner, items);
            }
            _ => i += 1,
        }
    }
}

/// Skips a generic parameter list starting at a `<`, returning the index
/// just past the matching `>`. The lexer joins `>>`, which closes two
/// levels.
fn skip_generics(tokens: &[&Token], open: usize) -> usize {
    let mut depth = 0i64;
    let mut i = open;
    while i < tokens.len() {
        let t = tokens[i];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct("<<") {
            depth += 2;
        } else if t.is_punct(">") {
            depth -= 1;
        } else if t.is_punct(">>") {
            depth -= 2;
        }
        i += 1;
        if depth <= 0 {
            return i;
        }
    }
    i
}

/// Finds the matching close delimiter for the open one at `open`.
fn matching(tokens: &[&Token], open: usize, open_p: &str, close_p: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(open_p) {
            depth += 1;
        } else if t.is_punct(close_p) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Parses `struct Name ...` at `i`; returns the index past the item.
fn parse_struct(tokens: &[&Token], i: usize, items: &mut FileItems) -> usize {
    let name_tok = tokens[i + 1];
    let name = name_tok.ident().unwrap_or_default().to_owned();
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_generics(tokens, j);
    }
    // Skip a `where` clause up to the body or terminator.
    while j < tokens.len()
        && !tokens[j].is_punct("{")
        && !tokens[j].is_punct("(")
        && !tokens[j].is_punct(";")
    {
        j += 1;
    }
    let mut def = StructDef {
        name,
        line: name_tok.line,
        fields: Vec::new(),
    };
    match tokens.get(j) {
        Some(t) if t.is_punct("{") => {
            let close = matching(tokens, j, "{", "}").unwrap_or(tokens.len() - 1);
            parse_fields(&tokens[j + 1..close], &mut def.fields);
            items.structs.push(def);
            close + 1
        }
        Some(t) if t.is_punct("(") => {
            // Tuple struct: unnamed fields, nothing for the field rules.
            let close = matching(tokens, j, "(", ")").unwrap_or(tokens.len() - 1);
            items.structs.push(def);
            close + 1
        }
        _ => {
            items.structs.push(def);
            j + 1
        }
    }
}

/// Parses named fields from the tokens between a struct's braces.
fn parse_fields(body: &[&Token], out: &mut Vec<Field>) {
    let mut i = 0;
    while i < body.len() {
        // Field start: skip attributes and visibility.
        while i < body.len() {
            let t = body[i];
            if t.is_punct("#") && body.get(i + 1).is_some_and(|t| t.is_punct("[")) {
                i = matching(body, i + 1, "[", "]").map_or(body.len(), |c| c + 1);
            } else if t.ident() == Some("pub") {
                i += 1;
                if body.get(i).is_some_and(|t| t.is_punct("(")) {
                    i = matching(body, i, "(", ")").map_or(body.len(), |c| c + 1);
                }
            } else {
                break;
            }
        }
        let Some(name_tok) = body.get(i) else { break };
        if name_tok.ident().is_some() && body.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            out.push(Field {
                name: name_tok.ident().unwrap_or_default().to_owned(),
                line: name_tok.line,
                col: name_tok.col,
            });
        }
        // Skip the type up to the next top-level comma. Commas nest
        // inside (), [], {} and generic <> pairs.
        let (mut paren, mut angle) = (0i64, 0i64);
        while i < body.len() {
            let t = body[i];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                paren += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                paren -= 1;
            } else if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct(">>") {
                angle -= 2;
            } else if t.is_punct(",") && paren == 0 && angle <= 0 {
                i += 1;
                break;
            }
            i += 1;
        }
    }
}

/// Parses `enum Name { ... }` at `i`; returns the index past the item.
fn parse_enum(tokens: &[&Token], i: usize, items: &mut FileItems) -> usize {
    let name_tok = tokens[i + 1];
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_generics(tokens, j);
    }
    while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
        j += 1;
    }
    let mut def = EnumDef {
        name: name_tok.ident().unwrap_or_default().to_owned(),
        line: name_tok.line,
        variants: Vec::new(),
    };
    if tokens.get(j).is_some_and(|t| t.is_punct("{")) {
        let close = matching(tokens, j, "{", "}").unwrap_or(tokens.len() - 1);
        let body = &tokens[j + 1..close];
        let mut k = 0;
        while k < body.len() {
            // Variant start: skip attributes.
            while k < body.len()
                && body[k].is_punct("#")
                && body.get(k + 1).is_some_and(|t| t.is_punct("["))
            {
                k = matching(body, k + 1, "[", "]").map_or(body.len(), |c| c + 1);
            }
            let Some(tok) = body.get(k) else { break };
            if let Some(name) = tok.ident() {
                def.variants.push(Variant {
                    name: name.to_owned(),
                    line: tok.line,
                    col: tok.col,
                });
            }
            // Skip payload/discriminant to the next top-level comma.
            let mut depth = 0i64;
            while k < body.len() {
                let t = body[k];
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                    depth -= 1;
                } else if t.is_punct(",") && depth == 0 {
                    k += 1;
                    break;
                }
                k += 1;
            }
        }
        items.enums.push(def);
        close + 1
    } else {
        items.enums.push(def);
        j + 1
    }
}

/// Parses `impl ... { ... }` at `i`, attributing contained fns to the
/// impl target; returns the index past the block.
fn parse_impl(tokens: &[&Token], i: usize, items: &mut FileItems) -> usize {
    // Header: everything up to the body `{` at angle depth 0.
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_generics(tokens, j);
    }
    let header_start = j;
    let mut angle = 0i64;
    while j < tokens.len() {
        let t = tokens[j];
        if t.is_punct("<") {
            angle += 1;
        } else if t.is_punct(">") {
            angle -= 1;
        } else if t.is_punct(">>") {
            angle -= 2;
        } else if t.is_punct("{") && angle <= 0 {
            break;
        }
        j += 1;
    }
    if j >= tokens.len() {
        return tokens.len();
    }
    let header = &tokens[header_start..j];
    // `impl Trait for Type` attributes to Type; plain `impl Type` to
    // Type. The owner is the last path segment before generics/where.
    let owner = impl_owner(header);
    let close = matching(tokens, j, "{", "}").unwrap_or(tokens.len() - 1);
    parse_structure(&tokens[j + 1..close], owner.as_deref(), items);
    close + 1
}

/// Extracts the impl target's base name from the header tokens.
fn impl_owner(header: &[&Token]) -> Option<String> {
    // Cut the header at `where` (a `for` inside a where clause is a
    // higher-ranked bound, not the trait/type separator).
    let where_at = header
        .iter()
        .position(|t| t.ident() == Some("where"))
        .unwrap_or(header.len());
    let header = &header[..where_at];
    let type_start = header
        .iter()
        .position(|t| t.ident() == Some("for"))
        .map_or(0, |f| f + 1);
    // The type is a path `a::b::Name<..>`: take the last ident before a
    // generic open or the end.
    let mut owner = None;
    let mut k = type_start;
    while k < header.len() {
        let t = header[k];
        if let Some(id) = t.ident() {
            if id != "dyn" && id != "mut" {
                owner = Some(id.to_owned());
            }
            k += 1;
        } else if t.is_punct("::") || t.is_punct("&") {
            k += 1;
        } else {
            break;
        }
    }
    owner
}

/// Parses `fn name ... { body }` at `i`; returns the index past it.
fn parse_fn(tokens: &[&Token], i: usize, owner: Option<&str>, items: &mut FileItems) -> usize {
    let name_tok = tokens[i + 1];
    let mut j = i + 2;
    if tokens.get(j).is_some_and(|t| t.is_punct("<")) {
        j = skip_generics(tokens, j);
    }
    // Parameter list.
    if tokens.get(j).is_some_and(|t| t.is_punct("(")) {
        j = matching(tokens, j, "(", ")").map_or(tokens.len(), |c| c + 1);
    }
    // Return type / where clause, up to the body or a trait-decl `;`.
    while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("{")) {
        return j + 1;
    }
    let close = matching(tokens, j, "{", "}").unwrap_or(tokens.len() - 1);
    let body = &tokens[j + 1..close];
    let mut idents = BTreeSet::new();
    for (k, t) in body.iter().enumerate() {
        let Some(id) = t.ident() else { continue };
        // `name: _` in a destructuring pattern discards the field; that
        // mention must not count as consumption.
        let discarded = body.get(k + 1).is_some_and(|n| n.is_punct(":"))
            && body.get(k + 2).is_some_and(|n| n.ident() == Some("_"));
        if !discarded {
            idents.insert(id.to_owned());
        }
    }
    items.fns.push(FnDef {
        owner: owner.map(str::to_owned),
        name: name_tok.ident().unwrap_or_default().to_owned(),
        line: name_tok.line,
        body_idents: idents.into_iter().collect(),
    });
    close + 1
}

/// Flat scan: path uses, iteration calls, hash-type ascriptions.
fn parse_flat(tokens: &[&Token], items: &mut FileItems) {
    let mut in_use = false;
    for (i, t) in tokens.iter().enumerate() {
        if t.ident() == Some("use") {
            in_use = true;
        } else if t.is_punct(";") {
            in_use = false;
        }

        // `Head::Tail` enum-variant-shaped paths.
        if !in_use && t.is_punct("::") && i >= 1 && tokens[i - 1].ident().is_some_and(starts_upper)
        {
            if let Some(tail) = tokens.get(i + 1).and_then(|t| t.ident()) {
                if starts_upper(tail) {
                    items.path_uses.push(PathUse {
                        head: tokens[i - 1].ident().unwrap_or_default().to_owned(),
                        tail: tail.to_owned(),
                        line: tokens[i + 1].line,
                        col: tokens[i + 1].col,
                        construction: is_construction(tokens, i + 1),
                    });
                }
            }
        }

        // `recv.method(` iteration calls.
        if t.is_punct(".") && i >= 1 {
            if let (Some(recv), Some(method)) = (
                tokens[i - 1].ident(),
                tokens.get(i + 1).and_then(|t| t.ident()),
            ) {
                if MAP_ITER_METHODS.contains(&method)
                    && tokens.get(i + 2).is_some_and(|t| t.is_punct("("))
                {
                    items.iter_calls.push(IterCall {
                        recv: recv.to_owned(),
                        method: method.to_owned(),
                        line: tokens[i + 1].line,
                        col: tokens[i + 1].col,
                    });
                }
            }
        }

        // `name: HashMap<..>` / `name: path::HashSet<..>` ascriptions.
        if t.is_punct(":") && i >= 1 {
            if let Some(name) = tokens[i - 1].ident() {
                let mut k = i + 1;
                let mut hash = false;
                while k < tokens.len() {
                    let t = tokens[k];
                    if matches!(t.ident(), Some("mut" | "dyn")) || t.is_punct("&") {
                        k += 1;
                    } else if let Some(seg) = t.ident() {
                        if seg == "HashMap" || seg == "HashSet" {
                            hash = true;
                        }
                        k += 1;
                        if !tokens.get(k).is_some_and(|t| t.is_punct("::")) {
                            break;
                        }
                        k += 1;
                    } else {
                        break;
                    }
                }
                if hash {
                    items.hash_typed.push(name.to_owned());
                }
            }
        }
    }
    items.hash_typed.sort();
    items.hash_typed.dedup();
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

/// Classifies the path use whose tail ident sits at `tail_idx`:
/// construction builds a value, a pattern matches one.
fn is_construction(tokens: &[&Token], tail_idx: usize) -> bool {
    let after_payload = match tokens.get(tail_idx + 1) {
        Some(t) if t.is_punct("{") => {
            let Some(close) = matching(tokens, tail_idx + 1, "{", "}") else {
                return false;
            };
            // `..` at the payload's top level is a rest pattern
            // (`ObsEvent::Decode { .. }`) — never construction syntax
            // for an enum variant.
            let mut depth = 0i64;
            for t in &tokens[tail_idx + 2..close] {
                if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if t.is_punct("..") && depth == 0 {
                    return false;
                }
            }
            close + 1
        }
        Some(t) if t.is_punct("(") => match matching(tokens, tail_idx + 1, "(", ")") {
            Some(close) => close + 1,
            None => return false,
        },
        _ => tail_idx + 1,
    };
    !matches!(
        tokens.get(after_payload),
        Some(t) if t.is_punct("=>") || t.is_punct("|") || t.is_punct("=")
    )
}

#[cfg(test)]
mod tests {
    use super::parse_items;
    use crate::lexer::lex;

    fn items(src: &str) -> super::FileItems {
        parse_items(&lex(src).tokens)
    }

    #[test]
    fn struct_fields_with_attrs_and_visibility() {
        let src = "#[derive(Debug)]\npub struct Cfg<T: Clone> {\n    /// doc\n    pub map: BTreeMap<u32, u64>,\n    #[allow(dead_code)]\n    pub(crate) inner: Vec<(u8, u8)>,\n    plain: T,\n}\n";
        let it = items(src);
        assert_eq!(it.structs.len(), 1);
        let s = &it.structs[0];
        assert_eq!(s.name, "Cfg");
        let names: Vec<&str> = s.fields.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["map", "inner", "plain"]);
        assert_eq!(s.fields[0].line, 4);
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let it = items("struct A(u32, u64);\nstruct B;\n");
        assert_eq!(it.structs.len(), 2);
        assert!(it.structs.iter().all(|s| s.fields.is_empty()));
    }

    #[test]
    fn enum_variants_with_payloads() {
        let src = "pub enum E {\n    Unit,\n    #[doc = \"x\"]\n    Tup(u32),\n    Struct { a: u8, b: u8 },\n    Disc = 4,\n}\n";
        let it = items(src);
        assert_eq!(it.enums.len(), 1);
        let names: Vec<&str> = it.enums[0]
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(names, ["Unit", "Tup", "Struct", "Disc"]);
    }

    #[test]
    fn fns_attribute_to_their_impl_owner() {
        let src = "impl Cfg {\n    pub fn digest(&self) -> String { fnv(self.seed) }\n}\nimpl fmt::Display for Cfg {\n    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, \"x\") }\n}\nfn free() { helper() }\n";
        let it = items(src);
        let owners: Vec<(Option<&str>, &str)> = it
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            owners,
            [
                (Some("Cfg"), "digest"),
                (Some("Cfg"), "fmt"),
                (None, "free")
            ]
        );
        assert!(it.fns[0].mentions("seed"));
        assert!(!it.fns[0].mentions("helper"));
        assert!(it.fns[2].mentions("helper"));
    }

    #[test]
    fn discarded_destructuring_does_not_count_as_mention() {
        let src = "fn f(c: Cfg) {\n    let Cfg { seed: _, rate } = c;\n    use_it(rate);\n}\n";
        let it = items(src);
        assert!(!it.fns[0].mentions("seed"));
        assert!(it.fns[0].mentions("rate"));
    }

    #[test]
    fn path_uses_distinguish_construction_from_pattern() {
        let src = "fn f(e: ObsEvent) {\n    match e {\n        ObsEvent::Decode { .. } => {}\n        ObsEvent::Collision { victim_tx, .. } => { let _ = victim_tx; }\n        _ => {}\n    }\n    emit(ObsEvent::Decode { tx: 1, clean: true });\n    if let ObsEvent::Note { category, detail } = other() { drop((category, detail)); }\n}\n";
        let it = items(src);
        let find = |tail: &str, construction: bool| {
            it.path_uses
                .iter()
                .filter(|p| {
                    p.head == "ObsEvent" && p.tail == tail && p.construction == construction
                })
                .count()
        };
        assert_eq!(find("Decode", false), 1, "match arm is a pattern");
        assert_eq!(find("Decode", true), 1, "emit() is a construction");
        assert_eq!(find("Collision", false), 1, "rest pattern is a pattern");
        assert_eq!(find("Note", false), 1, "if-let binding is a pattern");
    }

    #[test]
    fn use_statements_are_not_path_uses() {
        let it = items(
            "use ObsEvent::Note;\nfn f() { g(ObsEvent::Note { category: c, detail: d }); }\n",
        );
        assert_eq!(it.path_uses.len(), 1);
        assert!(it.path_uses[0].construction);
        assert_eq!(it.path_uses[0].line, 2);
    }

    #[test]
    fn iter_calls_and_hash_ascriptions() {
        let src = "struct S { pub counts: HashMap<u32, u64>, names: std::collections::HashSet<String> }\nfn f(s: &S) {\n    for k in s.counts.keys() { use_it(k); }\n    let v: Vec<u32> = s.items.iter().collect();\n}\n";
        let it = items(src);
        assert_eq!(it.hash_typed, ["counts", "names"]);
        let calls: Vec<(&str, &str)> = it
            .iter_calls
            .iter()
            .map(|c| (c.recv.as_str(), c.method.as_str()))
            .collect();
        assert_eq!(calls, [("counts", "keys"), ("items", "iter")]);
    }

    #[test]
    fn cfg_test_items_are_invisible() {
        let src = "struct Real { pub a: u32 }\n#[cfg(test)]\nmod tests {\n    struct Fake { pub b: u32 }\n    fn t() { ObsEvent::Ghost { x: 1 }; }\n}\n";
        let it = items(src);
        assert_eq!(it.structs.len(), 1);
        assert_eq!(it.structs[0].name, "Real");
        assert!(it.path_uses.is_empty());
    }
}
