//! A lossy Rust tokenizer, sufficient for token-pattern lint rules.
//!
//! This is deliberately *not* a full Rust parser (the build environment has
//! no `syn`): it produces identifiers, literals, and punctuation with exact
//! line/column positions, strips comments into a side channel (line
//! comments carry their text so the `lint:allow` scanner can read them),
//! and understands just enough of the grammar — raw strings, nested block
//! comments, lifetimes vs. char literals, numeric suffixes — to never
//! mis-tokenize real workspace source.

/// What a token is, as far as the rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// Punctuation; multi-character operators (`==`, `::`, `+=`, …) are
    /// joined into one token.
    Punct(String),
    /// An integer literal (`42`, `0xFF_u32`).
    Int,
    /// A float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// A string, byte-string, or char literal.
    Text,
}

/// One token with its 1-indexed source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    #[must_use]
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the exact punctuation `p`.
    #[must_use]
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokenKind::Punct(s) if s == p)
    }
}

/// A `//` comment (any flavor) with its text and position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineComment {
    /// Text after the leading slashes, untrimmed.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// The output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<LineComment>,
}

/// Multi-character operators, longest first so maximal munch works.
const JOINED: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor<'_> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `source`, accumulating tokens and line comments.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(b) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let mut bytes = Vec::new();
                while let Some(c) = cur.peek(0) {
                    if c == b'\n' {
                        break;
                    }
                    bytes.push(c);
                    cur.bump();
                }
                // The input came from `read_to_string`, so the bytes are
                // valid UTF-8; decode rather than widening bytes to chars
                // (which would mangle em-dashes in allow reasons).
                let text = String::from_utf8_lossy(&bytes).into_owned();
                out.comments.push(LineComment { text, line, col });
            }
            b'/' if cur.peek(1) == Some(b'*') => {
                skip_block_comment(&mut cur);
            }
            b'r' | b'b' | b'c' if starts_string_like(&cur) => {
                lex_string_like(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Text,
                    line,
                    col,
                });
            }
            b'"' => {
                lex_plain_string(&mut cur);
                out.tokens.push(Token {
                    kind: TokenKind::Text,
                    line,
                    col,
                });
            }
            b'\'' => {
                if lex_quote(&mut cur) {
                    out.tokens.push(Token {
                        kind: TokenKind::Text,
                        line,
                        col,
                    });
                }
                // Lifetimes produce no token; no rule needs them.
            }
            _ if is_ident_start(b) => {
                let mut ident = String::new();
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    ident.push(char::from(c));
                    cur.bump();
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident(ident),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                out.tokens.push(Token { kind, line, col });
            }
            _ => {
                let mut punct = None;
                for op in JOINED {
                    if cur.starts_with(op) {
                        for _ in 0..op.len() {
                            cur.bump();
                        }
                        punct = Some((*op).to_owned());
                        break;
                    }
                }
                let punct = punct.unwrap_or_else(|| {
                    cur.bump();
                    char::from(b).to_string()
                });
                out.tokens.push(Token {
                    kind: TokenKind::Punct(punct),
                    line,
                    col,
                });
            }
        }
    }
    out
}

fn skip_block_comment(cur: &mut Cursor<'_>) {
    cur.bump();
    cur.bump();
    let mut depth = 1u32;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some(b'/'), Some(b'*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some(b'*'), Some(b'/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

/// Whether the cursor sits on a prefixed string (`r"`, `r#"`, `b"`,
/// `br#"`, `c"`, …) rather than an identifier starting with r/b/c or a raw
/// identifier like `r#fn`.
fn starts_string_like(cur: &Cursor<'_>) -> bool {
    let mut idx = 0;
    let mut raw = false;
    while idx < 2 {
        match cur.peek(idx) {
            Some(b'r') => {
                raw = true;
                idx += 1;
            }
            Some(b'b' | b'c') => idx += 1,
            _ => break,
        }
    }
    if raw {
        // Hashes are only legal after an `r`, and must lead to a quote
        // (otherwise this is a raw identifier).
        while cur.peek(idx) == Some(b'#') {
            idx += 1;
        }
    }
    cur.peek(idx) == Some(b'"')
}

fn lex_string_like(cur: &mut Cursor<'_>) {
    let mut raw = false;
    while let Some(b) = cur.peek(0) {
        match b {
            b'r' => {
                raw = true;
                cur.bump();
            }
            b'b' | b'c' => {
                cur.bump();
            }
            _ => break,
        }
    }
    if raw {
        let mut hashes = 0usize;
        while cur.peek(0) == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        loop {
            match cur.bump() {
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && cur.peek(0) == Some(b'#') {
                        seen += 1;
                        cur.bump();
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
                None => return,
            }
        }
    } else {
        lex_plain_string(cur);
    }
}

fn lex_plain_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        match b {
            b'\\' => {
                cur.bump();
            }
            b'"' => return,
            _ => {}
        }
    }
}

/// Lexes a `'`-introduced token; returns true for a char literal, false
/// for a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> bool {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some(b'\\') => {
            // Escaped char literal.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.bump() {
                if c == b'\'' {
                    break;
                }
            }
            true
        }
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            if cur.peek(1) == Some(b'\'') {
                cur.bump();
                cur.bump();
                true
            } else {
                // Lifetime: consume the identifier.
                while let Some(c) = cur.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    cur.bump();
                }
                false
            }
        }
        Some(_) => {
            // Something like `'('` — a char literal of punctuation.
            cur.bump();
            if cur.peek(0) == Some(b'\'') {
                cur.bump();
            }
            true
        }
        None => false,
    }
}

fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    if cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x' | b'o' | b'b')) {
        cur.bump();
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_alphanumeric() || c == b'_' {
                cur.bump();
            } else {
                break;
            }
        }
        return TokenKind::Int;
    }
    while let Some(c) = cur.peek(0) {
        match c {
            b'0'..=b'9' | b'_' => {
                cur.bump();
            }
            b'.' => {
                // Distinguish `1.0` (float) from `1.max(..)` and `1..n`.
                match cur.peek(1) {
                    Some(d) if d.is_ascii_digit() => {
                        float = true;
                        cur.bump();
                    }
                    Some(d) if is_ident_start(d) || d == b'.' => break,
                    _ => {
                        float = true;
                        cur.bump();
                        break;
                    }
                }
            }
            b'e' | b'E' => {
                // Exponent only if followed by digits (or sign + digits).
                let next = cur.peek(1);
                let exp = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some(b'+' | b'-') => cur.peek(2).is_some_and(|d| d.is_ascii_digit()),
                    _ => false,
                };
                if !exp {
                    break;
                }
                float = true;
                cur.bump();
                cur.bump();
            }
            _ if is_ident_start(c) => {
                // Type suffix (`u64`, `f32`, `usize`).
                let mut suffix = String::new();
                while let Some(s) = cur.peek(0) {
                    if !is_ident_continue(s) {
                        break;
                    }
                    suffix.push(char::from(s));
                    cur.bump();
                }
                if suffix == "f32" || suffix == "f64" {
                    float = true;
                }
                break;
            }
            _ => break,
        }
    }
    if float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::{lex, TokenKind};

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" here"#;
        "##;
        assert!(!idents(src).iter().any(|i| i == "HashMap"));
        let lexed = lex(src);
        assert!(lexed.comments.iter().any(|c| c.text.contains("HashMap")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let texts = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Text)
            .count();
        assert_eq!(texts, 1, "only 'x' is a literal");
        assert!(idents(src).contains(&"str".to_owned()));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let kinds: Vec<TokenKind> = lex("1 1.0 2e3 0xFF 1u64 1f64 x.0 1.max(2) 0..10")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        let floats = kinds.iter().filter(|k| **k == TokenKind::Float).count();
        let ints = kinds.iter().filter(|k| **k == TokenKind::Int).count();
        assert_eq!(floats, 3, "1.0, 2e3, 1f64");
        // 1, 0xFF, 1u64, 0 (tuple idx), 1 (receiver), 2, 0, 10
        assert_eq!(ints, 8);
    }

    #[test]
    fn joined_punctuation_stays_joined() {
        let lexed = lex("a == b != c :: d += e .. f ..= g");
        let puncts: Vec<String> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Punct(p) => Some(p.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "+=", "..", "..="]);
    }

    #[test]
    fn positions_are_one_indexed() {
        let lexed = lex("ab\n  cd");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
