//! airguard-lint — workspace static analysis for determinism, unit
//! safety, and panic hygiene.
//!
//! The tool lexes every `.rs` file under the workspace (no type
//! information, no `syn`; the offline build has neither) and applies
//! token-pattern rules scoped by file role:
//!
//! * **determinism** rules run in library/binary code of the simulation
//!   crates named in `lint.toml` (`sim`, `phy`, `mac`, `core`, `net` by
//!   default);
//! * **unit-safety** rules run in all library/binary code except the
//!   designated unit modules (`crates/sim/src/time.rs`,
//!   `crates/phy/src/units.rs`);
//! * **panic-hygiene** rules run in library code only — tests, benches,
//!   examples, and binaries may panic;
//! * the **print-hygiene** rule runs in library code of the `crates/*`
//!   crates only — CLI `main.rs`/`bin/` targets and the workspace-root
//!   facade own their stdout and may print;
//! * the **hot-path** rule (`hot-path-clone`) runs in library code of
//!   the hot-path crates named in `lint.toml` (`sim`, `phy`, `mac` by
//!   default), where a deep frame copy defeats the shared `FrameRef`
//!   allocation;
//! * the **fault-path** rule (`fault-path-unwrap`) bans `unwrap`/`expect`
//!   in library code of the fault-injection crates named in `lint.toml`
//!   (`fault` by default) plus the listed injector call-site files — a
//!   panicking injector aborts the cell it was degrading and shows up as
//!   a harness failure instead of an injected one;
//! * the **bounded-channel** rule bans capacity-less queue construction
//!   (`unbounded()`, `mpsc::channel()`, `VecDeque::new()`) in the
//!   streaming crates named in `lint.toml` — a grow-forever queue turns
//!   overload into silent memory growth instead of backpressure.
//!
//! `#[cfg(test)]` items are exempt everywhere, and any finding can be
//! suppressed line-by-line with `// lint:allow(<rule>) — <reason>`.

pub mod allow;
pub mod cache;
pub mod config;
pub mod diagnostics;
pub mod engine;
pub mod index;
pub mod items;
pub mod lexer;
pub mod output;
pub mod rules;
pub mod xrules;

use config::LintConfig;
use diagnostics::Diagnostic;
use rules::RuleSet;
use std::path::{Path, PathBuf};

/// What role a file plays, which decides the applicable rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code (`src/` of a crate) — all rules apply.
    Library,
    /// Binary or build-script code — panics allowed, determinism and
    /// unit rules still apply.
    Bin,
    /// Tests, benches, examples, fixtures — panic-free and
    /// determinism rules are waived.
    TestLike,
}

/// Classifies a workspace-relative path (forward slashes).
#[must_use]
pub fn classify(path: &str) -> FileClass {
    let segments: Vec<&str> = path.split('/').collect();
    if segments
        .iter()
        .any(|s| matches!(*s, "tests" | "benches" | "examples" | "fixtures"))
    {
        return FileClass::TestLike;
    }
    if segments.contains(&"bin")
        || path.ends_with("src/main.rs")
        || path.ends_with("build.rs")
        || path == "main.rs"
    {
        return FileClass::Bin;
    }
    FileClass::Library
}

/// The crate directory name a path belongs to (`crates/mac/src/dcf.rs`
/// → `mac`); the workspace root package has no entry under `crates/`.
#[must_use]
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

/// Which rule families apply to `path` under `cfg`.
#[must_use]
pub fn rules_for(path: &str, cfg: &LintConfig) -> RuleSet {
    let class = classify(path);
    let in_sim_crate =
        crate_of(path).is_some_and(|c| cfg.determinism_crates.iter().any(|d| d == c));
    let in_hot_crate = crate_of(path).is_some_and(|c| cfg.hot_path_crates.iter().any(|d| d == c));
    let on_fault_path = crate_of(path)
        .is_some_and(|c| cfg.fault_path_crates.iter().any(|d| d == c))
        || cfg.fault_path_files.iter().any(|f| f == path);
    let in_ordering_crate =
        crate_of(path).is_some_and(|c| cfg.ordering_crates.iter().any(|d| d == c));
    let in_bounded_crate =
        crate_of(path).is_some_and(|c| cfg.bounded_channel_crates.iter().any(|d| d == c));
    RuleSet {
        determinism: class != FileClass::TestLike && in_sim_crate,
        units: class != FileClass::TestLike && !cfg.unit_exempt.iter().any(|e| e == path),
        panics: class == FileClass::Library,
        prints: class == FileClass::Library && crate_of(path).is_some(),
        hot_path: class == FileClass::Library && in_hot_crate,
        fault_path: class == FileClass::Library && on_fault_path,
        ordering: class != FileClass::TestLike
            && in_ordering_crate
            && !cfg.ordering_exempt.iter().any(|e| e == path),
        bounded_channel: class != FileClass::TestLike && in_bounded_crate,
    }
}

/// Lints one file's source text: pass-1 rules only (no cross-file rules
/// and no unused-allow reporting, which both need the full workspace).
/// `path` is the workspace-relative path used both for rule scoping and
/// in diagnostics.
#[must_use]
pub fn lint_source(path: &str, source: &str, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut summary = engine::analyze(path, source, cfg);
    let raw = std::mem::take(&mut summary.raw_diagnostics);
    let mut diags = summary.allows.apply(raw);
    diags.append(&mut summary.allows.diagnostics);
    diags.sort();
    // Two operators flanking one identifier can flag the same token
    // twice; report each site once.
    diags.dedup();
    diags
}

/// Walks `root` and lints every non-excluded `.rs` file with the full
/// two-pass engine (single worker, no cache). Returns diagnostics
/// sorted by path, line, column.
pub fn lint_tree(root: &Path, cfg: &LintConfig) -> std::io::Result<Vec<Diagnostic>> {
    let report = engine::run(root, cfg, &engine::EngineOptions::default())?;
    Ok(report.diagnostics)
}

/// Recursively gathers workspace-relative `.rs` paths, honouring the
/// exclude list and skipping dotted directories.
pub(crate) fn collect_rs_files(
    root: &Path,
    dir: &Path,
    cfg: &LintConfig,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.') {
            continue;
        }
        let rel = relative(root, &path);
        if cfg
            .exclude
            .iter()
            .any(|e| rel == *e || rel.starts_with(&format!("{e}/")))
        {
            continue;
        }
        let kind = entry.file_type()?;
        if kind.is_dir() {
            collect_rs_files(root, &path, cfg, out)?;
        } else if kind.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn relative(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy().replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::{classify, crate_of, lint_source, rules_for, FileClass};
    use crate::config::LintConfig;
    use crate::diagnostics::Rule;

    #[test]
    fn classification_by_role() {
        assert_eq!(classify("crates/mac/src/dcf.rs"), FileClass::Library);
        assert_eq!(classify("crates/net/tests/stress.rs"), FileClass::TestLike);
        assert_eq!(classify("crates/bench/benches/hot.rs"), FileClass::TestLike);
        assert_eq!(classify("src/bin/airguard.rs"), FileClass::Bin);
        assert_eq!(classify("crates/cli/src/main.rs"), FileClass::Bin);
        assert_eq!(classify("build.rs"), FileClass::Bin);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
    }

    #[test]
    fn crate_extraction() {
        assert_eq!(crate_of("crates/mac/src/dcf.rs"), Some("mac"));
        assert_eq!(crate_of("src/lib.rs"), None);
    }

    #[test]
    fn rule_scoping_follows_config() {
        let cfg = LintConfig::default();
        let lib = rules_for("crates/mac/src/dcf.rs", &cfg);
        assert!(lib.determinism && lib.units && lib.panics && lib.prints && lib.hot_path);

        // metrics is not a simulation crate: no determinism or hot-path
        // rules.
        let metrics = rules_for("crates/metrics/src/lib.rs", &cfg);
        assert!(!metrics.determinism && metrics.units && metrics.panics && !metrics.hot_path);

        // net is a determinism crate but not a hot-path crate: its
        // frame handling goes through the scratch-buffer runner, which
        // legitimately holds `FrameRef`s.
        let net = rules_for("crates/net/src/runner.rs", &cfg);
        assert!(net.determinism && !net.hot_path);

        // Tests get none of the families.
        let test = rules_for("crates/mac/tests/backoff.rs", &cfg);
        assert!(!test.determinism && !test.units && !test.panics && !test.prints);
        assert!(!test.hot_path);

        // Binaries may panic (and print) but must stay unit-safe.
        let cli = rules_for("crates/cli/src/main.rs", &cfg);
        assert!(!cli.panics && !cli.prints && cli.units);

        // The workspace-root facade is library code but not a `crates/*`
        // member: panic rules apply, the print rule does not.
        let root = rules_for("src/lib.rs", &cfg);
        assert!(root.panics && !root.prints);

        // The unit modules are exempt from unit arithmetic rules.
        let time = rules_for("crates/sim/src/time.rs", &cfg);
        assert!(!time.units && time.determinism);

        // The bounded-channel scope is workspace-specific: nothing by
        // default, library AND binary code once a crate is listed.
        assert!(!rules_for("crates/net/src/runner.rs", &cfg).bounded_channel);
        let bounded = LintConfig {
            bounded_channel_crates: vec!["net".into()],
            ..Default::default()
        };
        assert!(rules_for("crates/net/src/runner.rs", &bounded).bounded_channel);
        assert!(rules_for("crates/net/src/main.rs", &bounded).bounded_channel);
        assert!(!rules_for("crates/net/tests/stress.rs", &bounded).bounded_channel);

        // The fault crate and the injector call-site files carry the
        // fault-path rule; other library code does not.
        assert!(rules_for("crates/fault/src/plan.rs", &cfg).fault_path);
        assert!(rules_for("crates/phy/src/medium.rs", &cfg).fault_path);
        assert!(rules_for("crates/mac/src/drift.rs", &cfg).fault_path);
        assert!(rules_for("crates/net/src/faults.rs", &cfg).fault_path);
        assert!(!rules_for("crates/mac/src/dcf.rs", &cfg).fault_path);
        // Fault-crate tests may unwrap like everyone else's.
        assert!(!rules_for("crates/fault/tests/plan.rs", &cfg).fault_path);
    }

    #[test]
    fn lint_source_end_to_end() {
        let cfg = LintConfig::default();
        let src =
            "use std::collections::HashMap;\nfn f(x: u64) -> u64 { x.checked_add(1).unwrap() }\n";
        let diags = lint_source("crates/mac/src/x.rs", src, &cfg);
        let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![Rule::DeterminismMap, Rule::PanicUnwrap]);

        // Same source in a non-sim crate loses the determinism finding.
        let diags = lint_source("crates/metrics/src/x.rs", src, &cfg);
        let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
        assert_eq!(rules, vec![Rule::PanicUnwrap]);

        // And in a test file, everything is waived.
        assert!(lint_source("crates/mac/tests/x.rs", src, &cfg).is_empty());
    }
}
