//! airguard-lint CLI.
//!
//! ```text
//! airguard-lint [--root DIR] [--config FILE] [FILES...]
//! ```
//!
//! With no file arguments, lints every `.rs` file under the root
//! (default: the workspace root containing `lint.toml`, else the
//! current directory). Prints `file:line:col: rule-id: message` per
//! finding, sorted; exits 1 if any violation was found, 2 on usage or
//! configuration errors.

use airguard_lint::config::LintConfig;
use airguard_lint::lint_source;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut config = None;
    let mut files = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                root = Some(PathBuf::from(v));
            }
            "--config" => {
                let v = it.next().ok_or("--config requires a file argument")?;
                config = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("usage: airguard-lint [--root DIR] [--config FILE] [FILES...]");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => files.push(file.to_owned()),
        }
    }
    let root = root.unwrap_or_else(|| find_root(&std::env::current_dir().unwrap_or_default()));
    Ok(Args {
        root,
        config,
        files,
    })
}

/// Walks upward from `start` looking for `lint.toml` next to a
/// `Cargo.toml`; falls back to `start` itself.
fn find_root(start: &Path) -> PathBuf {
    let mut dir = start;
    loop {
        if dir.join("lint.toml").is_file() && dir.join("Cargo.toml").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return start.to_path_buf(),
        }
    }
}

fn load_config(args: &Args) -> Result<LintConfig, String> {
    let path = match &args.config {
        Some(explicit) => explicit.clone(),
        None => {
            let default = args.root.join("lint.toml");
            if !default.is_file() {
                return Ok(LintConfig::default());
            }
            default
        }
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    LintConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn run() -> Result<usize, String> {
    let args = parse_args()?;
    let cfg = load_config(&args)?;

    let diags = if args.files.is_empty() {
        airguard_lint::lint_tree(&args.root, &cfg)
            .map_err(|e| format!("walking {}: {e}", args.root.display()))?
    } else {
        let mut diags = Vec::new();
        for file in &args.files {
            let source =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let rel = file
                .strip_prefix(&format!("{}/", args.root.display()))
                .unwrap_or(file);
            diags.extend(lint_source(rel, &source, &cfg));
        }
        diags.sort();
        diags
    };

    for d in &diags {
        println!("{d}");
    }
    Ok(diags.len())
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!(
                "airguard-lint: {n} violation{}",
                if n == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("airguard-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
