//! airguard-lint CLI.
//!
//! ```text
//! airguard-lint [--root DIR] [--config FILE] [--workers N]
//!               [--format text|json|sarif] [--no-cache] [--fix-cache]
//!               [--cache-dir DIR] [FILES...]
//! ```
//!
//! With no file arguments, runs the two-pass engine over every `.rs`
//! file under the root (default: the workspace root containing
//! `lint.toml`, else the current directory), serving unchanged files
//! from the incremental cache under `target/lint-cache/`. Prints
//! `file:line:col: rule-id: message` per finding (or the chosen
//! structured format), sorted; exits 1 if any violation was found, 2 on
//! usage or configuration errors. Cache statistics go to stderr so the
//! report streams are byte-stable.

use airguard_lint::config::LintConfig;
use airguard_lint::engine::{CacheMode, EngineOptions};
use airguard_lint::{lint_source, output};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: airguard-lint [--root DIR] [--config FILE] [--workers N] \
[--format text|json|sarif] [--no-cache] [--fix-cache] [--cache-dir DIR] [FILES...]";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    files: Vec<String>,
    workers: usize,
    format: Format,
    cache: CacheMode,
    cache_dir: Option<PathBuf>,
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

fn parse_args() -> Result<Args, String> {
    let mut root = None;
    let mut config = None;
    let mut files = Vec::new();
    let mut workers = default_workers();
    let mut format = Format::Text;
    let mut cache = CacheMode::Enabled;
    let mut cache_dir = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root requires a directory argument")?;
                root = Some(PathBuf::from(v));
            }
            "--config" => {
                let v = it.next().ok_or("--config requires a file argument")?;
                config = Some(PathBuf::from(v));
            }
            "--workers" => {
                let v = it.next().ok_or("--workers requires a count argument")?;
                workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--workers needs a positive integer, got `{v}`"))?;
            }
            "--format" => {
                let v = it.next().ok_or("--format requires text|json|sarif")?;
                format = match v.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => return Err(format!("unknown format `{other}`; use text|json|sarif")),
                };
            }
            "--no-cache" => cache = CacheMode::Disabled,
            "--fix-cache" => cache = CacheMode::Rebuild,
            "--cache-dir" => {
                let v = it
                    .next()
                    .ok_or("--cache-dir requires a directory argument")?;
                cache_dir = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => files.push(file.to_owned()),
        }
    }
    let root = root.unwrap_or_else(|| find_root(&std::env::current_dir().unwrap_or_default()));
    Ok(Args {
        root,
        config,
        files,
        workers,
        format,
        cache,
        cache_dir,
    })
}

/// Walks upward from `start` looking for `lint.toml` next to a
/// `Cargo.toml`; falls back to `start` itself.
fn find_root(start: &Path) -> PathBuf {
    let mut dir = start;
    loop {
        if dir.join("lint.toml").is_file() && dir.join("Cargo.toml").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return start.to_path_buf(),
        }
    }
}

fn load_config(args: &Args) -> Result<LintConfig, String> {
    let path = match &args.config {
        Some(explicit) => explicit.clone(),
        None => {
            let default = args.root.join("lint.toml");
            if !default.is_file() {
                return Ok(LintConfig::default());
            }
            default
        }
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let cfg = LintConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    // An explicit config gets the full workspace cross-check: a scope
    // that names nothing real silently disables its rule.
    if let Err(errors) = cfg.validate(&args.root) {
        return Err(format!(
            "{} does not match the workspace:\n  {}",
            path.display(),
            errors.join("\n  ")
        ));
    }
    Ok(cfg)
}

fn run() -> Result<usize, String> {
    let args = parse_args()?;
    let cfg = load_config(&args)?;

    let diags = if args.files.is_empty() {
        let opts = EngineOptions {
            workers: args.workers,
            cache: args.cache,
            cache_dir: args.cache_dir.clone(),
        };
        let report = airguard_lint::engine::run(&args.root, &cfg, &opts)
            .map_err(|e| format!("walking {}: {e}", args.root.display()))?;
        eprintln!(
            "airguard-lint: {} files analyzed, {} cached ({} total)",
            report.files_analyzed, report.files_cached, report.files_total
        );
        report.diagnostics
    } else {
        // Single-file mode is pass-1 only: cross-file rules need the
        // whole tree.
        let mut diags = Vec::new();
        for file in &args.files {
            let source =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let rel = file
                .strip_prefix(&format!("{}/", args.root.display()))
                .unwrap_or(file);
            diags.extend(lint_source(rel, &source, &cfg));
        }
        diags.sort();
        diags
    };

    match args.format {
        Format::Text => print!("{}", output::to_text(&diags)),
        Format::Json => print!("{}", output::to_json(&diags)),
        Format::Sarif => print!("{}", output::to_sarif(&diags)),
    }
    Ok(diags.len())
}

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(n) => {
            eprintln!(
                "airguard-lint: {n} violation{}",
                if n == 1 { "" } else { "s" }
            );
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("airguard-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
