//! Report renderers: grep-friendly text, deterministic JSON, and
//! SARIF 2.1.0 for code-scanning upload.
//!
//! All three formats are pure functions of the sorted diagnostic list,
//! so the bytes are identical for any worker count and any cache state.
//! JSON is emitted by hand (the offline build has no serde_json); keys
//! are written in a fixed order and strings escaped per RFC 8259.

use crate::cache::TOOL_VERSION;
use crate::diagnostics::{Diagnostic, Rule};
use std::fmt::Write as _;

/// One diagnostic per line, `path:line:col: rule: message`.
#[must_use]
pub fn to_text(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{d}");
    }
    out
}

/// A stable JSON document: tool header plus the diagnostics array.
#[must_use]
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"tool\": {},", json_str(TOOL_VERSION));
    let _ = writeln!(out, "  \"count\": {},", diags.len());
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        let sep = if i + 1 < diags.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n    {{\"path\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}}}{sep}",
            json_str(&d.path),
            d.line,
            d.col,
            json_str(d.rule.id()),
            json_str(&d.message),
        );
    }
    if diags.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// SARIF 2.1.0: one run, the full rule table, one result per
/// diagnostic.
#[must_use]
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let (name, version) = TOOL_VERSION.split_once(' ').unwrap_or((TOOL_VERSION, "0"));
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(
        "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n",
    );
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    let _ = writeln!(out, "          \"name\": {},", json_str(name));
    let _ = writeln!(out, "          \"version\": {},", json_str(version));
    out.push_str("          \"informationUri\": \"https://example.invalid/airguard\",\n");
    out.push_str("          \"rules\": [");
    for (i, rule) in Rule::ALL.iter().enumerate() {
        let sep = if i + 1 < Rule::ALL.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}{sep}",
            json_str(rule.id()),
            json_str(rule.description()),
        );
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, d) in diags.iter().enumerate() {
        let sep = if i + 1 < diags.len() { "," } else { "" };
        let _ = write!(
            out,
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{sep}",
            json_str(d.rule.id()),
            json_str(&d.message),
            json_str(&d.path),
            d.line,
            d.col,
        );
    }
    if diags.is_empty() {
        out.push_str("]\n    }\n  ]\n}\n");
    } else {
        out.push_str("\n      ]\n    }\n  ]\n}\n");
    }
    out
}

/// RFC 8259 string escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::{to_json, to_sarif, to_text};
    use crate::diagnostics::{Diagnostic, Rule};

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                path: "crates/sim/src/a.rs".into(),
                line: 3,
                col: 7,
                rule: Rule::DeterminismMap,
                message: "HashMap is hash-ordered".into(),
            },
            Diagnostic {
                path: "crates/net/src/b.rs".into(),
                line: 10,
                col: 1,
                rule: Rule::DigestCompleteness,
                message: "field `rate` says \"no\"".into(),
            },
        ]
    }

    #[test]
    fn text_is_one_diag_per_line() {
        let text = to_text(&sample());
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("crates/sim/src/a.rs:3:7: determinism-map:"));
    }

    #[test]
    fn json_escapes_and_counts() {
        let json = to_json(&sample());
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("says \\\"no\\\""));
        assert!(json.contains("\"rule\": \"digest-completeness\""));
        let empty = to_json(&[]);
        assert!(empty.contains("\"count\": 0"));
        assert!(empty.contains("\"diagnostics\": []"));
    }

    #[test]
    fn sarif_carries_schema_rule_table_and_locations() {
        let sarif = to_sarif(&sample());
        assert!(sarif.contains("\"version\": \"2.1.0\""));
        assert!(sarif.contains("sarif-schema-2.1.0.json"));
        // Every rule appears in the driver table.
        for rule in Rule::ALL {
            assert!(
                sarif.contains(&format!("{{\"id\": \"{}\"", rule.id())),
                "{}",
                rule.id()
            );
        }
        assert!(sarif.contains("\"startLine\": 3"));
        assert!(sarif.contains("\"uri\": \"crates/sim/src/a.rs\""));
        let empty = to_sarif(&[]);
        assert!(empty.contains("\"results\": []"));
    }
}
