//! The three rule families: determinism, unit-safety, panic hygiene.
//!
//! All rules are token-pattern checks over [`crate::lexer`] output — no
//! type information. Where a faithful "only flag HashMap *iteration*"
//! check would need type inference, the rule instead bans the hash-ordered
//! container type outright in the configured simulation crates; that is
//! both mechanically checkable and strictly stronger (see DESIGN.md,
//! "Static analysis & determinism guarantees").

use crate::diagnostics::{Diagnostic, Rule};
use crate::lexer::{Token, TokenKind};

/// Which rule families apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// Determinism rules (time sources, ambient RNG, hash-ordered maps).
    pub determinism: bool,
    /// Unit-safety rules (raw time arithmetic, float equality).
    pub units: bool,
    /// Panic-hygiene rules (`unwrap`/`expect`/`panic!`-family).
    pub panics: bool,
    /// Print-hygiene rule (`println!`-family in crate library code).
    pub prints: bool,
    /// Hot-path allocation rule (`.clone()` of frame values in the
    /// simulation hot-path crates).
    pub hot_path: bool,
    /// Fault-path hygiene rule (`unwrap`/`expect` in the fault crate and
    /// at the injector call sites): a fault injector that panics turns a
    /// simulated failure into a real one.
    pub fault_path: bool,
    /// Ordering-hygiene rule (`Ordering::Relaxed` outside the designated
    /// counter modules of the ordering-scoped crates).
    pub ordering: bool,
    /// Bounded-queue rule (unbounded channel constructors and
    /// capacity-less `VecDeque` queues in the streaming crates): every
    /// producer→consumer queue must carry an explicit capacity so
    /// overload surfaces as backpressure.
    pub bounded_channel: bool,
}

/// Index spans (token ranges) belonging to `#[cfg(test)]` items; rules do
/// not apply inside them.
#[must_use]
pub fn cfg_test_spans(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            let close = match matching(tokens, i + 1, "[", "]") {
                Some(c) => c,
                None => break,
            };
            if attr_is_cfg_test(&tokens[i + 2..close]) {
                if let Some(end) = item_end(tokens, close + 1) {
                    spans.push((i, end));
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Whether the attribute tokens are exactly `cfg(test)` — `cfg(not(test))`
/// and friends keep their code linted.
fn attr_is_cfg_test(attr: &[Token]) -> bool {
    let idents: Vec<&str> = attr.iter().filter_map(Token::ident).collect();
    idents == ["cfg", "test"]
}

/// Finds the token index closing the delimiter opened at `open_idx`.
fn matching(tokens: &[Token], open_idx: usize, open: &str, close: &str) -> Option<usize> {
    let mut depth = 0i64;
    for (i, t) in tokens.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Finds the end of the item starting at `start` (first top-level `;`, or
/// the brace block's closing `}`), skipping further attributes.
fn item_end(tokens: &[Token], start: usize) -> Option<usize> {
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("#") && tokens.get(i + 1).is_some_and(|t| t.is_punct("[")) {
            i = matching(tokens, i + 1, "[", "]")? + 1;
        } else if t.is_punct(";") {
            return Some(i);
        } else if t.is_punct("{") {
            return matching(tokens, i, "{", "}");
        } else {
            i += 1;
        }
    }
    None
}

/// Runs the enabled rule families over one file's tokens, returning
/// every raw finding. Allow filtering happens centrally (in
/// [`crate::allow::Allows::apply`]) so directives can be tracked as
/// used or stale.
#[must_use]
pub fn check(path: &str, tokens: &[Token], rules: RuleSet) -> Vec<Diagnostic> {
    let skip = cfg_test_spans(tokens);
    let skipped = |idx: usize| skip.iter().any(|&(a, b)| idx >= a && idx <= b);
    let aliases = unit_typed_aliases(tokens);
    let mut diags = Vec::new();

    let mut push = |token: &Token, rule: Rule, message: String| {
        diags.push(Diagnostic {
            path: path.to_owned(),
            line: token.line,
            col: token.col,
            rule,
            message,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        if skipped(i) {
            continue;
        }
        if rules.determinism {
            determinism_at(tokens, i, t, &mut push);
        }
        if rules.units {
            units_at(tokens, i, t, &aliases, &mut push);
        }
        if rules.panics {
            panics_at(tokens, i, t, &mut push);
        }
        if rules.prints {
            prints_at(tokens, i, t, &mut push);
        }
        if rules.hot_path {
            hot_path_at(tokens, i, t, &mut push);
        }
        if rules.fault_path {
            fault_path_at(tokens, i, t, &mut push);
        }
        if rules.ordering {
            ordering_at(tokens, i, t, &mut push);
        }
        if rules.bounded_channel {
            bounded_channel_at(tokens, i, t, &mut push);
        }
    }
    diags
}

fn determinism_at(
    tokens: &[Token],
    i: usize,
    t: &Token,
    push: &mut impl FnMut(&Token, Rule, String),
) {
    let Some(ident) = t.ident() else { return };
    match ident {
        "Instant" | "SystemTime" => push(
            t,
            Rule::DeterminismTime,
            format!(
                "`{ident}` reads the wall clock, which differs across runs; \
                 simulation code must derive time from the scheduler's virtual clock"
            ),
        ),
        "thread_rng" => push(
            t,
            Rule::DeterminismRng,
            "`thread_rng` draws from ambient per-thread state; derive randomness from \
             `MasterSeed::stream` so a seed reproduces the run"
                .to_owned(),
        ),
        "random" => {
            let qualified_rand =
                i >= 2 && tokens[i - 1].is_punct("::") && tokens[i - 2].ident() == Some("rand");
            if qualified_rand {
                push(
                    t,
                    Rule::DeterminismRng,
                    "`rand::random` draws from ambient per-thread state; derive randomness \
                     from `MasterSeed::stream` so a seed reproduces the run"
                        .to_owned(),
                );
            }
        }
        "HashMap" | "HashSet" => {
            let btree = if ident == "HashMap" {
                "BTreeMap"
            } else {
                "BTreeSet"
            };
            push(
                t,
                Rule::DeterminismMap,
                format!(
                    "`{ident}` iterates in per-process hash order, which can reorder \
                     simulation events between runs; use `{btree}` or an explicitly \
                     sorted snapshot"
                ),
            );
        }
        _ => {}
    }
}

/// Arithmetic operators the unit-safety rule guards.
const ARITH_OPS: &[&str] = &["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];

/// Identifiers that denote microsecond quantities.
fn is_time_ident(ident: &str) -> bool {
    ident.ends_with("_us") || ident.ends_with("_usec") || matches!(ident, "slot" | "sifs" | "difs")
}

/// Whether the token can end an expression (making a following `-`/`*`
/// binary rather than unary).
fn ends_expression(t: &Token) -> bool {
    match &t.kind {
        TokenKind::Ident(_) | TokenKind::Int | TokenKind::Float | TokenKind::Text => true,
        TokenKind::Punct(p) => p == ")" || p == "]" || p == "?",
    }
}

/// Locals bound straight from a same-named field — `let sifs =
/// timing.sifs;` — carry the field's unit type (`SimDuration`), not a
/// raw integer, so arithmetic on them is already unit-checked. Collects
/// those alias names for the whole file.
fn unit_typed_aliases(tokens: &[Token]) -> std::collections::BTreeSet<String> {
    let mut aliases = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].ident() == Some("let") {
            // `let [mut] NAME = ... ;` — record NAME if the initializer
            // reads a field of the same name.
            let mut j = i + 1;
            if tokens.get(j).and_then(Token::ident) == Some("mut") {
                j += 1;
            }
            let Some(name) = tokens.get(j).and_then(Token::ident) else {
                i += 1;
                continue;
            };
            if tokens.get(j + 1).is_some_and(|t| t.is_punct("=")) {
                let mut k = j + 2;
                while k < tokens.len() && !tokens[k].is_punct(";") {
                    if tokens[k].is_punct(".")
                        && tokens.get(k + 1).and_then(Token::ident) == Some(name)
                    {
                        aliases.insert(name.to_owned());
                        break;
                    }
                    k += 1;
                }
            }
        }
        i += 1;
    }
    aliases
}

fn units_at(
    tokens: &[Token],
    i: usize,
    t: &Token,
    aliases: &std::collections::BTreeSet<String>,
    push: &mut impl FnMut(&Token, Rule, String),
) {
    let TokenKind::Punct(op) = &t.kind else {
        return;
    };

    if op == "==" || op == "!=" {
        let float_adjacent = (i > 0 && tokens[i - 1].kind == TokenKind::Float)
            || tokens
                .get(i + 1)
                .is_some_and(|n| n.kind == TokenKind::Float);
        if float_adjacent {
            push(
                t,
                Rule::FloatEq,
                format!(
                    "`{op}` on floating-point values is representation-sensitive; compare \
                     with an explicit tolerance, e.g. `(a - b).abs() < EPS`"
                ),
            );
        }
        return;
    }

    if !ARITH_OPS.contains(&op.as_str()) {
        return;
    }
    // Binary position only: `a - b`, not `-b` / `*ptr` / `&mut` noise.
    let binary = op.ends_with('=') || (i > 0 && ends_expression(&tokens[i - 1]));
    if !binary {
        return;
    }
    let prev = if i > 0 { Some(&tokens[i - 1]) } else { None };
    let next = tokens.get(i + 1);
    // Float-typed arithmetic is out of scope for the integer-time rule.
    if prev.is_some_and(|p| p.kind == TokenKind::Float)
        || next.is_some_and(|n| n.kind == TokenKind::Float)
    {
        return;
    }
    // A time-named operand is exempt when it is provably unit-typed:
    // a field access (`timing.sifs` — unit quantities live in typed
    // struct fields) or a local aliasing such a field.
    let exempt = |idx: usize| {
        let field_access = idx > 0 && tokens[idx - 1].is_punct(".");
        let aliased = tokens[idx]
            .ident()
            .is_some_and(|name| aliases.contains(name));
        field_access || aliased
    };
    let offender = [i.checked_sub(1), Some(i + 1)]
        .into_iter()
        .flatten()
        .filter(|&idx| idx < tokens.len() && !exempt(idx))
        .map(|idx| &tokens[idx])
        .find(|tok| tok.ident().is_some_and(is_time_ident));
    if let Some(offender) = offender {
        let name = offender.ident().unwrap_or_default();
        push(
            offender,
            Rule::UnitMixedArith,
            format!(
                "raw integer arithmetic on time quantity `{name}`; convert through \
                 `SimDuration`/`SimTime` (crates/sim/src/time.rs) or the unit types in \
                 crates/phy/src/units.rs so units stay checked"
            ),
        );
    }
}

/// Macros whose expansion is a panic.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

fn panics_at(tokens: &[Token], i: usize, t: &Token, push: &mut impl FnMut(&Token, Rule, String)) {
    let Some(ident) = t.ident() else { return };
    let after_dot = i > 0 && tokens[i - 1].is_punct(".");
    let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
    match ident {
        "unwrap" if after_dot && called => push(
            t,
            Rule::PanicUnwrap,
            "`.unwrap()` in library code; return a `Result`, handle the `None`/`Err` arm, \
             or justify the invariant with `// lint:allow(panic-unwrap) — <invariant>`"
                .to_owned(),
        ),
        "expect" if after_dot && called => push(
            t,
            Rule::PanicExpect,
            "`.expect(..)` in library code; return a `Result` or justify the invariant \
             with `// lint:allow(panic-expect) — <invariant>`"
                .to_owned(),
        ),
        _ if PANIC_MACROS.contains(&ident)
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
        {
            push(
                t,
                Rule::PanicMacro,
                format!(
                    "`{ident}!` in library code; return a typed error or justify with \
                     `// lint:allow(panic-macro) — <invariant>`"
                ),
            );
        }
        _ => {}
    }
}

/// Macros that write straight to the process's stdio streams.
const PRINT_MACROS: &[&str] = &["print", "println", "eprint", "eprintln"];

fn prints_at(tokens: &[Token], i: usize, t: &Token, push: &mut impl FnMut(&Token, Rule, String)) {
    let Some(ident) = t.ident() else { return };
    if PRINT_MACROS.contains(&ident) && tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) {
        push(
            t,
            Rule::PrintMacro,
            format!(
                "`{ident}!` in crate library code writes to raw stdio; emit a typed \
                 `airguard_obs::ObsEvent` (or a `note` through the trace) so output stays \
                 structured, or justify with `// lint:allow(print-macro) — <reason>`"
            ),
        );
    }
}

/// Flags `.clone()` where the receiver identifier names a frame
/// (`frame.clone()`, `self.pending_frame.clone()`, `frames.clone()`).
/// A deep frame copy on the hot path defeats the shared-`Rc` design:
/// `FrameRef::share` bumps a refcount instead. Purely lexical — a
/// frame-typed binding with an unrelated name slips through, which is
/// the usual trade for a no-type-info linter.
fn hot_path_at(tokens: &[Token], i: usize, t: &Token, push: &mut impl FnMut(&Token, Rule, String)) {
    if t.ident() != Some("clone")
        || i < 2
        || !tokens[i - 1].is_punct(".")
        || !tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
    {
        return;
    }
    let Some(receiver) = tokens[i - 2].ident() else {
        return;
    };
    if receiver.to_ascii_lowercase().contains("frame") {
        push(
            t,
            Rule::HotPathClone,
            format!(
                "`{receiver}.clone()` deep-copies a frame on the simulation hot path; \
                 share the allocation with `FrameRef::share` (a refcount bump), pass \
                 `&Frame`, or justify with `// lint:allow(hot-path-clone) — <reason>`"
            ),
        );
    }
}

/// Flags `.unwrap()` / `.expect(..)` on the fault-injection paths. The
/// injectors exist to *model* failure: a panic inside one aborts the
/// very cell whose degradation it was supposed to measure, and — worse —
/// converts an injected fault into a harness failure that the sweep's
/// retry/watchdog machinery then misattributes. Stricter than the
/// general panic rules: it also covers files whose crates are otherwise
/// allowed to panic, and carries its own ID so a blanket
/// `lint:allow(panic-unwrap)` cannot silence it.
fn fault_path_at(
    tokens: &[Token],
    i: usize,
    t: &Token,
    push: &mut impl FnMut(&Token, Rule, String),
) {
    let Some(ident) = t.ident() else { return };
    if ident != "unwrap" && ident != "expect" {
        return;
    }
    let after_dot = i > 0 && tokens[i - 1].is_punct(".");
    let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
    if after_dot && called {
        push(
            t,
            Rule::FaultPathUnwrap,
            format!(
                "`.{ident}(..)` on a fault-injection path; a panicking injector aborts \
                 the cell it was degrading and masquerades as a harness failure — \
                 return/propagate the error, or justify the invariant with \
                 `// lint:allow(fault-path-unwrap) — <invariant>`"
            ),
        );
    }
}

/// Flags `Ordering::Relaxed` outside the designated counter modules.
/// Relaxed atomics are fine for monotone counters (the exp executor's
/// task cursor, the obs sink's enable mask) but silently wrong the
/// moment two atomics must be observed consistently; keeping every
/// other use SeqCst/Acquire-Release makes the exceptions auditable.
fn ordering_at(tokens: &[Token], i: usize, t: &Token, push: &mut impl FnMut(&Token, Rule, String)) {
    if t.ident() != Some("Relaxed")
        || i < 2
        || !tokens[i - 1].is_punct("::")
        || tokens[i - 2].ident() != Some("Ordering")
    {
        return;
    }
    push(
        t,
        Rule::OrderingRelaxed,
        "`Ordering::Relaxed` outside a designated counter module; use \
         `SeqCst`/`Acquire`/`Release`, move the counter into a module listed under \
         `[ordering] relaxed-exempt`, or justify with \
         `// lint:allow(ordering-relaxed) — <why relaxed is sound here>`"
            .to_owned(),
    );
}

/// Flags queue constructions with no capacity bound in the streaming
/// crates: `unbounded()` / `unbounded_channel()` constructors,
/// `mpsc::channel()` (std's unbounded flavour — `sync_channel` is the
/// bounded one), and `VecDeque::new()` (a queue type whose capacity
/// bound lives in the surrounding code, if anywhere; `with_capacity`
/// states it). A queue that can grow without limit turns overload into
/// silent memory growth instead of observable backpressure.
fn bounded_channel_at(
    tokens: &[Token],
    i: usize,
    t: &Token,
    push: &mut impl FnMut(&Token, Rule, String),
) {
    let Some(ident) = t.ident() else { return };
    let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
    if !called {
        return;
    }
    let qualifier = |idx: usize, name: &str| {
        idx >= 2 && tokens[idx - 1].is_punct("::") && tokens[idx - 2].ident() == Some(name)
    };
    match ident {
        "unbounded" | "unbounded_channel" => push(
            t,
            Rule::BoundedChannel,
            format!(
                "`{ident}()` builds a queue with no capacity bound; use a bounded \
                 channel with an explicit overflow policy, or justify with \
                 `// lint:allow(bounded-channel) — <why growth is bounded>`"
            ),
        ),
        "channel" if qualifier(i, "mpsc") => push(
            t,
            Rule::BoundedChannel,
            "`mpsc::channel()` is unbounded; use `mpsc::sync_channel(cap)` (or the \
             crate's bounded queue) so overload surfaces as backpressure, or justify \
             with `// lint:allow(bounded-channel) — <why growth is bounded>`"
                .to_owned(),
        ),
        "new" if qualifier(i, "VecDeque") => push(
            t,
            Rule::BoundedChannel,
            "`VecDeque::new()` builds a grow-forever queue; state the bound with \
             `VecDeque::with_capacity(cap)` and enforce it at the push site, or \
             justify with `// lint:allow(bounded-channel) — <why growth is bounded>`"
                .to_owned(),
        ),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::{cfg_test_spans, check, RuleSet};
    use crate::diagnostics::Rule;
    use crate::lexer::lex;

    // `fault_path` stays off here: it flags the same `unwrap`/`expect`
    // tokens as the panic family (with a different rule ID), which would
    // double up every panic-family assertion below. It gets its own set.
    const ALL: RuleSet = RuleSet {
        determinism: true,
        units: true,
        panics: true,
        prints: true,
        hot_path: true,
        fault_path: false,
        ordering: true,
        bounded_channel: true,
    };

    const FAULT_ONLY: RuleSet = RuleSet {
        determinism: false,
        units: false,
        panics: false,
        prints: false,
        hot_path: false,
        fault_path: true,
        ordering: false,
        bounded_channel: false,
    };

    fn rules_hit(src: &str) -> Vec<Rule> {
        let lexed = lex(src);
        check("f.rs", &lexed.tokens, ALL)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }\n";
        assert_eq!(rules_hit(src), vec![Rule::PanicUnwrap]);
        let lexed = lex(src);
        assert_eq!(cfg_test_spans(&lexed.tokens).len(), 1);
    }

    #[test]
    fn cfg_not_test_is_still_linted() {
        let src = "#[cfg(not(test))]\nmod real { fn b() { y.unwrap(); } }\n";
        assert_eq!(rules_hit(src), vec![Rule::PanicUnwrap]);
    }

    #[test]
    fn determinism_patterns_fire() {
        assert_eq!(
            rules_hit("use std::time::Instant;"),
            vec![Rule::DeterminismTime]
        );
        assert_eq!(
            rules_hit("let t = SystemTime::now();"),
            vec![Rule::DeterminismTime]
        );
        assert_eq!(
            rules_hit("let mut r = rand::thread_rng();"),
            vec![Rule::DeterminismRng]
        );
        assert_eq!(
            rules_hit("let x: u8 = rand::random();"),
            vec![Rule::DeterminismRng]
        );
        assert_eq!(
            rules_hit("let m: HashMap<u32, u32> = HashMap::new();").len(),
            2
        );
        // `random` not qualified by `rand::` is someone else's method.
        assert!(rules_hit("let v = rng.random::<u64>();").is_empty());
    }

    #[test]
    fn unit_arith_flags_time_idents_only_in_integer_context() {
        assert_eq!(rules_hit("let x = now_us + 5;"), vec![Rule::UnitMixedArith]);
        assert_eq!(rules_hit("total_us += delta;"), vec![Rule::UnitMixedArith]);
        assert_eq!(rules_hit("let n = len / slot;"), vec![Rule::UnitMixedArith]);
        // Float context is exempt (the rule is about integer tick math).
        assert!(rules_hit("let f = x_us * 1.0e-6;").is_empty());
        // Non-time identifiers don't fire.
        assert!(rules_hit("let x = bytes + 5;").is_empty());
        // Unary minus is not binary arithmetic.
        assert!(rules_hit("let x = -slot_count;").is_empty());
    }

    #[test]
    fn unit_typed_operands_are_exempt() {
        // Field accesses hold unit-typed quantities (`MacTiming::sifs`
        // is a `SimDuration`), so arithmetic on them is already checked.
        assert!(rules_hit("let t = timing.sifs * 3;").is_empty());
        assert!(rules_hit("let t = self.cfg.timing.slot * 2;").is_empty());
        // A local bound from a same-named field keeps the field's type.
        assert!(rules_hit("let sifs = timing.sifs;\nlet t = sifs + cts;").is_empty());
        assert!(rules_hit("let difs = self.cfg.timing.difs;\nlet t = now + difs;").is_empty());
        // A bare local with no unit-typed provenance still fires.
        assert_eq!(
            rules_hit("fn f(difs: u64, now: u64) -> u64 { now + difs }"),
            vec![Rule::UnitMixedArith]
        );
    }

    #[test]
    fn float_eq_fires_on_literal_comparison() {
        assert_eq!(rules_hit("if x == 1.0 { }"), vec![Rule::FloatEq]);
        assert_eq!(rules_hit("if 0.5 != y { }"), vec![Rule::FloatEq]);
        assert!(rules_hit("if x == 1 { }").is_empty());
    }

    #[test]
    fn panic_family_fires() {
        assert_eq!(
            rules_hit("let v = m.get(&k).unwrap();"),
            vec![Rule::PanicUnwrap]
        );
        assert_eq!(
            rules_hit("let v = m.get(&k).expect(\"present\");"),
            vec![Rule::PanicExpect]
        );
        assert_eq!(rules_hit("panic!(\"boom\");"), vec![Rule::PanicMacro]);
        assert_eq!(rules_hit("unreachable!()"), vec![Rule::PanicMacro]);
        // Similar-but-different names are fine.
        assert!(rules_hit("let v = o.unwrap_or(0);").is_empty());
        assert!(rules_hit("std::panic::catch_unwind(f);").is_empty());
    }

    #[test]
    fn print_family_fires() {
        assert_eq!(rules_hit("println!(\"x = {x}\");"), vec![Rule::PrintMacro]);
        assert_eq!(rules_hit("eprintln!(\"warn\");"), vec![Rule::PrintMacro]);
        assert_eq!(rules_hit("print!(\".\");"), vec![Rule::PrintMacro]);
        assert_eq!(rules_hit("eprint!(\"!\");"), vec![Rule::PrintMacro]);
        // `writeln!` to an explicit sink and similar names are fine.
        assert!(rules_hit("writeln!(f, \"row\")?;").is_empty());
        assert!(rules_hit("self.println();").is_empty());
    }

    #[test]
    fn hot_path_clone_fires_on_frame_receivers() {
        assert_eq!(
            rules_hit("let copy = frame.clone();"),
            vec![Rule::HotPathClone]
        );
        assert_eq!(
            rules_hit("let f = self.pending_frame.clone();"),
            vec![Rule::HotPathClone]
        );
        assert_eq!(
            rules_hit("let all = frames.clone();"),
            vec![Rule::HotPathClone]
        );
        // Non-frame receivers, shares, and clone-adjacent names pass.
        assert!(rules_hit("let c = cfg.clone();").is_empty());
        assert!(rules_hit("let f = frame.share();").is_empty());
        assert!(rules_hit("let f = frame.clone_from(&other);").is_empty());
    }

    #[test]
    fn fault_path_rule_fires_independently_of_the_panic_family() {
        let hits = |src: &str| -> Vec<Rule> {
            let lexed = lex(src);
            check("f.rs", &lexed.tokens, FAULT_ONLY)
                .into_iter()
                .map(|d| d.rule)
                .collect()
        };
        assert_eq!(
            hits("let g = plan.burst_loss.unwrap();"),
            vec![Rule::FaultPathUnwrap]
        );
        assert_eq!(
            hits("let d = drift.get(&node).expect(\"registered\");"),
            vec![Rule::FaultPathUnwrap]
        );
        // Total methods and non-call mentions pass.
        assert!(hits("let g = plan.burst_loss.unwrap_or_default();").is_empty());
        assert!(hits("// unwrap is banned here").is_empty());
        // With both families on, the same token carries both rule IDs, so
        // allowing only the generic panic rule still leaves the
        // fault-path finding standing.
        let both = RuleSet {
            panics: true,
            ..FAULT_ONLY
        };
        let src = "let g = plan.burst_loss.unwrap(); // lint:allow(panic-unwrap) — tested above\n";
        let lexed = lex(src);
        let mut allows = crate::allow::scan("f.rs", &lexed);
        let rules: Vec<Rule> = allows
            .apply(check("f.rs", &lexed.tokens, both))
            .into_iter()
            .map(|d| d.rule)
            .collect();
        assert_eq!(rules, vec![Rule::FaultPathUnwrap]);
        assert!(allows.unused("f.rs").is_empty(), "the directive was used");
    }

    #[test]
    fn ordering_relaxed_fires_on_qualified_use_only() {
        assert_eq!(
            rules_hit("mask.load(Ordering::Relaxed);"),
            vec![Rule::OrderingRelaxed]
        );
        assert_eq!(
            rules_hit("use std::sync::atomic::Ordering::Relaxed;"),
            vec![Rule::OrderingRelaxed]
        );
        // Other orderings and bare `Relaxed` mentions pass.
        assert!(rules_hit("mask.load(Ordering::SeqCst);").is_empty());
        assert!(rules_hit("let relaxed = Relaxed;").is_empty());
    }

    #[test]
    fn bounded_channel_flags_capacityless_queues_only() {
        assert_eq!(
            rules_hit("let (tx, rx) = mpsc::channel();"),
            vec![Rule::BoundedChannel]
        );
        assert_eq!(
            rules_hit("let (tx, rx) = crossbeam::channel::unbounded();"),
            vec![Rule::BoundedChannel]
        );
        assert_eq!(
            rules_hit("let (tx, rx) = tokio::sync::mpsc::unbounded_channel();"),
            vec![Rule::BoundedChannel]
        );
        assert_eq!(
            rules_hit("let q: VecDeque<u64> = VecDeque::new();"),
            vec![Rule::BoundedChannel]
        );
        // Capacity-carrying constructors pass.
        assert!(rules_hit("let (tx, rx) = mpsc::sync_channel(64);").is_empty());
        assert!(rules_hit("let q = VecDeque::with_capacity(64);").is_empty());
        // Someone else's `channel()` or `new()` is not a queue claim.
        assert!(rules_hit("let c = radio.channel();").is_empty());
        assert!(rules_hit("let v = Vec::new();").is_empty());
        // Mentions without a call are fine.
        assert!(rules_hit("// unbounded queues are banned here").is_empty());
    }

    #[test]
    fn allows_suppress_with_reason() {
        let src = "let v = m.get(&k).unwrap(); // lint:allow(panic-unwrap) — inserted above, cannot miss\n";
        let lexed = lex(src);
        let mut allows = crate::allow::scan("f.rs", &lexed);
        let diags = allows.apply(check("f.rs", &lexed.tokens, ALL));
        assert!(diags.is_empty());
    }
}
