//! Pass-2 cross-file rules, run over the [`WorkspaceIndex`].
//!
//! * **digest-completeness** — every field of a configured struct must be
//!   consumed by at least one of its digest/identity functions, wherever
//!   those functions live. A field added to `ScenarioConfig` but not to
//!   `identity()` silently aliases distinct scenarios onto one cache
//!   key; this rule turns that into a lint failure.
//! * **obs-coverage** — every variant of a configured event enum must be
//!   handled by the listed mapping functions *and* constructed at least
//!   once outside test code. A variant nobody emits is dead telemetry; a
//!   variant the category mapping misses would be a compile error today
//!   (exhaustive match) but the rule also catches wildcard-arm drift.
//! * **ordering-hash-iter** — in the determinism crates, iterating a
//!   name that is hash-typed anywhere in the workspace
//!   (`counts.keys()`, `set.iter()`) leaks nondeterministic order into
//!   library code.
//!
//! All diagnostics are anchored to the *definition* site (field or
//! variant) or the iteration site, so `lint:allow` on that line can
//! suppress them with a reason.

use crate::config::{ItemSpec, LintConfig};
use crate::diagnostics::{Diagnostic, Rule};
use crate::index::WorkspaceIndex;
use crate::items::FnDef;
use crate::FileClass;

/// Runs every cross-file rule; returns raw (pre-allow) diagnostics.
#[must_use]
pub fn check(index: &WorkspaceIndex, cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for spec in &cfg.digest_structs {
        digest_completeness(index, spec, &mut diags);
    }
    for spec in &cfg.obs_events {
        obs_coverage(index, spec, &mut diags);
    }
    ordering_hash_iter(index, cfg, &mut diags);
    diags.sort();
    diags.dedup();
    diags
}

/// Looks up the spec's functions across the whole index, reporting a
/// spec-level diagnostic when none exist (a renamed digest fn must not
/// silently disable the rule).
fn spec_fns<'a>(
    index: &'a WorkspaceIndex,
    spec: &'a ItemSpec,
    rule: Rule,
    diags: &mut Vec<Diagnostic>,
) -> Vec<&'a FnDef> {
    let fns: Vec<&FnDef> = index.fns_of(&spec.item, &spec.fns).collect();
    if fns.is_empty() {
        diags.push(Diagnostic {
            path: spec.path.clone(),
            line: 1,
            col: 1,
            rule,
            message: format!(
                "lint.toml expects fn {} on `{}`, but no such function exists in the workspace",
                spec.fns.join("/"),
                spec.item
            ),
        });
    }
    fns
}

fn digest_completeness(index: &WorkspaceIndex, spec: &ItemSpec, diags: &mut Vec<Diagnostic>) {
    let Some(def) = index
        .files
        .get(&spec.path)
        .and_then(|f| f.items.structs.iter().find(|s| s.name == spec.item))
    else {
        diags.push(Diagnostic {
            path: spec.path.clone(),
            line: 1,
            col: 1,
            rule: Rule::DigestCompleteness,
            message: format!(
                "lint.toml expects struct `{}` in this file, but it is not defined here",
                spec.item
            ),
        });
        return;
    };
    let fns = spec_fns(index, spec, Rule::DigestCompleteness, diags);
    if fns.is_empty() {
        return;
    }
    for field in &def.fields {
        if !fns.iter().any(|f| f.mentions(&field.name)) {
            diags.push(Diagnostic {
                path: spec.path.clone(),
                line: field.line,
                col: field.col,
                rule: Rule::DigestCompleteness,
                message: format!(
                    "field `{}` of `{}` is not consumed by {}; it will not reach the digest",
                    field.name,
                    spec.item,
                    fn_list(&spec.fns),
                ),
            });
        }
    }
}

fn obs_coverage(index: &WorkspaceIndex, spec: &ItemSpec, diags: &mut Vec<Diagnostic>) {
    let Some(def) = index
        .files
        .get(&spec.path)
        .and_then(|f| f.items.enums.iter().find(|e| e.name == spec.item))
    else {
        diags.push(Diagnostic {
            path: spec.path.clone(),
            line: 1,
            col: 1,
            rule: Rule::ObsCoverage,
            message: format!(
                "lint.toml expects enum `{}` in this file, but it is not defined here",
                spec.item
            ),
        });
        return;
    };
    let fns = spec_fns(index, spec, Rule::ObsCoverage, diags);
    if fns.is_empty() {
        return;
    }
    for variant in &def.variants {
        if !fns.iter().any(|f| f.mentions(&variant.name)) {
            diags.push(Diagnostic {
                path: spec.path.clone(),
                line: variant.line,
                col: variant.col,
                rule: Rule::ObsCoverage,
                message: format!(
                    "variant `{}::{}` is not handled by {}",
                    spec.item,
                    variant.name,
                    fn_list(&spec.fns),
                ),
            });
        }
        let emitted = index.files.values().any(|f| {
            f.class() != FileClass::TestLike
                && f.items
                    .path_uses
                    .iter()
                    .any(|p| p.construction && p.head == spec.item && p.tail == variant.name)
        });
        if !emitted {
            diags.push(Diagnostic {
                path: spec.path.clone(),
                line: variant.line,
                col: variant.col,
                rule: Rule::ObsCoverage,
                message: format!(
                    "variant `{}::{}` is never emitted outside tests; dead telemetry or a missing call site",
                    spec.item, variant.name,
                ),
            });
        }
    }
}

fn ordering_hash_iter(index: &WorkspaceIndex, cfg: &LintConfig, diags: &mut Vec<Diagnostic>) {
    if cfg.ordering_crates.is_empty() {
        return;
    }
    let hash_names = index.hash_typed_names();
    for file in index.files.values() {
        if file.class() == FileClass::TestLike {
            continue;
        }
        let in_scope =
            crate::crate_of(&file.path).is_some_and(|c| cfg.ordering_crates.iter().any(|d| d == c));
        if !in_scope {
            continue;
        }
        for call in &file.items.iter_calls {
            if hash_names.contains(call.recv.as_str()) {
                diags.push(Diagnostic {
                    path: file.path.clone(),
                    line: call.line,
                    col: call.col,
                    rule: Rule::OrderingHashIter,
                    message: format!(
                        ".{}() on `{}` (hash-typed in this workspace) iterates in hash order; collect and sort, or use a BTree container",
                        call.method, call.recv,
                    ),
                });
            }
        }
    }
}

/// `identity()` / `identity()/kind()` for messages.
fn fn_list(fns: &[String]) -> String {
    fns.iter()
        .map(|f| format!("{f}()"))
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::check;
    use crate::allow;
    use crate::config::{ItemSpec, LintConfig};
    use crate::diagnostics::Rule;
    use crate::index::{FileSummary, WorkspaceIndex};
    use crate::items::parse_items;
    use crate::lexer::lex;

    fn summary(path: &str, src: &str) -> FileSummary {
        let lexed = lex(src);
        FileSummary {
            path: path.to_owned(),
            items: parse_items(&lexed.tokens),
            raw_diagnostics: Vec::new(),
            allows: allow::scan(path, &lexed),
        }
    }

    fn spec(path: &str, item: &str, fns: &[&str]) -> ItemSpec {
        ItemSpec {
            path: path.into(),
            item: item.into(),
            fns: fns.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    #[test]
    fn digest_completeness_flags_the_unhashed_field() {
        let src = "pub struct Cfg {\n    pub nodes: u32,\n    pub rate: u64,\n}\nimpl Cfg {\n    pub fn identity(&self) -> String { format!(\"{}\", self.nodes) }\n}\n";
        let index = WorkspaceIndex::new(vec![summary("crates/net/src/cfg.rs", src)]);
        let cfg = LintConfig {
            digest_structs: vec![spec("crates/net/src/cfg.rs", "Cfg", &["identity"])],
            ..LintConfig::default()
        };
        let diags = check(&index, &cfg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::DigestCompleteness);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0].message.contains("`rate`"));
    }

    #[test]
    fn digest_completeness_unions_fns_across_files() {
        // `rate` is consumed by a second identity fn in another file;
        // union semantics must not flag it.
        let a = "pub struct Cfg {\n    pub nodes: u32,\n    pub rate: u64,\n}\nimpl Cfg {\n    pub fn identity(&self) -> String { format!(\"{}\", self.nodes) }\n}\n";
        let b = "impl Cfg {\n    pub fn extra(&self) -> u64 { self.rate }\n}\n";
        let index = WorkspaceIndex::new(vec![
            summary("crates/net/src/cfg.rs", a),
            summary("crates/net/src/other.rs", b),
        ]);
        let cfg = LintConfig {
            digest_structs: vec![spec("crates/net/src/cfg.rs", "Cfg", &["identity", "extra"])],
            ..LintConfig::default()
        };
        assert!(check(&index, &cfg).is_empty());
    }

    #[test]
    fn missing_struct_and_missing_fn_are_spec_level_findings() {
        let index = WorkspaceIndex::new(vec![summary(
            "crates/net/src/cfg.rs",
            "pub struct Other;\n",
        )]);
        let cfg = LintConfig {
            digest_structs: vec![spec("crates/net/src/cfg.rs", "Cfg", &["identity"])],
            ..LintConfig::default()
        };
        let diags = check(&index, &cfg);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("not defined here"));

        let index = WorkspaceIndex::new(vec![summary(
            "crates/net/src/cfg.rs",
            "pub struct Cfg { pub n: u32 }\n",
        )]);
        let diags = check(&index, &cfg);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("no such function"), "{diags:?}");
    }

    #[test]
    fn obs_coverage_requires_mapping_and_emission() {
        let events = "pub enum Ev {\n    Seen,\n    Unmapped,\n    Unemitted,\n}\nimpl Ev {\n    pub fn kind(&self) -> u8 {\n        match self { Ev::Seen => 0, Ev::Unemitted => 1, _ => 2 }\n    }\n}\n";
        let site = "fn emit_all() { sink(Ev::Seen); }\n";
        let test_site = "fn t() { sink(Ev::Unemitted); }\n";
        let index = WorkspaceIndex::new(vec![
            summary("crates/obs/src/event.rs", events),
            summary("crates/obs/src/sink.rs", site),
            summary("crates/obs/tests/emit.rs", test_site),
        ]);
        let cfg = LintConfig {
            obs_events: vec![spec("crates/obs/src/event.rs", "Ev", &["kind"])],
            ..LintConfig::default()
        };
        let diags = check(&index, &cfg);
        let msgs: Vec<&str> = diags.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(diags.len(), 3, "{msgs:?}");
        assert!(msgs
            .iter()
            .any(|m| m.contains("`Ev::Unmapped` is not handled")));
        // Unmapped is also never emitted; Unemitted is emitted only in a
        // test file, which does not count.
        assert_eq!(
            msgs.iter().filter(|m| m.contains("never emitted")).count(),
            2
        );
        assert!(msgs
            .iter()
            .any(|m| m.contains("`Ev::Unemitted` is never emitted")));
    }

    #[test]
    fn ordering_hash_iter_is_scoped_and_cross_file() {
        // The hash ascription lives in one file, the iteration in
        // another; only the configured crates are checked.
        let decl = "pub struct Stats { pub counts: HashMap<u32, u64> }\n";
        let scoped = "fn f(s: &Stats) { for k in s.counts.keys() { g(k); } }\n";
        let index = WorkspaceIndex::new(vec![
            summary("crates/obs/src/stats.rs", decl),
            summary("crates/sim/src/report.rs", scoped),
            summary("crates/metrics/src/out.rs", scoped),
            summary("crates/sim/tests/report.rs", scoped),
        ]);
        let cfg = LintConfig {
            ordering_crates: vec!["sim".into()],
            ..LintConfig::default()
        };
        let diags = check(&index, &cfg);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, Rule::OrderingHashIter);
        assert_eq!(diags[0].path, "crates/sim/src/report.rs");

        // BTree-typed receivers never fire, even in scope.
        let btree = "pub struct S { pub m: BTreeMap<u32, u64> }\nfn f(s: &S) { for k in s.m.keys() { g(k); } }\n";
        let index = WorkspaceIndex::new(vec![summary("crates/sim/src/b.rs", btree)]);
        assert!(check(&index, &cfg).is_empty());
    }
}
