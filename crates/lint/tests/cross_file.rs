//! The acceptance scenario for digest-completeness: adding a fresh
//! field to a scenario config without touching its identity function
//! must turn the lint red — that is the drift the rule exists to catch.

use airguard_lint::config::LintConfig;
use airguard_lint::diagnostics::Rule;
use airguard_lint::lint_tree;
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Copies a fixture tree into a scratch dir the test may mutate.
fn scratch_copy(name: &str, tag: &str) -> PathBuf {
    let dest = std::env::temp_dir().join(format!("airguard-lint-seeded-{tag}"));
    let _ = std::fs::remove_dir_all(&dest);
    copy_tree(&fixture(name), &dest).expect("fixture copies");
    dest
}

fn copy_tree(from: &Path, to: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(to)?;
    for entry in std::fs::read_dir(from)? {
        let entry = entry?;
        let target = to.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_tree(&entry.path(), &target)?;
        } else {
            std::fs::copy(entry.path(), target)?;
        }
    }
    Ok(())
}

fn fixture_config(root: &Path) -> LintConfig {
    let text = std::fs::read_to_string(root.join("lint.toml")).expect("fixture lint.toml");
    LintConfig::parse(&text).expect("fixture lint.toml parses")
}

#[test]
fn seeding_a_fresh_config_field_trips_digest_completeness() {
    let root = scratch_copy("digest-completeness-clean", "digest-field");
    let cfg = fixture_config(&root);
    assert_eq!(
        lint_tree(&root, &cfg).expect("clean baseline"),
        vec![],
        "the copied tree must start clean"
    );

    // A future PR adds a knob to ScenarioConfig and forgets identity().
    let scenario = root.join("crates/net/src/scenario.rs");
    let source = std::fs::read_to_string(&scenario).expect("scenario source");
    let seeded = source.replace(
        "pub selfish_fraction: u64,",
        "pub selfish_fraction: u64,\n    pub retry_limit: u32,",
    );
    assert_ne!(seeded, source, "seed point must exist in the fixture");
    std::fs::write(&scenario, seeded).expect("seeded write");

    let diags = lint_tree(&root, &cfg).expect("seeded run");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::DigestCompleteness);
    assert!(
        diags[0].message.contains("`retry_limit`"),
        "finding should name the seeded field: {}",
        diags[0].message
    );
    assert_eq!(diags[0].path, "crates/net/src/scenario.rs");
}

#[test]
fn consuming_the_seeded_field_in_any_listed_fn_clears_the_finding() {
    let root = scratch_copy("digest-completeness-clean", "digest-consumed");
    let cfg = fixture_config(&root);
    let scenario = root.join("crates/net/src/scenario.rs");
    let source = std::fs::read_to_string(&scenario).expect("scenario source");
    // Add the field AND thread it through identity(): no finding.
    let seeded = source
        .replace(
            "pub selfish_fraction: u64,",
            "pub selfish_fraction: u64,\n    pub retry_limit: u32,",
        )
        .replace(
            "self.nodes, self.offered_load, self.selfish_fraction",
            "self.nodes, self.offered_load, self.selfish_fraction + u64::from(self.retry_limit)",
        );
    std::fs::write(&scenario, seeded).expect("seeded write");
    assert_eq!(lint_tree(&root, &cfg).expect("run"), vec![]);
}

#[test]
fn seeding_a_fresh_event_variant_trips_obs_coverage() {
    let root = scratch_copy("obs-coverage-clean", "obs-variant");
    let cfg = fixture_config(&root);
    let event = root.join("crates/obs/src/event.rs");
    let source = std::fs::read_to_string(&event).expect("event source");
    // A new variant lands with neither a category arm nor an emitter.
    let seeded = source.replace(
        "Collision { victim: u32 },",
        "Collision { victim: u32 },\n    Starvation { node: u32 },",
    );
    assert_ne!(seeded, source);
    std::fs::write(&event, seeded).expect("seeded write");

    let diags = lint_tree(&root, &cfg).expect("seeded run");
    let rules: Vec<Rule> = diags.iter().map(|d| d.rule).collect();
    assert!(
        rules.iter().all(|r| *r == Rule::ObsCoverage) && rules.len() == 2,
        "expected unmapped + unemitted findings, got {diags:?}"
    );
    assert!(diags.iter().all(|d| d.message.contains("Starvation")));
}
