//! Engine determinism and cache behavior, observed through the binary
//! exactly as CI drives it: report bytes must not depend on worker
//! count or cache temperature, and an unchanged tree must re-lint
//! entirely from cache.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run(fixture_name: &str, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_airguard-lint"))
        .arg("--root")
        .arg(fixture(fixture_name))
        .args(extra)
        .output()
        .expect("binary runs")
}

#[test]
fn reports_are_byte_identical_across_worker_counts() {
    for format in ["text", "json", "sarif"] {
        let baseline = run(
            "obs-coverage",
            &["--no-cache", "--format", format, "--workers", "1"],
        );
        assert!(
            !baseline.stdout.is_empty(),
            "violating fixture must produce a {format} report"
        );
        for workers in ["2", "4", "8"] {
            let out = run(
                "obs-coverage",
                &["--no-cache", "--format", format, "--workers", workers],
            );
            assert_eq!(
                out.stdout, baseline.stdout,
                "{format} report differs at {workers} workers"
            );
        }
    }
}

#[test]
fn unchanged_tree_relints_fully_from_cache() {
    let cache_dir = std::env::temp_dir().join("airguard-lint-warmcache-test");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cache = cache_dir.to_string_lossy().into_owned();
    let args = ["--cache-dir", cache.as_str(), "--workers", "2"];

    let cold = run("digest-completeness", &args);
    let cold_stats = String::from_utf8_lossy(&cold.stderr);
    assert!(
        cold_stats.contains("1 files analyzed, 0 cached"),
        "cold stats: {cold_stats}"
    );

    let warm = run("digest-completeness", &args);
    let warm_stats = String::from_utf8_lossy(&warm.stderr);
    assert!(
        warm_stats.contains("0 files analyzed, 1 cached"),
        "warm stats: {warm_stats}"
    );
    assert_eq!(warm.stdout, cold.stdout, "cache must not change the report");
    assert_eq!(warm.status.code(), cold.status.code());

    // --fix-cache purges and rebuilds from source.
    let rebuilt = run(
        "digest-completeness",
        &["--cache-dir", cache.as_str(), "--fix-cache"],
    );
    let rebuilt_stats = String::from_utf8_lossy(&rebuilt.stderr);
    assert!(
        rebuilt_stats.contains("1 files analyzed, 0 cached"),
        "rebuild stats: {rebuilt_stats}"
    );
    assert_eq!(rebuilt.stdout, cold.stdout);
}

#[test]
fn sarif_report_declares_schema_and_rule_table() {
    let out = run("obs-coverage", &["--no-cache", "--format", "sarif"]);
    let sarif = String::from_utf8_lossy(&out.stdout);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    assert!(sarif.contains("\"name\": \"airguard-lint\""));
    assert!(sarif.contains("\"ruleId\": \"obs-coverage\""));
    assert!(sarif.contains("\"uri\": \"crates/obs/src/event.rs\""));
}
