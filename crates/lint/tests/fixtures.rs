//! Fixture-based self-tests: each seeded fixture tree must produce its
//! rule (nonzero exit from the binary), the clean trees must pass, and
//! the diagnostic format must stay grep-friendly.

use airguard_lint::config::LintConfig;
use airguard_lint::diagnostics::Rule;
use airguard_lint::lint_tree;
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

/// Lints a fixture tree with its own `lint.toml` when present (the
/// cross-file rules are scoped per tree), else the defaults.
fn rules_in(name: &str) -> Vec<Rule> {
    let root = fixture(name);
    let cfg = match std::fs::read_to_string(root.join("lint.toml")) {
        Ok(text) => LintConfig::parse(&text).expect("fixture lint.toml parses"),
        Err(_) => LintConfig::default(),
    };
    let diags = lint_tree(&root, &cfg).expect("fixture tree readable");
    diags.iter().map(|d| d.rule).collect()
}

#[test]
fn each_seeded_fixture_trips_its_rule() {
    let cases = [
        ("determinism-time", Rule::DeterminismTime),
        ("determinism-rng", Rule::DeterminismRng),
        ("determinism-map", Rule::DeterminismMap),
        ("unit-mixed-arith", Rule::UnitMixedArith),
        ("float-eq", Rule::FloatEq),
        ("panic-unwrap", Rule::PanicUnwrap),
        ("panic-expect", Rule::PanicExpect),
        ("panic-macro", Rule::PanicMacro),
        ("print-macro", Rule::PrintMacro),
        ("hot-path-clone", Rule::HotPathClone),
        ("fault-path-unwrap", Rule::FaultPathUnwrap),
        ("bounded-channel", Rule::BoundedChannel),
        ("digest-completeness", Rule::DigestCompleteness),
        ("digest-completeness-detector", Rule::DigestCompleteness),
        ("obs-coverage", Rule::ObsCoverage),
        ("ordering-hash-iter", Rule::OrderingHashIter),
        ("ordering-relaxed", Rule::OrderingRelaxed),
        ("lint-allow-unused", Rule::AllowUnused),
    ];
    for (name, rule) in cases {
        let rules = rules_in(name);
        assert!(
            rules.contains(&rule),
            "fixture {name} should report {rule:?}, got {rules:?}"
        );
        // Fixtures are minimal: nothing outside the target family fires.
        assert!(
            rules.iter().all(|r| *r == rule),
            "fixture {name} reported extra rules: {rules:?}"
        );
    }
}

#[test]
fn clean_and_allowed_fixtures_pass() {
    for name in [
        "clean",
        "allowed-ok",
        "bounded-channel-clean",
        "digest-completeness-clean",
        "digest-completeness-detector-clean",
        "obs-coverage-clean",
        "ordering-hash-iter-clean",
        "ordering-relaxed-clean",
    ] {
        assert_eq!(rules_in(name), Vec::<Rule>::new(), "fixture {name}");
    }
}

#[test]
fn reasonless_allow_is_flagged_and_grants_nothing() {
    let rules = rules_in("lint-allow-reason");
    // The malformed directive is itself a finding, and it does not
    // suppress the unwrap it was attached to.
    assert!(rules.contains(&Rule::AllowReason));
    assert!(rules.contains(&Rule::PanicUnwrap));
}

fn run_binary(fixture_name: &str) -> std::process::Output {
    // --no-cache keeps fixture trees pristine (no target/lint-cache).
    Command::new(env!("CARGO_BIN_EXE_airguard-lint"))
        .arg("--root")
        .arg(fixture(fixture_name))
        .arg("--no-cache")
        .output()
        .expect("binary runs")
}

#[test]
fn binary_exits_nonzero_on_each_seeded_fixture() {
    for name in [
        "determinism-time",
        "determinism-rng",
        "determinism-map",
        "unit-mixed-arith",
        "float-eq",
        "panic-unwrap",
        "panic-expect",
        "panic-macro",
        "print-macro",
        "hot-path-clone",
        "fault-path-unwrap",
        "bounded-channel",
        "lint-allow-reason",
        "digest-completeness",
        "digest-completeness-detector",
        "obs-coverage",
        "ordering-hash-iter",
        "ordering-relaxed",
        "lint-allow-unused",
    ] {
        let out = run_binary(name);
        assert_eq!(
            out.status.code(),
            Some(1),
            "fixture {name}: expected exit 1, got {:?}\nstdout: {}\nstderr: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("violation"),
            "fixture {name}: summary missing from stderr"
        );
    }
}

#[test]
fn binary_exits_zero_on_clean_trees() {
    for name in [
        "clean",
        "allowed-ok",
        "bounded-channel-clean",
        "digest-completeness-clean",
        "digest-completeness-detector-clean",
        "obs-coverage-clean",
        "ordering-hash-iter-clean",
        "ordering-relaxed-clean",
    ] {
        let out = run_binary(name);
        assert_eq!(
            out.status.code(),
            Some(0),
            "fixture {name}: expected exit 0\nstdout: {}\nstderr: {}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(out.stdout.is_empty(), "clean run should print nothing");
    }
}

#[test]
fn diagnostics_use_file_line_col_rule_format() {
    let out = run_binary("determinism-map");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first = stdout.lines().next().expect("at least one diagnostic");
    // crates/net/src/routes.rs:<line>:<col>: determinism-map: ...
    let mut parts = first.splitn(4, ':');
    assert_eq!(parts.next(), Some("crates/net/src/routes.rs"));
    let line: u32 = parts.next().expect("line").parse().expect("numeric line");
    let col: u32 = parts.next().expect("col").parse().expect("numeric col");
    assert!(line > 0 && col > 0);
    assert!(parts
        .next()
        .expect("tail")
        .trim_start()
        .starts_with("determinism-map:"));
}

#[test]
fn binary_exits_two_on_bad_config() {
    let dir = std::env::temp_dir().join("airguard-lint-badcfg");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let cfg = dir.join("lint.toml");
    std::fs::write(&cfg, "nonsense = [\"x\"]\n").expect("write cfg");
    let out = Command::new(env!("CARGO_BIN_EXE_airguard-lint"))
        .arg("--root")
        .arg(&dir)
        .arg("--config")
        .arg(&cfg)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown key"));
}

#[test]
fn binary_exits_two_when_config_names_a_ghost_crate() {
    let dir = std::env::temp_dir().join("airguard-lint-ghostcfg");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("crates/sim/src")).expect("tmp tree");
    std::fs::write(dir.join("crates/sim/src/lib.rs"), "pub fn ok() {}\n").expect("write src");
    std::fs::write(dir.join("lint.toml"), "[ordering]\ncrates = [\"smi\"]\n").expect("write cfg");
    let out = Command::new(env!("CARGO_BIN_EXE_airguard-lint"))
        .arg("--root")
        .arg(&dir)
        .arg("--no-cache")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("did you mean `sim`?"),
        "expected a did-you-mean hint, got: {stderr}"
    );
}

#[test]
fn single_file_mode_lints_only_named_files() {
    let target = fixture("panic-unwrap").join("crates/metrics/src/agg.rs");
    let out = Command::new(env!("CARGO_BIN_EXE_airguard-lint"))
        .arg("--root")
        .arg(fixture("panic-unwrap"))
        .arg(&target)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("panic-unwrap"), "got: {stdout}");
}
