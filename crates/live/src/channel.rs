//! A hand-rolled bounded MPSC channel (Mutex + Condvar + ring buffer).
//!
//! The vendored `crossbeam` shim carries only scoped threads — no
//! channels — and `std::sync::mpsc::channel` is unbounded, which the
//! `bounded-channel` lint bans in this crate for a reason: the whole
//! point of the live service is that overload becomes *visible
//! backpressure* (a blocked feeder, a counted shed, a degraded mode),
//! never silent memory growth. Capacity is fixed at construction and
//! every overflow behaviour is an explicit method:
//!
//! * [`Sender::send`] — block until space (the `block` policy),
//! * [`Sender::try_send`] — fail fast (drives `sample` degradation),
//! * [`Sender::send_dropping_oldest`] — evict the queue head (the
//!   `drop-oldest` policy), returning the victim so it can be counted
//!   and reported as a typed [`airguard_obs::ObsEvent`].

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Shared queue state.
#[derive(Debug)]
struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receiver_alive: bool,
}

#[derive(Debug)]
struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when the queue gains an item or all senders leave.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or the receiver leaves.
    not_full: Condvar,
}

/// The sending half; clone one per producer.
#[derive(Debug)]
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half.
#[derive(Debug)]
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Outcome of a bounded-wait receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeout<T> {
    /// An item arrived within the deadline.
    Item(T),
    /// Every sender is gone and the queue is drained.
    Disconnected,
    /// The deadline passed with the queue still empty.
    TimedOut,
}

/// Why a send did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The receiver was dropped; the channel can never drain.
    Disconnected,
    /// The queue is at capacity (returned by [`Sender::try_send`] and by
    /// [`Sender::send_timeout`] on timeout).
    Full,
}

/// Creates a bounded channel with room for `capacity` in-flight items
/// (floored at 1: a zero-capacity rendezvous channel would deadlock the
/// single-threaded tests and serves no policy here).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let capacity = capacity.max(1);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Acquires the state lock, recovering from a poisoned mutex: a worker
/// that panicked while holding the lock leaves a structurally intact
/// queue (all mutations are single `push`/`pop` calls), and the panic
/// itself is surfaced separately by the thread scope.
fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    match shared.state.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Sender<T> {
    /// Blocks until the item fits (backpressure), or the receiver is
    /// gone.
    pub fn send(&self, item: T) -> Result<(), SendError> {
        let mut state = lock(&self.shared);
        loop {
            if !state.receiver_alive {
                return Err(SendError::Disconnected);
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = match self.shared.not_full.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Like [`Sender::send`] but gives up after `timeout` with
    /// [`SendError::Full`] — the watchdog's probe for a consumer that
    /// has stopped consuming.
    pub fn send_timeout(&self, item: T, timeout: Duration) -> Result<(), SendError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = lock(&self.shared);
        loop {
            if !state.receiver_alive {
                return Err(SendError::Disconnected);
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(SendError::Full);
            }
            state = match self.shared.not_full.wait_timeout(state, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Enqueues without blocking; [`SendError::Full`] when at capacity.
    pub fn try_send(&self, item: T) -> Result<(), SendError> {
        let mut state = lock(&self.shared);
        if !state.receiver_alive {
            return Err(SendError::Disconnected);
        }
        if state.queue.len() < state.capacity {
            state.queue.push_back(item);
            self.shared.not_empty.notify_one();
            Ok(())
        } else {
            Err(SendError::Full)
        }
    }

    /// Enqueues unconditionally, evicting the oldest queued item when at
    /// capacity. Returns the evicted item so the caller can count and
    /// report the shed — a silent drop is exactly what this crate's
    /// telemetry contract forbids.
    pub fn send_dropping_oldest(&self, item: T) -> Result<Option<T>, SendError> {
        let mut state = lock(&self.shared);
        if !state.receiver_alive {
            return Err(SendError::Disconnected);
        }
        let evicted = if state.queue.len() >= state.capacity {
            state.queue.pop_front()
        } else {
            None
        };
        state.queue.push_back(item);
        self.shared.not_empty.notify_one();
        Ok(evicted)
    }

    /// Items currently queued (a congestion probe for degraded-mode
    /// recovery; racy by nature, which is fine for a heuristic).
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.senders -= 1;
        if state.senders == 0 {
            // Wake a receiver blocked on an empty queue so it can see
            // the disconnect and finish.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks for the next item; `None` once every sender is gone and
    /// the queue is drained (the clean end-of-stream signal).
    #[must_use]
    pub fn recv(&self) -> Option<T> {
        let mut state = lock(&self.shared);
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if state.senders == 0 {
                return None;
            }
            state = match self.shared.not_empty.wait(state) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Like [`Receiver::recv`] but gives up after `timeout` — the
    /// checkpoint barrier's guard against a shard that never replies.
    pub fn recv_timeout(&self, timeout: Duration) -> RecvTimeout<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = lock(&self.shared);
        loop {
            if let Some(item) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                return RecvTimeout::Item(item);
            }
            if state.senders == 0 {
                return RecvTimeout::Disconnected;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return RecvTimeout::TimedOut;
            }
            state = match self.shared.not_empty.wait_timeout(state, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.receiver_alive = false;
        drop(state);
        // Senders blocked on a full queue must observe the disconnect.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::{bounded, SendError};
    use std::time::Duration;

    #[test]
    fn fifo_order_is_preserved() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).expect("receiver alive");
        }
        drop(tx);
        let drained: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(drained, vec![0, 1, 2, 3]);
    }

    #[test]
    fn try_send_reports_full_at_capacity() {
        let (tx, _rx) = bounded(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(SendError::Full));
        assert_eq!(tx.len(), 2);
    }

    #[test]
    fn send_dropping_oldest_returns_the_victim() {
        let (tx, rx) = bounded(2);
        assert_eq!(tx.send_dropping_oldest(1), Ok(None));
        assert_eq!(tx.send_dropping_oldest(2), Ok(None));
        assert_eq!(tx.send_dropping_oldest(3), Ok(Some(1)));
        drop(tx);
        let drained: Vec<i32> = std::iter::from_fn(|| rx.recv()).collect();
        assert_eq!(drained, vec![2, 3]);
    }

    #[test]
    fn recv_sees_disconnect_after_drain() {
        let (tx, rx) = bounded(2);
        tx.send(7).expect("receiver alive");
        drop(tx);
        assert_eq!(rx.recv(), Some(7));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError::Disconnected));
        assert_eq!(tx.try_send(1), Err(SendError::Disconnected));
        assert_eq!(tx.send_dropping_oldest(1), Err(SendError::Disconnected));
    }

    #[test]
    fn send_timeout_times_out_on_a_stuck_consumer() {
        let (tx, _rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendError::Full)
        );
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_disconnected() {
        use super::RecvTimeout;
        let (tx, rx) = bounded(2);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            RecvTimeout::TimedOut
        );
        tx.send(5).expect("receiver alive");
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            RecvTimeout::Item(5)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            RecvTimeout::Disconnected
        );
    }

    #[test]
    fn blocking_send_resumes_when_space_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0).expect("receiver alive");
        crossbeam::thread::scope(|scope| {
            scope.spawn(|_| {
                // Blocks until the main thread drains one item.
                tx.send(1).expect("receiver alive");
            });
            std::thread::sleep(Duration::from_millis(10));
            assert_eq!(rx.recv(), Some(0));
            assert_eq!(rx.recv(), Some(1));
        })
        .expect("no worker panicked");
    }

    #[test]
    fn cloned_senders_all_count_toward_disconnect() {
        let (tx, rx) = bounded(4);
        let tx2 = tx.clone();
        tx.send(1).expect("receiver alive");
        tx2.send(2).expect("receiver alive");
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }
}
