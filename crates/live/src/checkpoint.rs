//! Crash-safe snapshots of the live engine's detection state.
//!
//! A checkpoint is a small line-oriented text file:
//!
//! ```text
//! airguard.live.checkpoint.v1
//! {"station":3,"kind":"cusum","score":12.5,"observations":41,"flagged":0}
//! {"station":7,"kind":"window","diffs":[4,-1.5],"observations":40,"flagged":1}
//! {"consumed":81,"elapsed_us":902000,"counters":{"live.quarantined":2}}
//! end f00dfeed01234567 4
//! ```
//!
//! One line per station (sorted by id), then a meta line, then a footer
//! carrying the FNV-1a hash of everything above it plus the line count.
//! Writes go to a `.tmp` sibling and are published with an atomic
//! rename, so a crash mid-write leaves at most a stray temp file — the
//! previous `.ckpt` stays intact. Restore walks `*.ckpt` files newest
//! first and takes the first one whose footer validates: torn,
//! truncated, or bit-flipped snapshots are skipped with a warning, not
//! trusted and not fatal.
//!
//! Floats are written in Rust's shortest-round-trip form and read back
//! by [`crate::json`], so export → write → load → restore reproduces
//! detector state bit-for-bit — the foundation of the byte-identical
//! kill/restart guarantee.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use airguard_core::DetectorState;
use airguard_obs::fnv1a_hex;

use crate::json::JsonValue;

/// First line of every checkpoint file.
pub const HEADER: &str = "airguard.live.checkpoint.v1";

/// One station's share of a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct StationRecord {
    /// Station id (the `src` of its observations).
    pub station: u32,
    /// Exported detector internals.
    pub state: DetectorState,
    /// Observations this station's detector has consumed.
    pub observations: u64,
    /// Times this station has been flagged as misbehaving.
    pub flagged: u64,
}

/// A complete engine snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Checkpoint {
    /// Feed records consumed (valid + quarantined) when the snapshot
    /// was taken; also the resume point for replay restore.
    pub consumed: u64,
    /// Largest observation timestamp processed so far.
    pub elapsed_us: u64,
    /// Engine counters at snapshot time (the `live.*` namespace).
    pub counters: BTreeMap<String, u64>,
    /// Per-station detector state, sorted by station id.
    pub stations: Vec<StationRecord>,
}

fn f64_json(value: f64) -> String {
    // Shortest-round-trip decimal; detector state is always finite
    // (scores and sums of finite slot counts), but guard anyway since
    // `null` here would poison the file.
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".to_owned()
    }
}

fn station_line(record: &StationRecord) -> String {
    let mut line = String::from("{\"station\":");
    line.push_str(&record.station.to_string());
    line.push_str(",\"kind\":\"");
    line.push_str(record.state.kind());
    line.push('"');
    match &record.state {
        DetectorState::Window { diffs } => {
            line.push_str(",\"diffs\":[");
            for (i, diff) in diffs.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&f64_json(*diff));
            }
            line.push(']');
        }
        DetectorState::Cusum { score } => {
            line.push_str(",\"score\":");
            line.push_str(&f64_json(*score));
        }
        DetectorState::Cw {
            assigned_sum,
            observed_sum,
            samples,
        } => {
            line.push_str(",\"assigned_sum\":");
            line.push_str(&f64_json(*assigned_sum));
            line.push_str(",\"observed_sum\":");
            line.push_str(&f64_json(*observed_sum));
            line.push_str(",\"samples\":");
            line.push_str(&samples.to_string());
        }
    }
    line.push_str(",\"observations\":");
    line.push_str(&record.observations.to_string());
    line.push_str(",\"flagged\":");
    line.push_str(&record.flagged.to_string());
    line.push('}');
    line
}

fn parse_station_line(value: &JsonValue) -> Result<StationRecord, String> {
    let station = value
        .get("station")
        .and_then(JsonValue::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or("missing or out-of-range `station`")?;
    let kind = value
        .get("kind")
        .and_then(JsonValue::as_str)
        .ok_or("missing `kind`")?;
    let state = match kind {
        "window" => {
            let diffs = value
                .get("diffs")
                .and_then(JsonValue::as_arr)
                .ok_or("missing `diffs`")?
                .iter()
                .map(|v| v.as_f64().ok_or("non-finite window diff"))
                .collect::<Result<Vec<f64>, _>>()?;
            DetectorState::Window { diffs }
        }
        "cusum" => DetectorState::Cusum {
            score: value
                .get("score")
                .and_then(JsonValue::as_f64)
                .ok_or("missing or non-finite `score`")?,
        },
        "cw" => DetectorState::Cw {
            assigned_sum: value
                .get("assigned_sum")
                .and_then(JsonValue::as_f64)
                .ok_or("missing or non-finite `assigned_sum`")?,
            observed_sum: value
                .get("observed_sum")
                .and_then(JsonValue::as_f64)
                .ok_or("missing or non-finite `observed_sum`")?,
            samples: value
                .get("samples")
                .and_then(JsonValue::as_u64)
                .ok_or("missing `samples`")?,
        },
        other => return Err(format!("unknown detector kind `{other}`")),
    };
    Ok(StationRecord {
        station,
        state,
        observations: value
            .get("observations")
            .and_then(JsonValue::as_u64)
            .ok_or("missing `observations`")?,
        flagged: value
            .get("flagged")
            .and_then(JsonValue::as_u64)
            .ok_or("missing `flagged`")?,
    })
}

impl Checkpoint {
    /// Serializes the snapshot to its full file image.
    #[must_use]
    pub fn to_file_image(&self) -> String {
        let mut body = String::new();
        body.push_str(HEADER);
        body.push('\n');
        for record in &self.stations {
            body.push_str(&station_line(record));
            body.push('\n');
        }
        body.push_str("{\"consumed\":");
        body.push_str(&self.consumed.to_string());
        body.push_str(",\"elapsed_us\":");
        body.push_str(&self.elapsed_us.to_string());
        body.push_str(",\"counters\":{");
        for (i, (key, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push('"');
            airguard_obs::escape_into(key, &mut body);
            body.push_str("\":");
            body.push_str(&value.to_string());
        }
        body.push_str("}}\n");
        let digest = fnv1a_hex(body.as_bytes());
        let nlines = body.lines().count();
        format!("{body}end {digest} {nlines}\n")
    }

    /// Parses and validates a file image; any corruption (torn footer,
    /// bad hash, wrong line count, malformed line) is an error.
    pub fn parse(text: &str) -> Result<Checkpoint, String> {
        let stripped = text.strip_suffix('\n').ok_or("missing final newline")?;
        let (body, footer) = match stripped.rfind('\n') {
            Some(split) => (&text[..=split], &stripped[split + 1..]),
            None => return Err("missing footer".to_owned()),
        };
        let mut parts = footer.split(' ');
        let (tag, digest, nlines) = (parts.next(), parts.next(), parts.next());
        if tag != Some("end") || parts.next().is_some() {
            return Err("malformed footer".to_owned());
        }
        let digest = digest.ok_or("footer missing digest")?;
        let nlines: usize = nlines
            .and_then(|n| n.parse().ok())
            .ok_or("footer missing line count")?;
        if fnv1a_hex(body.as_bytes()) != digest {
            return Err("body digest mismatch".to_owned());
        }
        let lines: Vec<&str> = body.lines().collect();
        if lines.len() != nlines {
            return Err(format!(
                "line count mismatch: footer says {nlines}, body has {}",
                lines.len()
            ));
        }
        let (&header, rest) = lines.split_first().ok_or("empty body")?;
        if header != HEADER {
            return Err(format!("unknown header `{header}`"));
        }
        let (&meta_line, station_lines) = rest.split_last().ok_or("missing meta line")?;
        let meta = JsonValue::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
        let consumed = meta
            .get("consumed")
            .and_then(JsonValue::as_u64)
            .ok_or("meta missing `consumed`")?;
        let elapsed_us = meta
            .get("elapsed_us")
            .and_then(JsonValue::as_u64)
            .ok_or("meta missing `elapsed_us`")?;
        let mut counters = BTreeMap::new();
        if let Some(JsonValue::Obj(map)) = meta.get("counters") {
            for (key, value) in map {
                let count = value
                    .as_u64()
                    .ok_or_else(|| format!("counter `{key}` is not a u64"))?;
                counters.insert(key.clone(), count);
            }
        } else {
            return Err("meta missing `counters`".to_owned());
        }
        let mut stations = Vec::with_capacity(station_lines.len());
        let mut last_station: Option<u32> = None;
        for (i, line) in station_lines.iter().enumerate() {
            let value =
                JsonValue::parse(line).map_err(|e| format!("station line {}: {e}", i + 1))?;
            let record =
                parse_station_line(&value).map_err(|e| format!("station line {}: {e}", i + 1))?;
            if last_station.is_some_and(|prev| prev >= record.station) {
                return Err("station lines out of order".to_owned());
            }
            last_station = Some(record.station);
            stations.push(record);
        }
        Ok(Checkpoint {
            consumed,
            elapsed_us,
            counters,
            stations,
        })
    }

    /// Writes the snapshot into `dir` as `ckpt-<consumed>.ckpt` via a
    /// temp-file + rename publish. Returns the final path.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let name = format!("ckpt-{:012}", self.consumed);
        let tmp = dir.join(format!("{name}.tmp"));
        let finality = dir.join(format!("{name}.ckpt"));
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_file_image().as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &finality)?;
        Ok(finality)
    }

    /// Loads the newest valid checkpoint under `dir`. Invalid files are
    /// skipped and reported in the warning list; an empty or missing
    /// directory yields `None` (cold start).
    pub fn load_latest(dir: &Path) -> (Option<(Checkpoint, PathBuf)>, Vec<String>) {
        let mut warnings = Vec::new();
        let Ok(entries) = std::fs::read_dir(dir) else {
            return (None, warnings);
        };
        let mut candidates: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "ckpt"))
            .collect();
        // Names embed zero-padded `consumed`, so lexicographic order is
        // chronological order; walk newest first.
        candidates.sort();
        for path in candidates.into_iter().rev() {
            let text = match std::fs::read(&path) {
                Ok(bytes) => match String::from_utf8(bytes) {
                    Ok(text) => text,
                    Err(_) => {
                        warnings.push(format!("{}: not UTF-8", path.display()));
                        continue;
                    }
                },
                Err(e) => {
                    warnings.push(format!("{}: {e}", path.display()));
                    continue;
                }
            };
            match Checkpoint::parse(&text) {
                Ok(checkpoint) => return (Some((checkpoint, path)), warnings),
                Err(e) => warnings.push(format!("{}: {e}", path.display())),
            }
        }
        (None, warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::{Checkpoint, StationRecord};
    use airguard_core::DetectorState;
    use std::collections::BTreeMap;

    fn sample() -> Checkpoint {
        Checkpoint {
            consumed: 81,
            elapsed_us: 902_000,
            counters: BTreeMap::from([
                ("live.observations".to_owned(), 79),
                ("live.quarantined".to_owned(), 2),
            ]),
            stations: vec![
                StationRecord {
                    station: 3,
                    state: DetectorState::Cusum { score: 12.5 },
                    observations: 41,
                    flagged: 0,
                },
                StationRecord {
                    station: 7,
                    state: DetectorState::Window {
                        diffs: vec![4.0, -1.5, 0.300_000_000_000_000_04],
                    },
                    observations: 38,
                    flagged: 1,
                },
                StationRecord {
                    station: 9,
                    state: DetectorState::Cw {
                        assigned_sum: 120.25,
                        observed_sum: 60.125,
                        samples: 17,
                    },
                    observations: 17,
                    flagged: 2,
                },
            ],
        }
    }

    #[test]
    fn round_trips_every_detector_kind_exactly() {
        let original = sample();
        let image = original.to_file_image();
        let restored = Checkpoint::parse(&image).expect("valid image");
        assert_eq!(restored, original);
        // Serialization is canonical: a second trip is byte-identical.
        assert_eq!(restored.to_file_image(), image);
    }

    #[test]
    fn write_and_load_latest_pick_the_newest_valid_file() {
        let dir = std::env::temp_dir().join(format!("airguard-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let old = Checkpoint {
            consumed: 40,
            ..sample()
        };
        let new = sample();
        old.write(&dir).expect("write old");
        new.write(&dir).expect("write new");
        let (loaded, warnings) = Checkpoint::load_latest(&dir);
        let (checkpoint, path) = loaded.expect("a valid checkpoint");
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(checkpoint.consumed, 81);
        assert!(path.ends_with("ckpt-000000000081.ckpt"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupted_files_fall_back_to_the_previous_good_snapshot() {
        let dir = std::env::temp_dir().join(format!("airguard-ckpt-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let good = Checkpoint {
            consumed: 40,
            ..sample()
        };
        good.write(&dir).expect("write good");

        // Torn write: newest file truncated mid-body.
        let image = sample().to_file_image();
        std::fs::write(
            dir.join("ckpt-000000000081.ckpt"),
            &image[..image.len() / 2],
        )
        .expect("write torn");
        // Bit flip inside an even newer file.
        let mut flipped = sample().to_file_image().into_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        std::fs::write(dir.join("ckpt-000000000099.ckpt"), &flipped).expect("write flipped");

        let (loaded, warnings) = Checkpoint::load_latest(&dir);
        let (checkpoint, _path) = loaded.expect("fallback snapshot");
        assert_eq!(checkpoint.consumed, 40);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn empty_directory_is_a_cold_start() {
        let dir = std::env::temp_dir().join(format!("airguard-ckpt-cold-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (loaded, warnings) = Checkpoint::load_latest(&dir);
        assert!(loaded.is_none());
        assert!(warnings.is_empty());
    }

    #[test]
    fn footer_tampering_is_rejected() {
        let image = sample().to_file_image();
        assert!(Checkpoint::parse(&image.replace("end ", "fin ")).is_err());
        assert!(Checkpoint::parse(image.trim_end()).is_err(), "no newline");
        let wrong_count = {
            let mut lines: Vec<&str> = image.lines().collect();
            let footer = lines.pop().expect("footer");
            let mut parts: Vec<&str> = footer.split(' ').collect();
            parts[2] = "99";
            let patched = parts.join(" ");
            format!("{}\n{patched}\n", lines.join("\n"))
        };
        assert!(Checkpoint::parse(&wrong_count).is_err());
    }
}
