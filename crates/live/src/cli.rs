//! The `airguard-live` service command line.
//!
//! ```text
//! airguard-live --replay results/fig4.events.jsonl --shards 4 \
//!     --checkpoint /var/lib/airguard --checkpoint-every 1000
//! airguard-live --listen 127.0.0.1:9900 --overflow sample
//! ```
//!
//! On success the final [`RunSummary`] is printed as one JSON line on
//! stdout (byte-identical across shard counts and kill/restore under
//! the lossless policy — the CI smoke job greps exactly that line);
//! restore notes and warnings go to stderr. Exit codes: `0` success,
//! `1` runtime failure, `2` malformed invocation. Every flag and
//! environment value is validated and rejected loudly — malformed
//! input never silently defaults (the workspace's `--detector`
//! convention).

use std::io::Write as _;
use std::path::PathBuf;

use airguard_core::{DetectorConfig, ObservationSource, SourceError};
use airguard_obs::EventSink;

use crate::engine::{run, LiveConfig, OverflowPolicy};
use crate::replay::{FrameSource, JsonlSource, SocketSource, SupervisedSource};

/// One stdout line, written atomically (the summary must land as one
/// uninterleaved line — CI greps it byte-for-byte).
fn out(line: &str) {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let _ = std::io::stdout().lock().write_all(buf.as_bytes());
}

/// One stderr line (notes, warnings, failures); atomic like [`out`].
fn err(line: &str) {
    let mut buf = String::with_capacity(line.len() + 1);
    buf.push_str(line);
    buf.push('\n');
    let _ = std::io::stderr().lock().write_all(buf.as_bytes());
}

const USAGE: &str = "\
usage: airguard-live (--replay FILE | --frames FILE | --listen ADDR) [options]

feed (exactly one):
  --replay FILE    replay a .events.jsonl export (deterministic)
  --frames FILE    replay a length-prefixed binary frame file
  --listen ADDR    accept JSONL feed connections on ADDR; peers that
                   disconnect are re-accepted with exponential backoff

options:
  --shards N       worker shard count (default 4, or AIRGUARD_LIVE_SHARDS;
                   the flag wins; lossless results never depend on it)
  --overflow KIND  full-queue policy: block, drop-oldest, or sample
                   (default block)
  --detector KIND  deviation detector: window, cusum, or cw
                   (default window)
  --checkpoint DIR snapshot directory; enables periodic checkpoints and
                   restore-on-start from the newest valid snapshot
  --checkpoint-every N  snapshot every N consumed records (default 1000;
                   a final snapshot is always written on clean exit)
  --stop-after N   stop abruptly after N consumed records without a
                   final snapshot — a simulated crash for restore tests
  --queue N        per-shard queue capacity (default 256)
  --quarantine-budget N  malformed records tolerated per run
                   (default 10000)
  --label NAME     summary label (default live)
  --verdicts       also print one JSON line per station verdict
  --help           show this help";

/// Everything the flag parser produces.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// `--replay FILE`.
    pub replay: Option<String>,
    /// `--frames FILE`.
    pub frames: Option<String>,
    /// `--listen ADDR`.
    pub listen: Option<String>,
    /// Validated shard count.
    pub shards: u32,
    /// Validated overflow policy.
    pub overflow: OverflowPolicy,
    /// Validated detector config.
    pub detector: DetectorConfig,
    /// Checkpoint directory.
    pub checkpoint: Option<String>,
    /// Snapshot cadence in consumed records.
    pub checkpoint_every: u64,
    /// Simulated-crash cutoff.
    pub stop_after: Option<u64>,
    /// Per-shard queue capacity.
    pub queue: usize,
    /// Malformed-record budget per run.
    pub quarantine_budget: u64,
    /// Summary label.
    pub label: String,
    /// Print per-station verdict lines.
    pub verdicts: bool,
    /// `--help`.
    pub help: bool,
}

/// Parses a positive integer, rejecting junk and zero with a message
/// naming the source (`--shards`, `AIRGUARD_LIVE_SHARDS`, …).
fn parse_positive(source: &str, value: &str) -> Result<u64, String> {
    match value.trim().parse::<u64>() {
        Ok(0) => Err(format!("{source}: expected a positive integer, got 0")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "{source}: expected a positive integer, got {value:?}"
        )),
    }
}

/// Reads `AIRGUARD_LIVE_SHARDS`; unset is `None`, malformed is an
/// error (never a silent default).
fn env_shards() -> Result<Option<u32>, String> {
    let name = "AIRGUARD_LIVE_SHARDS";
    match std::env::var(name) {
        Ok(v) => {
            let n = parse_positive(name, &v)?;
            u32::try_from(n)
                .map(Some)
                .map_err(|_| format!("{name}: value {n} out of range"))
        }
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(_)) => {
            Err(format!("{name}: value is not valid unicode"))
        }
    }
}

/// Parses `args` (no argv[0]).
///
/// # Errors
///
/// Returns a usage-style message on unknown flags, malformed numbers,
/// unknown policy/detector kinds, a malformed `AIRGUARD_LIVE_SHARDS`,
/// or a feed selection that is not exactly one of replay/frames/listen.
pub fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        replay: None,
        frames: None,
        listen: None,
        shards: env_shards()?.unwrap_or(4),
        overflow: OverflowPolicy::Block,
        detector: DetectorConfig::Window,
        checkpoint: None,
        checkpoint_every: 1000,
        stop_after: None,
        queue: 256,
        quarantine_budget: 10_000,
        label: "live".to_owned(),
        verdicts: false,
        help: false,
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag}: missing value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--replay" => cli.replay = Some(value("--replay", &mut it)?),
            "--frames" => cli.frames = Some(value("--frames", &mut it)?),
            "--listen" => cli.listen = Some(value("--listen", &mut it)?),
            "--shards" => {
                let v = value("--shards", &mut it)?;
                let n = parse_positive("--shards", &v)?;
                cli.shards =
                    u32::try_from(n).map_err(|_| format!("--shards: value {v:?} out of range"))?;
            }
            "--overflow" => {
                cli.overflow = OverflowPolicy::from_kind(value("--overflow", &mut it)?.trim())
                    .map_err(|e| format!("--overflow: {e}"))?;
            }
            "--detector" => {
                cli.detector = DetectorConfig::from_kind(value("--detector", &mut it)?.trim())
                    .map_err(|e| format!("--detector: {e}"))?;
            }
            "--checkpoint" => cli.checkpoint = Some(value("--checkpoint", &mut it)?),
            "--checkpoint-every" => {
                cli.checkpoint_every =
                    parse_positive("--checkpoint-every", &value("--checkpoint-every", &mut it)?)?;
            }
            "--stop-after" => {
                cli.stop_after = Some(parse_positive(
                    "--stop-after",
                    &value("--stop-after", &mut it)?,
                )?);
            }
            "--queue" => {
                let v = value("--queue", &mut it)?;
                cli.queue = usize::try_from(parse_positive("--queue", &v)?)
                    .map_err(|_| format!("--queue: value {v:?} out of range"))?;
            }
            "--quarantine-budget" => {
                cli.quarantine_budget = parse_positive(
                    "--quarantine-budget",
                    &value("--quarantine-budget", &mut it)?,
                )?;
            }
            "--label" => cli.label = value("--label", &mut it)?,
            "--verdicts" => cli.verdicts = true,
            "--help" | "-h" => cli.help = true,
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
    }
    if !cli.help {
        let feeds = usize::from(cli.replay.is_some())
            + usize::from(cli.frames.is_some())
            + usize::from(cli.listen.is_some());
        if feeds != 1 {
            return Err(
                "exactly one feed is required: --replay FILE, --frames FILE, or --listen ADDR"
                    .to_owned(),
            );
        }
    }
    Ok(cli)
}

fn open_source(cli: &Cli, sink: &EventSink) -> Result<Box<dyn ObservationSource>, String> {
    if let Some(path) = &cli.replay {
        return JsonlSource::open(std::path::Path::new(path))
            .map(|s| Box::new(s) as Box<dyn ObservationSource>)
            .map_err(|e| source_error_text(&e));
    }
    if let Some(path) = &cli.frames {
        return FrameSource::open(std::path::Path::new(path))
            .map(|s| Box::new(s) as Box<dyn ObservationSource>)
            .map_err(|e| source_error_text(&e));
    }
    let addr = cli.listen.as_deref().unwrap_or_default();
    let socket = SocketSource::bind(addr).map_err(|e| source_error_text(&e))?;
    let listener = socket.reopen_handle();
    let supervised = SupervisedSource::new(0, sink.clone(), 1_000_000, 50, move || {
        Ok(Box::new(SocketSource::from_listener(std::sync::Arc::clone(
            &listener,
        ))) as Box<dyn ObservationSource>)
    })
    .with_open(Box::new(socket));
    Ok(Box::new(supervised))
}

fn source_error_text(e: &SourceError) -> String {
    match e {
        SourceError::Malformed(m) => format!("malformed feed: {m}"),
        SourceError::Transport(m) => format!("feed transport: {m}"),
    }
}

/// Runs one parsed invocation; returns the process exit code.
#[must_use]
pub fn run_cli(cli: &Cli) -> i32 {
    if cli.help {
        out(USAGE);
        return 0;
    }
    let mut config = LiveConfig::new(cli.shards);
    config.label.clone_from(&cli.label);
    config.overflow = cli.overflow;
    config.detector = cli.detector;
    config.queue_capacity = cli.queue;
    config.checkpoint_dir = cli.checkpoint.as_ref().map(PathBuf::from);
    config.checkpoint_every = cli.checkpoint_every;
    config.stop_after = cli.stop_after;
    config.quarantine_budget = cli.quarantine_budget;
    let mut source = match open_source(cli, &config.sink) {
        Ok(source) => source,
        Err(msg) => {
            err(&format!("airguard-live: {msg}"));
            return 1;
        }
    };
    match run(&config, source.as_mut()) {
        Ok(outcome) => {
            for warning in &outcome.restore_warnings {
                err(&format!(
                    "airguard-live: warning: skipped snapshot {warning}"
                ));
            }
            if let Some(path) = &outcome.restored_from {
                err(&format!("[live] restored from {}", path.display()));
            }
            if outcome.checkpoints_written > 0 {
                err(&format!(
                    "[live] {} checkpoint(s) written",
                    outcome.checkpoints_written
                ));
            }
            if outcome.crashed {
                err("[live] stopped by --stop-after (simulated crash; no final snapshot)");
            }
            if cli.verdicts {
                for verdict in &outcome.verdicts {
                    out(&verdict.to_json());
                }
            }
            out(&outcome.summary.to_json());
            0
        }
        Err(msg) => {
            err(&format!("airguard-live: {msg}"));
            1
        }
    }
}

/// Entry point for the `airguard-live` binary.
#[must_use]
pub fn cli_main() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(cli) => run_cli(&cli),
        Err(msg) => {
            err(&format!("airguard-live: {msg}"));
            err(USAGE);
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, run_cli};
    use crate::engine::OverflowPolicy;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn minimal_replay_invocation_parses_with_defaults() {
        let cli = parse(&args(&["--replay", "feed.jsonl"])).expect("parses");
        assert_eq!(cli.replay.as_deref(), Some("feed.jsonl"));
        assert_eq!(cli.shards, 4);
        assert_eq!(cli.overflow, OverflowPolicy::Block);
        assert_eq!(cli.queue, 256);
        assert_eq!(cli.checkpoint_every, 1000);
        assert_eq!(cli.quarantine_budget, 10_000);
        assert!(cli.stop_after.is_none() && cli.checkpoint.is_none());
    }

    #[test]
    fn full_flag_set_parses() {
        let cli = parse(&args(&[
            "--replay",
            "feed.jsonl",
            "--shards",
            "8",
            "--overflow",
            "drop-oldest",
            "--detector",
            "cusum",
            "--checkpoint",
            "/tmp/ck",
            "--checkpoint-every",
            "500",
            "--stop-after",
            "1234",
            "--queue",
            "64",
            "--quarantine-budget",
            "9",
            "--label",
            "smoke",
            "--verdicts",
        ]))
        .expect("parses");
        assert_eq!(cli.shards, 8);
        assert_eq!(cli.overflow, OverflowPolicy::DropOldest);
        assert_eq!(cli.detector.kind(), "cusum");
        assert_eq!(cli.checkpoint.as_deref(), Some("/tmp/ck"));
        assert_eq!(cli.checkpoint_every, 500);
        assert_eq!(cli.stop_after, Some(1234));
        assert_eq!(cli.queue, 64);
        assert_eq!(cli.quarantine_budget, 9);
        assert_eq!(cli.label, "smoke");
        assert!(cli.verdicts);
    }

    #[test]
    fn malformed_shards_are_rejected_never_defaulted() {
        let base = ["--replay", "feed.jsonl"];
        for bad in ["0", "-3", "many", "4.5"] {
            let mut a = base.to_vec();
            a.extend(["--shards", bad]);
            let msg = parse(&args(&a)).expect_err(bad);
            assert!(msg.contains("--shards"), "{msg}");
            assert!(msg.contains("positive integer"), "{msg}");
        }
        assert!(parse(&args(&["--replay", "f", "--shards"]))
            .expect_err("missing")
            .contains("missing value"));
    }

    #[test]
    fn env_shards_is_validated_not_silently_defaulted() {
        // Shared parser, pinned without mutating process-global env
        // (other tests run `parse` concurrently).
        let msg = super::parse_positive("AIRGUARD_LIVE_SHARDS", "lots").expect_err("junk");
        assert!(msg.contains("AIRGUARD_LIVE_SHARDS"), "{msg}");
        assert!(msg.contains("positive integer"), "{msg}");
    }

    #[test]
    fn malformed_overflow_lists_the_kinds() {
        let msg = parse(&args(&["--replay", "f", "--overflow", "spill"])).expect_err("bad kind");
        assert!(msg.contains("--overflow"), "{msg}");
        assert!(
            msg.contains("expected block, drop-oldest, or sample"),
            "{msg}"
        );
        // Whitespace is tolerated around a valid kind.
        let cli = parse(&args(&["--replay", "f", "--overflow", " sample "])).expect("parses");
        assert_eq!(cli.overflow, OverflowPolicy::Sample);
    }

    #[test]
    fn malformed_detector_lists_the_kinds() {
        let msg = parse(&args(&["--replay", "f", "--detector", "ewma"])).expect_err("bad kind");
        assert!(msg.contains("--detector"), "{msg}");
        assert!(msg.contains("window, cusum, or cw"), "{msg}");
    }

    #[test]
    fn exactly_one_feed_is_required() {
        let none = parse(&[]).expect_err("no feed");
        assert!(none.contains("exactly one feed"), "{none}");
        let two = parse(&args(&["--replay", "a", "--listen", "b"])).expect_err("two feeds");
        assert!(two.contains("exactly one feed"), "{two}");
        // --help needs no feed.
        assert!(parse(&args(&["--help"])).expect("parses").help);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&args(&["--replay", "f", "--frobnicate"]))
            .expect_err("unknown")
            .contains("unknown flag"));
    }

    #[test]
    fn missing_replay_file_is_a_runtime_failure_not_a_crash() {
        let cli = parse(&args(&["--replay", "/nonexistent/feed.jsonl"])).expect("parses");
        assert_eq!(run_cli(&cli), 1);
    }
}
