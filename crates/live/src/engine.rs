//! The sharded streaming engine: a feeder thread routing observations
//! into per-shard bounded queues, N shard workers each owning a stripe
//! of per-station detectors, and the robustness machinery around them —
//! overflow policies, quarantine accounting, checkpoint barriers, and a
//! stuck-shard watchdog.
//!
//! # Determinism
//!
//! Per-station results depend only on the sequence of that station's
//! observations, and the feeder routes every observation of a station
//! to the same shard over a FIFO channel — so shard count and thread
//! interleaving never change a verdict. Under the `block` overflow
//! policy no observation is ever dropped, which makes the final
//! [`RunSummary`] byte-identical across shard counts *and* across a
//! kill/restore at any record boundary (the checkpoint tests pin both).
//! The lossy policies (`drop-oldest`, `sample`) trade that for bounded
//! memory under overload; every record they discard is counted and
//! emitted as a typed event, never silently lost.
//!
//! # Divergence from the offline monitor
//!
//! The offline [`airguard_core::Monitor`] sits inside the receiver's
//! MAC and derives `B_exp` from retry state; the live engine consumes
//! already-measured `backoff_assigned` telemetry, so it applies the
//! paper's Eq. 1 deviation and the configured detector directly to the
//! replayed `(assigned, observed)` pair, with the static diagnosis
//! threshold (no adaptive noise scaling — that extension needs the
//! monitor-global idle census the feed does not carry).

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use airguard_core::{
    CorrectionConfig, DetectorConfig, DeviationDetector, DiagnosisConfig, ObservationSource,
    SourceError, StationObservation,
};
use airguard_mac::BackoffObservation;
use airguard_obs::{fnv1a_hex, EventSink, JsonObject, ObsEvent, RunSummary, NO_NODE};

use crate::channel::{bounded, Receiver, RecvTimeout, SendError, Sender};
use crate::checkpoint::{Checkpoint, StationRecord};

/// What a full shard queue does to the overflowing observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Backpressure: the feeder blocks until the shard drains (lossless;
    /// the watchdog still breaks the wait if the shard is stuck).
    #[default]
    Block,
    /// Evict the oldest queued observation, counting and reporting it.
    DropOldest,
    /// Degrade to sampling: forward every k-th observation, doubling k
    /// while the queue stays full and halving it as the queue drains.
    Sample,
}

impl OverflowPolicy {
    /// Short stable name: `block`, `drop-oldest`, or `sample`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            OverflowPolicy::Block => "block",
            OverflowPolicy::DropOldest => "drop-oldest",
            OverflowPolicy::Sample => "sample",
        }
    }

    /// Parses a policy name; malformed values fail loudly, listing the
    /// accepted kinds (the CLI/env contract — never silently default).
    pub fn from_kind(name: &str) -> Result<Self, String> {
        match name {
            "block" => Ok(OverflowPolicy::Block),
            "drop-oldest" => Ok(OverflowPolicy::DropOldest),
            "sample" => Ok(OverflowPolicy::Sample),
            other => Err(format!(
                "unknown overflow policy `{other}` (expected block, drop-oldest, or sample)"
            )),
        }
    }
}

/// Test-only fault hooks, mirroring the fault crate's injection idiom:
/// production code paths exercise their degraded branches under
/// deterministic, explicitly-requested faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct LiveFaults {
    /// A worker that receives an observation from this station parks
    /// (consuming nothing further) until its shard is quarantined or
    /// the engine shuts down — the stuck-shard watchdog's test hook.
    pub stall_station: Option<u32>,
}

/// Engine configuration. `shards` and `queue_capacity` are deployment
/// tuning and deliberately excluded from [`LiveConfig::config_digest`];
/// everything that can change a verdict is included.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Summary label (default `"live"`).
    pub label: String,
    /// Recorded in the summary; the engine itself draws no randomness.
    pub seed: u64,
    /// Worker shard count (≥ 1).
    pub shards: u32,
    /// Full-queue behaviour.
    pub overflow: OverflowPolicy,
    /// Per-station detector to run.
    pub detector: DetectorConfig,
    /// Window/threshold parameters for the window detector.
    pub diagnosis: DiagnosisConfig,
    /// Eq. 1 deviation parameters.
    pub correction: CorrectionConfig,
    /// Per-shard queue capacity in observations.
    pub queue_capacity: usize,
    /// Checkpoint directory; `None` disables snapshots and restore.
    pub checkpoint_dir: Option<PathBuf>,
    /// Snapshot every N consumed records (0 = only the final snapshot).
    pub checkpoint_every: u64,
    /// Stop abruptly after consuming N records — a simulated crash: no
    /// final snapshot is written, only the periodic ones survive.
    pub stop_after: Option<u64>,
    /// Malformed records tolerated in one run before the engine gives
    /// up on the feed as hopeless.
    pub quarantine_budget: u64,
    /// How long a full shard queue may refuse progress before the
    /// watchdog quarantines the shard.
    pub stall_timeout: Duration,
    /// Stamp each observation at enqueue and record ingest→verdict
    /// latency (wall-clock; for the bench harness, not for summaries).
    pub measure_latency: bool,
    /// Graceful-drain flag (the SIGTERM hook): when it flips true the
    /// feeder stops pulling, flushes a final snapshot, and drains.
    pub drain: Option<Arc<AtomicBool>>,
    /// Telemetry sink for `live.*` events.
    pub sink: EventSink,
    /// Fault-injection hooks (tests only).
    pub faults: LiveFaults,
}

impl LiveConfig {
    /// A default-parameter config over `shards` workers.
    #[must_use]
    pub fn new(shards: u32) -> Self {
        LiveConfig {
            label: "live".to_owned(),
            seed: 0,
            shards,
            overflow: OverflowPolicy::Block,
            detector: DetectorConfig::Window,
            diagnosis: DiagnosisConfig::paper_default(),
            correction: CorrectionConfig::paper_default(),
            queue_capacity: 256,
            checkpoint_dir: None,
            checkpoint_every: 0,
            stop_after: None,
            quarantine_budget: 10_000,
            stall_timeout: Duration::from_millis(2_000),
            measure_latency: false,
            drain: None,
            sink: EventSink::new(),
            faults: LiveFaults::default(),
        }
    }

    /// Digest of everything that can change a verdict. Shard count and
    /// queue capacity are excluded on purpose: under the lossless
    /// policy they must not matter, and the byte-identity tests compare
    /// summaries across shard counts.
    #[must_use]
    pub fn config_digest(&self) -> String {
        let identity = format!(
            "live|detector={}:{}|window={}|thresh={}|alpha={}|overflow={}",
            self.detector.kind(),
            self.detector.identity_fragment().unwrap_or_default(),
            self.diagnosis.window,
            self.diagnosis.thresh,
            self.correction.alpha,
            self.overflow.kind(),
        );
        fnv1a_hex(identity.as_bytes())
    }
}

/// One station's final classification.
#[derive(Debug, Clone, PartialEq)]
pub struct StationVerdict {
    /// Station id.
    pub station: u32,
    /// Final decision statistic (window sum / CUSUM score / CW ratio).
    pub statistic: f64,
    /// Observations consumed.
    pub observations: u64,
    /// Times the detector flagged this station.
    pub flagged: u64,
}

impl StationVerdict {
    /// Whether the station was ever diagnosed as misbehaving.
    #[must_use]
    pub fn misbehaving(&self) -> bool {
        self.flagged > 0
    }

    /// Single-line JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut obj = JsonObject::new();
        obj.u64("station", u64::from(self.station))
            .f64("statistic", self.statistic)
            .u64("observations", self.observations)
            .u64("flagged", self.flagged)
            .bool("misbehaving", self.misbehaving());
        obj.finish()
    }
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct LiveOutcome {
    /// Deterministic run summary (the byte-identity anchor).
    pub summary: RunSummary,
    /// Per-station verdicts, sorted by station id.
    pub verdicts: Vec<StationVerdict>,
    /// Snapshots written during this run.
    pub checkpoints_written: u64,
    /// The snapshot this run resumed from, if any.
    pub restored_from: Option<PathBuf>,
    /// Invalid snapshots skipped while restoring.
    pub restore_warnings: Vec<String>,
    /// True when `stop_after` cut the run short (simulated crash).
    pub crashed: bool,
    /// True when the drain flag ended the run.
    pub drained: bool,
    /// Ingest→verdict latencies, microseconds, unsorted (empty unless
    /// `measure_latency`).
    pub latencies_us: Vec<u64>,
}

/// FNV-1a 64 over the station id's little-endian bytes: the stable
/// station→shard map (same hash family as the workspace's digests, so
/// the assignment is reproducible from the DESIGN.md description).
#[must_use]
pub fn shard_of(station: u32, shards: u32) -> u32 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in station.to_le_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    u32::try_from(hash % u64::from(shards.max(1))).unwrap_or(0)
}

enum Msg {
    Obs(StationObservation, Option<Instant>),
    Snapshot(Sender<ShardSnapshot>),
}

struct ShardSnapshot {
    shard: u32,
    stations: Vec<StationRecord>,
    elapsed_us: u64,
}

struct ShardResult {
    stations: Vec<(StationRecord, f64)>,
    elapsed_us: u64,
    latencies_us: Vec<u64>,
}

struct StationEntry {
    detector: Box<dyn DeviationDetector>,
    observations: u64,
    flagged: u64,
}

#[allow(clippy::too_many_arguments)] // internal seam; the worker is spawned once
fn shard_worker(
    shard: u32,
    rx: &Receiver<Msg>,
    seed: Vec<StationRecord>,
    detector: DetectorConfig,
    diagnosis: DiagnosisConfig,
    correction: CorrectionConfig,
    heartbeat: &AtomicU64,
    kill: &AtomicBool,
    shutdown: &AtomicBool,
    faults: LiveFaults,
) -> Result<ShardResult, String> {
    let mut entries: BTreeMap<u32, StationEntry> = BTreeMap::new();
    for record in seed {
        let restored = detector
            .build_from_state(diagnosis, &record.state)
            .map_err(|e| format!("shard {shard} restore: {e}"))?;
        entries.insert(
            record.station,
            StationEntry {
                detector: restored,
                observations: record.observations,
                flagged: record.flagged,
            },
        );
    }
    let mut elapsed_us = 0u64;
    let mut latencies_us = Vec::new();
    let snapshot = |entries: &BTreeMap<u32, StationEntry>, elapsed_us: u64| ShardSnapshot {
        shard,
        elapsed_us,
        stations: entries
            .iter()
            .map(|(&station, entry)| StationRecord {
                station,
                state: entry.detector.export_state(),
                observations: entry.observations,
                flagged: entry.flagged,
            })
            .collect(),
    };
    while !kill.load(Ordering::Relaxed) {
        let Some(msg) = rx.recv() else { break };
        heartbeat.fetch_add(1, Ordering::Relaxed);
        match msg {
            Msg::Obs(obs, enqueued_at) => {
                if faults.stall_station == Some(obs.station) {
                    // Injected stall: stop consuming until the watchdog
                    // quarantines this shard (or the engine shuts down,
                    // so a mis-targeted fault cannot deadlock a test).
                    while !kill.load(Ordering::Relaxed) && !shutdown.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    break;
                }
                let entry = entries.entry(obs.station).or_insert_with(|| StationEntry {
                    detector: detector.build(diagnosis),
                    observations: 0,
                    flagged: 0,
                });
                let deviation = correction.deviation(obs.assigned_slots, obs.observed_slots);
                let backoff = BackoffObservation {
                    assigned_slots: obs.assigned_slots,
                    observed_slots: obs.observed_slots,
                    deviation_slots: deviation,
                    penalty_slots: correction.penalty(deviation),
                };
                let verdict = entry.detector.observe(Some(&backoff), diagnosis.thresh);
                entry.observations += 1;
                if verdict.flagged {
                    entry.flagged += 1;
                }
                elapsed_us = elapsed_us.max(obs.t_us);
                if let Some(t0) = enqueued_at {
                    latencies_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
            }
            Msg::Snapshot(reply) => {
                // A dead feeder just means no one reads the reply.
                let _ = reply.send(snapshot(&entries, elapsed_us));
            }
        }
    }
    let stations = entries
        .iter()
        .map(|(&station, entry)| {
            (
                StationRecord {
                    station,
                    state: entry.detector.export_state(),
                    observations: entry.observations,
                    flagged: entry.flagged,
                },
                entry.detector.statistic(),
            )
        })
        .collect();
    Ok(ShardResult {
        stations,
        elapsed_us,
        latencies_us,
    })
}

/// Feeder-side routing and accounting state.
struct Feeder<'a> {
    config: &'a LiveConfig,
    senders: Vec<Option<Sender<Msg>>>,
    heartbeats: &'a [Arc<AtomicU64>],
    kills: &'a [Arc<AtomicBool>],
    /// Heartbeat reading at the last stall probe, per shard.
    last_beat: Vec<u64>,
    /// Current sampling stride per shard (1 = not degraded).
    sample_every: Vec<u32>,
    /// Observations seen per shard since degradation began.
    sample_seq: Vec<u64>,
    /// Feeder's view of virtual time (event timestamps).
    now_us: u64,
    // Running totals (restored from a checkpoint on resume).
    quarantined: u64,
    shed_dropped: u64,
    sampled_out: u64,
    shards_quarantined: u64,
}

impl Feeder<'_> {
    fn counters(&self) -> BTreeMap<String, u64> {
        BTreeMap::from([
            ("live.quarantined".to_owned(), self.quarantined),
            ("live.shed_dropped".to_owned(), self.shed_dropped),
            ("live.sampled_out".to_owned(), self.sampled_out),
            (
                "live.shards_quarantined".to_owned(),
                self.shards_quarantined,
            ),
        ])
    }

    fn shed(&mut self, shard: u32, station: u32) {
        self.shed_dropped += 1;
        self.config.sink.emit(
            self.now_us,
            NO_NODE,
            ObsEvent::LiveShedDropped { shard, station },
        );
    }

    fn quarantine_shard(&mut self, shard: usize, stalled_ms: u64) {
        if self.senders[shard].is_none() {
            return;
        }
        self.shards_quarantined += 1;
        self.kills[shard].store(true, Ordering::Relaxed);
        self.senders[shard] = None; // closes the queue; others keep serving
        self.config.sink.emit(
            self.now_us,
            NO_NODE,
            ObsEvent::LiveShardQuarantined {
                shard: u32::try_from(shard).unwrap_or(u32::MAX),
                stalled_ms,
            },
        );
    }

    /// Blocking send with the stuck-shard watchdog: waits in
    /// `stall_timeout` slices and quarantines the shard if a full
    /// window passes with zero consumer heartbeats.
    fn send_watched(&mut self, shard: usize, obs: StationObservation, stamp: Option<Instant>) {
        loop {
            let Some(sender) = self.senders[shard].clone() else {
                self.shed(u32::try_from(shard).unwrap_or(u32::MAX), obs.station);
                return;
            };
            match sender.send_timeout(Msg::Obs(obs, stamp), self.config.stall_timeout) {
                Ok(()) => return,
                Err(SendError::Disconnected) => {
                    self.senders[shard] = None;
                    self.shed(u32::try_from(shard).unwrap_or(u32::MAX), obs.station);
                    return;
                }
                Err(SendError::Full) => {
                    let beat = self.heartbeats[shard].load(Ordering::Relaxed);
                    if beat == self.last_beat[shard] {
                        let stalled_ms =
                            u64::try_from(self.config.stall_timeout.as_millis()).unwrap_or(0);
                        self.quarantine_shard(shard, stalled_ms);
                        self.shed(u32::try_from(shard).unwrap_or(u32::MAX), obs.station);
                        return;
                    }
                    self.last_beat[shard] = beat; // progress; keep waiting
                }
            }
        }
    }

    fn route(&mut self, obs: StationObservation) {
        let shard = shard_of(obs.station, self.config.shards) as usize;
        let shard_u32 = u32::try_from(shard).unwrap_or(u32::MAX);
        self.now_us = self.now_us.max(obs.t_us);
        let stamp = self.config.measure_latency.then(Instant::now);
        let Some(sender) = self.senders[shard].clone() else {
            self.shed(shard_u32, obs.station);
            return;
        };
        match self.config.overflow {
            OverflowPolicy::Block => self.send_watched(shard, obs, stamp),
            OverflowPolicy::DropOldest => match sender.send_dropping_oldest(Msg::Obs(obs, stamp)) {
                Ok(None) => {}
                Ok(Some(Msg::Obs(victim, _))) => {
                    self.shed(shard_u32, victim.station);
                }
                Ok(Some(marker @ Msg::Snapshot(_))) => {
                    // Unreachable by protocol: barriers drain the queue
                    // before eviction-capable sends resume. Re-enqueue
                    // rather than lose the barrier if it ever happens.
                    let _ = sender.send(marker);
                }
                Err(_) => {
                    self.senders[shard] = None;
                    self.shed(shard_u32, obs.station);
                }
            },
            OverflowPolicy::Sample => {
                let stride = self.sample_every[shard];
                if stride > 1 {
                    self.sample_seq[shard] += 1;
                    if !self.sample_seq[shard].is_multiple_of(u64::from(stride)) {
                        self.sampled_out += 1;
                        self.shed(shard_u32, obs.station);
                        self.maybe_recover(shard, &sender);
                        return;
                    }
                }
                match sender.try_send(Msg::Obs(obs, stamp)) {
                    Ok(()) => self.maybe_recover(shard, &sender),
                    Err(SendError::Full) => {
                        let doubled = (stride * 2).clamp(2, 64);
                        self.sample_every[shard] = doubled;
                        self.config.sink.emit(
                            self.now_us,
                            NO_NODE,
                            ObsEvent::LiveDegraded {
                                shard: shard_u32,
                                sample_every: doubled,
                            },
                        );
                        // The survivor still goes through, with the
                        // watchdog guarding against a dead consumer.
                        self.send_watched(shard, obs, stamp);
                    }
                    Err(SendError::Disconnected) => {
                        self.senders[shard] = None;
                        self.shed(shard_u32, obs.station);
                    }
                }
            }
        }
    }

    /// Halves the sampling stride once the shard queue has drained to a
    /// quarter of capacity; stride 1 means fully recovered.
    fn maybe_recover(&mut self, shard: usize, sender: &Sender<Msg>) {
        let stride = self.sample_every[shard];
        if stride > 1 && sender.len() * 4 <= self.config.queue_capacity.max(1) {
            let halved = (stride / 2).max(1);
            self.sample_every[shard] = halved;
            self.config.sink.emit(
                self.now_us,
                NO_NODE,
                ObsEvent::LiveDegraded {
                    shard: u32::try_from(shard).unwrap_or(u32::MAX),
                    sample_every: halved,
                },
            );
        }
    }

    /// Checkpoint barrier: every live shard snapshots its stripe, the
    /// feeder merges and publishes. Shards that fail to reply within
    /// the stall timeout are quarantined and the snapshot proceeds
    /// without their stripe (degraded but alive).
    fn barrier_snapshot(&mut self) -> Vec<ShardSnapshot> {
        let shards = self.senders.len();
        let (reply_tx, reply_rx) = bounded::<ShardSnapshot>(shards.max(1));
        let mut expected = 0usize;
        for shard in 0..shards {
            let Some(sender) = self.senders[shard].clone() else {
                continue;
            };
            match sender.send(Msg::Snapshot(reply_tx.clone())) {
                Ok(()) => expected += 1,
                Err(_) => self.senders[shard] = None,
            }
        }
        drop(reply_tx);
        let mut snaps: Vec<ShardSnapshot> = Vec::with_capacity(expected);
        while snaps.len() < expected {
            match reply_rx.recv_timeout(self.config.stall_timeout) {
                RecvTimeout::Item(snap) => snaps.push(snap),
                RecvTimeout::Disconnected => break,
                RecvTimeout::TimedOut => {
                    let replied: Vec<u32> = snaps.iter().map(|s| s.shard).collect();
                    let stalled_ms =
                        u64::try_from(self.config.stall_timeout.as_millis()).unwrap_or(0);
                    for shard in 0..shards {
                        let responded = replied.contains(&u32::try_from(shard).unwrap_or(u32::MAX));
                        if self.senders[shard].is_some() && !responded {
                            self.quarantine_shard(shard, stalled_ms);
                        }
                    }
                    break;
                }
            }
        }
        snaps
    }
}

/// Runs the engine over `source` until end-of-feed, drain, or a
/// simulated crash.
///
/// # Errors
///
/// Fails on an unrecoverable transport error, an exhausted quarantine
/// budget, a checkpoint that cannot be written, a restore whose state
/// does not match the configured detector, or a panicked worker.
#[allow(clippy::too_many_lines)] // the feeder loop reads best unfragmented
pub fn run(config: &LiveConfig, source: &mut dyn ObservationSource) -> Result<LiveOutcome, String> {
    if config.shards == 0 {
        return Err("shard count must be at least 1".to_owned());
    }
    let shards = config.shards as usize;

    // Restore from the newest valid snapshot, if checkpointing is on.
    let (restored, restore_warnings) = match &config.checkpoint_dir {
        Some(dir) => Checkpoint::load_latest(dir),
        None => (None, Vec::new()),
    };
    let (base, restored_from) = match restored {
        Some((checkpoint, path)) => (checkpoint, Some(path)),
        None => (Checkpoint::default(), None),
    };
    let skip_prefix = base.consumed;
    let counter = |name: &str| base.counters.get(name).copied().unwrap_or(0);

    // Partition restored stations across shards with the same map the
    // feeder routes by, so each stripe lands on its owner.
    let mut seeds: Vec<Vec<StationRecord>> = vec![Vec::new(); shards];
    for record in base.stations {
        seeds[shard_of(record.station, config.shards) as usize].push(record);
    }

    let heartbeats: Vec<Arc<AtomicU64>> = (0..shards).map(|_| Arc::default()).collect();
    let kills: Vec<Arc<AtomicBool>> = (0..shards).map(|_| Arc::default()).collect();
    let shutdown = Arc::new(AtomicBool::new(false));

    let scope_result = crossbeam::thread::scope(|scope| -> Result<LiveOutcome, String> {
        let mut handles = Vec::with_capacity(shards);
        let mut senders = Vec::with_capacity(shards);
        for (shard, seed) in seeds.drain(..).enumerate() {
            let (tx, rx) = bounded::<Msg>(config.queue_capacity);
            senders.push(Some(tx));
            let heartbeat = Arc::clone(&heartbeats[shard]);
            let kill = Arc::clone(&kills[shard]);
            let stop = Arc::clone(&shutdown);
            let (detector, diagnosis, correction, faults) = (
                config.detector,
                config.diagnosis,
                config.correction,
                config.faults,
            );
            handles.push(scope.spawn(move |_| {
                shard_worker(
                    u32::try_from(shard).unwrap_or(u32::MAX),
                    &rx,
                    seed,
                    detector,
                    diagnosis,
                    correction,
                    &heartbeat,
                    &kill,
                    &stop,
                    faults,
                )
            }));
        }

        let mut feeder = Feeder {
            config,
            senders,
            heartbeats: &heartbeats,
            kills: &kills,
            last_beat: vec![0; shards],
            sample_every: vec![1; shards],
            sample_seq: vec![0; shards],
            now_us: base.elapsed_us,
            quarantined: counter("live.quarantined"),
            shed_dropped: counter("live.shed_dropped"),
            sampled_out: counter("live.sampled_out"),
            shards_quarantined: counter("live.shards_quarantined"),
        };

        // Counts records pulled from the source. The feed replays from
        // its beginning even after a restore, so this starts at zero
        // and the first `skip_prefix` records (already folded into the
        // restored detector state) are skipped as they stream past.
        let mut consumed = 0u64;
        let mut quarantined_this_run = 0u64;
        let mut checkpoints_written = 0u64;
        let mut crashed = false;
        let mut drained = false;
        let mut fail: Option<String> = None;

        let write_snapshot = |feeder: &mut Feeder<'_>,
                              consumed: u64,
                              checkpoints_written: &mut u64|
         -> Result<(), String> {
            let Some(dir) = &config.checkpoint_dir else {
                return Ok(());
            };
            let snaps = feeder.barrier_snapshot();
            let mut stations: Vec<StationRecord> = Vec::new();
            let mut elapsed_us = base.elapsed_us;
            for snap in snaps {
                elapsed_us = elapsed_us.max(snap.elapsed_us);
                stations.extend(snap.stations);
            }
            stations.sort_by_key(|r| r.station);
            let n_stations = u64::try_from(stations.len()).unwrap_or(u64::MAX);
            let checkpoint = Checkpoint {
                consumed,
                elapsed_us,
                counters: feeder.counters(),
                stations,
            };
            checkpoint
                .write(dir)
                .map_err(|e| format!("checkpoint write: {e}"))?;
            *checkpoints_written += 1;
            config.sink.emit(
                feeder.now_us,
                NO_NODE,
                ObsEvent::LiveCheckpointWritten {
                    consumed,
                    stations: n_stations,
                },
            );
            Ok(())
        };

        loop {
            if config
                .drain
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
            {
                drained = true;
                break;
            }
            if config.stop_after.is_some_and(|stop| consumed >= stop) {
                crashed = true;
                break;
            }
            match source.next_observation() {
                Ok(None) => break,
                Ok(Some(obs)) => {
                    consumed += 1;
                    if consumed <= skip_prefix {
                        continue; // already folded into the restored state
                    }
                    feeder.route(obs);
                }
                Err(SourceError::Malformed(_)) => {
                    consumed += 1;
                    if consumed <= skip_prefix {
                        continue; // counted by the checkpoint we restored
                    }
                    feeder.quarantined += 1;
                    quarantined_this_run += 1;
                    config.sink.emit(
                        feeder.now_us,
                        NO_NODE,
                        ObsEvent::LiveQuarantined {
                            source: 0,
                            record: consumed,
                        },
                    );
                    if quarantined_this_run > config.quarantine_budget {
                        fail = Some(format!(
                            "quarantine budget exhausted: {quarantined_this_run} malformed \
                             records in one run (budget {})",
                            config.quarantine_budget
                        ));
                        break;
                    }
                }
                Err(SourceError::Transport(e)) => {
                    fail = Some(format!("feed transport failure: {e}"));
                    break;
                }
            }
            if config.checkpoint_every > 0
                && consumed > skip_prefix
                && consumed.is_multiple_of(config.checkpoint_every)
            {
                if let Err(e) = write_snapshot(&mut feeder, consumed, &mut checkpoints_written) {
                    fail = Some(e);
                    break;
                }
            }
        }

        // Clean end or drain: flush a final snapshot. A simulated crash
        // (`stop_after`) deliberately skips it — only the periodic
        // snapshots survive, as in a real kill.
        if fail.is_none() && !crashed {
            if let Err(e) = write_snapshot(&mut feeder, consumed, &mut checkpoints_written) {
                fail = Some(e);
            }
        }

        // Close the queues (workers drain and exit), then join.
        shutdown.store(true, Ordering::Relaxed);
        feeder.senders.clear();
        let mut results = Vec::with_capacity(shards);
        for (shard, handle) in handles.into_iter().enumerate() {
            let joined = handle
                .join()
                .map_err(|_| format!("shard {shard} worker panicked"))?;
            results.push(joined?);
        }
        if let Some(message) = fail {
            return Err(message);
        }

        // Merge stripes (disjoint by construction of the shard map).
        let mut merged: BTreeMap<u32, (StationRecord, f64)> = BTreeMap::new();
        let mut elapsed_us = base.elapsed_us;
        let mut latencies_us = Vec::new();
        for result in results {
            elapsed_us = elapsed_us.max(result.elapsed_us);
            latencies_us.extend(result.latencies_us);
            for (record, statistic) in result.stations {
                merged.insert(record.station, (record, statistic));
            }
        }
        let mut observations_total = 0u64;
        let mut flagged_total = 0u64;
        let verdicts: Vec<StationVerdict> = merged
            .into_values()
            .map(|(record, statistic)| {
                observations_total += record.observations;
                flagged_total += record.flagged;
                StationVerdict {
                    station: record.station,
                    statistic,
                    observations: record.observations,
                    flagged: record.flagged,
                }
            })
            .collect();

        let mut summary = RunSummary::new(
            config.label.clone(),
            config.seed,
            config.config_digest(),
            elapsed_us,
        );
        summary.counters = feeder.counters();
        summary
            .counters
            .insert("live.consumed".to_owned(), consumed);
        summary
            .counters
            .insert("live.observations".to_owned(), observations_total);
        summary.counters.insert(
            "live.stations".to_owned(),
            u64::try_from(verdicts.len()).unwrap_or(u64::MAX),
        );
        summary
            .counters
            .insert("live.flagged".to_owned(), flagged_total);

        Ok(LiveOutcome {
            summary,
            verdicts,
            checkpoints_written,
            restored_from,
            restore_warnings,
            crashed,
            drained,
            latencies_us,
        })
    });
    scope_result.map_err(|_| "live engine panicked".to_owned())?
}

#[cfg(test)]
mod tests {
    use super::{run, shard_of, LiveConfig, LiveFaults, OverflowPolicy};
    use airguard_core::{ObservationSource, SourceError, StationObservation};
    use airguard_obs::{Category, EventSink};
    use std::time::Duration;

    /// An in-memory source: observations interleaved with malformed
    /// records at fixed positions.
    #[derive(Debug)]
    struct VecSource {
        items: Vec<Result<StationObservation, ()>>,
        pos: usize,
    }

    impl VecSource {
        fn honest(records: u64, stations: u32) -> Self {
            let items = (0..records)
                .map(|i| {
                    Ok(StationObservation {
                        t_us: (i + 1) * 100,
                        station: u32::try_from(i).unwrap_or(0) % stations,
                        assigned_slots: 16.0,
                        observed_slots: 16.0,
                    })
                })
                .collect();
            VecSource { items, pos: 0 }
        }
    }

    impl ObservationSource for VecSource {
        fn next_observation(&mut self) -> Result<Option<StationObservation>, SourceError> {
            let item = self.items.get(self.pos).copied();
            self.pos += 1;
            match item {
                None => Ok(None),
                Some(Ok(obs)) => Ok(Some(obs)),
                Some(Err(())) => Err(SourceError::Malformed("injected".into())),
            }
        }
    }

    #[test]
    fn shard_map_is_stable_and_in_range() {
        for station in 0..100 {
            let s = shard_of(station, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(station, 4), "stable");
        }
        assert_eq!(shard_of(7, 1), 0);
    }

    #[test]
    fn honest_feed_produces_no_flags_and_counts_everything() {
        let mut source = VecSource::honest(200, 7);
        let outcome = run(&LiveConfig::new(3), &mut source).expect("run");
        assert_eq!(outcome.summary.counters["live.consumed"], 200);
        assert_eq!(outcome.summary.counters["live.observations"], 200);
        assert_eq!(outcome.summary.counters["live.stations"], 7);
        assert_eq!(outcome.summary.counters["live.flagged"], 0);
        assert_eq!(outcome.summary.counters["live.quarantined"], 0);
        assert_eq!(outcome.summary.elapsed_us, 200 * 100);
        assert!(outcome.verdicts.iter().all(|v| !v.misbehaving()));
    }

    #[test]
    fn misbehaving_station_is_flagged() {
        let mut source = VecSource::honest(100, 4);
        // Station 0 idles far less than assigned: textbook misbehavior.
        for item in source.items.iter_mut().flatten() {
            if item.station == 0 {
                item.observed_slots = 1.0;
            }
        }
        let outcome = run(&LiveConfig::new(2), &mut source).expect("run");
        let cheat = outcome
            .verdicts
            .iter()
            .find(|v| v.station == 0)
            .expect("station 0");
        assert!(cheat.misbehaving(), "{cheat:?}");
        let honest_flags: u64 = outcome
            .verdicts
            .iter()
            .filter(|v| v.station != 0)
            .map(|v| v.flagged)
            .sum();
        assert_eq!(honest_flags, 0);
    }

    #[test]
    fn summaries_are_byte_identical_across_shard_counts() {
        let render = |shards: u32| {
            let mut source = VecSource::honest(300, 11);
            run(&LiveConfig::new(shards), &mut source)
                .expect("run")
                .summary
                .to_json()
        };
        let one = render(1);
        assert_eq!(one, render(2));
        assert_eq!(one, render(4));
    }

    #[test]
    fn malformed_records_are_quarantined_with_events() {
        let mut source = VecSource::honest(50, 3);
        source.items.insert(10, Err(()));
        source.items.insert(25, Err(()));
        let mut config = LiveConfig::new(2);
        config.sink = EventSink::enabled();
        let outcome = run(&config, &mut source).expect("run");
        assert_eq!(outcome.summary.counters["live.quarantined"], 2);
        assert_eq!(outcome.summary.counters["live.consumed"], 52);
        assert_eq!(outcome.summary.counters["live.observations"], 50);
        let quarantines = config
            .sink
            .records()
            .into_iter()
            .filter(|r| r.event.category() == Category::Live && r.event.kind() == "quarantined")
            .count();
        assert_eq!(quarantines, 2);
    }

    #[test]
    fn quarantine_budget_exhaustion_is_a_loud_failure() {
        let mut source = VecSource::honest(10, 2);
        for i in 0..5 {
            source.items.insert(i * 2, Err(()));
        }
        let mut config = LiveConfig::new(1);
        config.quarantine_budget = 3;
        let err = run(&config, &mut source).expect_err("budget");
        assert!(err.contains("quarantine budget exhausted"), "{err}");
    }

    #[test]
    fn stalled_shard_is_quarantined_while_others_keep_serving() {
        let mut source = VecSource::honest(400, 4);
        let mut config = LiveConfig::new(2);
        config.queue_capacity = 4;
        config.stall_timeout = Duration::from_millis(30);
        config.faults = LiveFaults {
            stall_station: Some(0),
        };
        config.sink = EventSink::enabled();
        let outcome = run(&config, &mut source).expect("run");
        assert_eq!(outcome.summary.counters["live.shards_quarantined"], 1);
        assert!(outcome.summary.counters["live.shed_dropped"] > 0);
        // Stations on the surviving shard processed their whole feed.
        let healthy_shard = 1 - shard_of(0, 2);
        let healthy: Vec<_> = outcome
            .verdicts
            .iter()
            .filter(|v| shard_of(v.station, 2) == healthy_shard)
            .collect();
        assert!(!healthy.is_empty());
        for v in healthy {
            assert_eq!(v.observations, 100, "{v:?}");
        }
        let quarantine_events = config
            .sink
            .records()
            .into_iter()
            .filter(|r| r.event.kind() == "shard_quarantined")
            .count();
        assert_eq!(quarantine_events, 1);
    }

    #[test]
    fn drain_flag_stops_the_feeder_cleanly() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let mut source = VecSource::honest(100, 2);
        let flag = Arc::new(AtomicBool::new(true)); // drain before record 1
        let mut config = LiveConfig::new(2);
        config.drain = Some(Arc::clone(&flag));
        let outcome = run(&config, &mut source).expect("run");
        assert!(outcome.drained);
        assert_eq!(outcome.summary.counters["live.consumed"], 0);
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn drop_oldest_sheds_with_counters_under_a_stalled_consumer() {
        let mut source = VecSource::honest(100, 1); // one station → one shard
        let mut config = LiveConfig::new(1);
        config.overflow = OverflowPolicy::DropOldest;
        config.queue_capacity = 2;
        config.faults = LiveFaults {
            stall_station: Some(0),
        };
        let outcome = run(&config, &mut source).expect("run");
        // The stalled worker consumed nothing past the stall point, so
        // nearly the whole feed was evicted — all of it counted.
        assert!(
            outcome.summary.counters["live.shed_dropped"] >= 90,
            "{:?}",
            outcome.summary.counters
        );
        assert_eq!(outcome.summary.counters["live.consumed"], 100);
    }

    #[test]
    fn rejects_zero_shards() {
        let mut source = VecSource::honest(1, 1);
        let err = run(&LiveConfig::new(0), &mut source).expect_err("zero shards");
        assert!(err.contains("at least 1"));
    }
}
