//! A minimal JSON reader for feed records and checkpoints.
//!
//! The offline build vendors a no-op `serde`, and the only JSON code in
//! the workspace is the *writer* in `airguard_obs::JsonObject` — so the
//! live service brings its own parser. It reads exactly the JSON the
//! workspace emits (single-line objects with string/number/bool/null
//! fields, nested objects and arrays) plus standard escapes, and turns
//! every malformed input into a typed error instead of a panic: a
//! garbage byte on the feed must become a quarantined record, never a
//! crashed shard.

use std::collections::BTreeMap;

/// Maximum nesting depth accepted before a value is rejected: feed
/// records are flat, checkpoints nest twice, so anything deep is either
/// corruption or an attack on the parser's stack.
const MAX_DEPTH: u32 = 32;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number; `u64` extraction checks integer-ness.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Key order is not preserved; feed schemas never repeat
    /// keys, and a repeated key keeps the last value like serde does.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (a feed line must be exactly one record).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes after value at offset {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a finite float.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as an exact non-negative integer. Rejects fractions,
    /// negatives, and magnitudes beyond 2^53 (where `f64` stops
    /// representing every integer, so "exact" can no longer be
    /// promised).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        const EXACT_MAX: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            // `n == n.trunc()` is an exact integral test, not a
            // tolerance question: truncation either returns the same
            // representation (no fraction) or a different one.
            #[allow(clippy::float_cmp)]
            JsonValue::Num(n)
                if n.is_finite() && *n >= 0.0 && *n <= EXACT_MAX && *n == n.trunc() =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b) if *b == b'-' || b.is_ascii_digit() => parse_number(bytes, pos),
        Some(b) => Err(format!(
            "unexpected byte 0x{b:02x} at offset {pos}",
            pos = *pos
        )),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("malformed literal at offset {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("non-UTF-8 number at offset {start}"))?;
    match text.parse::<f64>() {
        Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
        _ => Err(format!("malformed number `{text}` at offset {start}")),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        // Surrogates are rejected rather than paired: the
                        // workspace's writer never emits them.
                        let ch = char::from_u32(code)
                            .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                        out.push(ch);
                        *pos += 4;
                    }
                    _ => return Err("bad escape in string".into()),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return Err("raw control byte in string".into()),
            Some(_) => {
                // Copy one UTF-8 scalar; invalid UTF-8 is an error.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "non-UTF-8 bytes in string".to_owned())?;
                let ch = rest
                    .chars()
                    .next()
                    .ok_or_else(|| "empty string tail".to_owned())?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: u32) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at offset {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::JsonValue;

    #[test]
    fn parses_a_feed_record() {
        let line = r#"{"t_us":1250,"node":0,"cat":"monitor","event":"backoff_assigned","src":3,"assigned_slots":14.5,"observed_slots":2,"xid":77}"#;
        let v = JsonValue::parse(line).expect("valid record");
        assert_eq!(v.get("t_us").and_then(JsonValue::as_u64), Some(1250));
        assert_eq!(v.get("src").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(
            v.get("assigned_slots").and_then(JsonValue::as_f64),
            Some(14.5)
        );
        assert_eq!(v.get("cat").and_then(JsonValue::as_str), Some("monitor"));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_obs_writer_output() {
        let mut obj = airguard_obs::JsonObject::new();
        obj.str("label", "a \"quoted\" λ label")
            .u64("seed", u64::from(u32::MAX))
            .f64("score", 0.30000000000000004)
            .bool("on", true)
            .raw("xs", "[1,2,3]");
        let text = obj.finish();
        let v = JsonValue::parse(&text).expect("writer output parses");
        assert_eq!(
            v.get("label").and_then(JsonValue::as_str),
            Some("a \"quoted\" λ label")
        );
        assert_eq!(
            v.get("score").and_then(JsonValue::as_f64),
            Some(0.30000000000000004)
        );
        assert_eq!(
            v.get("xs").and_then(JsonValue::as_arr).map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn u64_extraction_rejects_fractions_negatives_and_giants() {
        assert_eq!(JsonValue::Num(1.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1e300).as_u64(), None);
        assert_eq!(JsonValue::Num(0.0).as_u64(), Some(0));
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\" 1}",
            "[1,2",
            "\"unterminated",
            "tru",
            "1e999",
            "nan",
            "{\"a\":1} trailing",
            "{\"a\":\"\\q\"}",
            "{\"a\":\"\\u12\"}",
            "\u{1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(JsonValue::parse(&deep).is_err());
        let ok = format!("{}1{}", "[".repeat(8), "]".repeat(8));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn escapes_resolve() {
        let v = JsonValue::parse(r#""a\\b\n\t\u0041""#).expect("escapes");
        assert_eq!(v.as_str(), Some("a\\b\n\tA"));
    }
}
