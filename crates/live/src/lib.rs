//! `airguard-live`: a crash-tolerant streaming detection service.
//!
//! Where the rest of the workspace detects MAC-layer backoff
//! misbehavior inside a closed simulation, this crate runs the same
//! per-sender detectors ([`airguard_core::DeviationDetector`]) as a
//! long-lived service over an external observation feed — a replayed
//! `.events.jsonl` export, a length-prefixed frame file, or a TCP
//! listener. The service is built around four robustness guarantees:
//!
//! * **Backpressure, never silent loss** — observations route through
//!   bounded per-shard queues ([`channel`]); a full queue either blocks
//!   the feeder, evicts the oldest record, or degrades to sampling
//!   ([`OverflowPolicy`]), and every shed record is counted and emitted
//!   as a typed `live.*` event.
//! * **Malformed-input tolerance** — undecodable or out-of-range feed
//!   records are quarantined with a per-run error budget ([`replay`]);
//!   broken transports re-open with exponential backoff
//!   ([`SupervisedSource`]). A hostile byte on the wire can cost one
//!   record, never the service.
//! * **Snapshot/restore** — periodic checkpoint barriers export every
//!   detector's state to a crash-safe file ([`checkpoint`]); a restart
//!   restores the newest valid snapshot and replays forward, and under
//!   the lossless policy the final summary is byte-identical to an
//!   uninterrupted run.
//! * **Stuck-shard quarantine and graceful drain** — a watchdog built
//!   on per-shard heartbeats isolates a wedged worker while the others
//!   keep serving; a drain flag (the SIGTERM hook) flushes a final
//!   snapshot and exits cleanly.
//!
//! Determinism: per-station verdicts depend only on that station's
//! observation order, which the FNV station→shard map and FIFO queues
//! preserve — so results are independent of shard count and thread
//! timing (see [`engine`]). DESIGN.md §17 documents the architecture.

#![warn(missing_docs)]

pub mod channel;
pub mod checkpoint;
pub mod cli;
pub mod engine;
pub mod json;
pub mod replay;

pub use channel::{bounded, Receiver, RecvTimeout, SendError, Sender};
pub use checkpoint::{Checkpoint, StationRecord};
pub use engine::{
    run, shard_of, LiveConfig, LiveFaults, LiveOutcome, OverflowPolicy, StationVerdict,
};
pub use replay::{FrameSource, JsonlSource, SocketSource, SupervisedSource};
