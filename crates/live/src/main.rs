//! `airguard-live` — crash-tolerant streaming detection service.
//!
//! All logic lives in the library (`airguard_live::cli`); this shim
//! only forwards the exit code.

fn main() {
    std::process::exit(airguard_live::cli::cli_main());
}
