//! Observation sources: JSONL replay, length-prefixed frame files, a
//! TCP listener, and the supervising wrapper that re-opens failed
//! transports with exponential backoff.
//!
//! All sources speak [`ObservationSource`]: `Ok(Some)` is a clean
//! observation, `Ok(None)` a clean end of stream, `Malformed` a
//! quarantinable record (the stream continues past it), and `Transport`
//! a broken feed. The decode path never panics — a hostile byte on the
//! wire must become a typed error the engine can count.
//!
//! The JSONL schema is exactly what `airguard_obs::record_to_json`
//! emits for the monitor category: the live service consumes
//! `backoff_assigned` records (`src` is the monitored station) and
//! silently skips every other well-formed telemetry line, so a full
//! `.events.jsonl` export replays unmodified.

use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::sync::Arc;

use airguard_core::{ObservationSource, SourceError, StationObservation};
use airguard_obs::{EventSink, ObsEvent, NO_NODE};

use crate::json::JsonValue;

/// Slot counts beyond this are treated as corruption: the modified
/// protocol caps assignments at `max_assignment` (1023 by default), so
/// a six-digit slot count on the feed is a flipped byte, not a backoff.
pub const MAX_SLOTS: f64 = 1_000_000.0;

/// Frames longer than this are rejected before allocation; a feed
/// record is a single JSON line, far below this bound.
pub const MAX_FRAME: usize = 65_536;

/// Interprets one parsed feed record. `Ok(None)` means the line is
/// well-formed telemetry of some other kind (skipped, not quarantined).
fn observation_from_record(value: &JsonValue) -> Result<Option<StationObservation>, String> {
    let is_backoff = value.get("cat").and_then(JsonValue::as_str) == Some("monitor")
        && value.get("event").and_then(JsonValue::as_str) == Some("backoff_assigned");
    if !is_backoff {
        return Ok(None);
    }
    let t_us = value
        .get("t_us")
        .and_then(JsonValue::as_u64)
        .ok_or("missing or out-of-range `t_us`")?;
    let station = value
        .get("src")
        .and_then(JsonValue::as_u64)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or("missing or out-of-range `src`")?;
    let assigned_slots = value
        .get("assigned_slots")
        .and_then(JsonValue::as_f64)
        .ok_or("missing or non-finite `assigned_slots`")?;
    let observed_slots = value
        .get("observed_slots")
        .and_then(JsonValue::as_f64)
        .ok_or("missing or non-finite `observed_slots`")?;
    if !(0.0..=MAX_SLOTS).contains(&assigned_slots) || !(0.0..=MAX_SLOTS).contains(&observed_slots)
    {
        return Err("slot count outside [0, 1e6]".into());
    }
    Ok(Some(StationObservation {
        t_us,
        station,
        assigned_slots,
        observed_slots,
    }))
}

/// Decodes one JSONL line (without trailing newline) into an
/// observation, a skip, or a malformed-record error.
fn decode_line(bytes: &[u8]) -> Result<Option<StationObservation>, SourceError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| SourceError::Malformed("non-UTF-8 feed line".into()))?;
    if text.trim().is_empty() {
        return Ok(None);
    }
    let value = JsonValue::parse(text.trim_end())
        .map_err(|e| SourceError::Malformed(format!("malformed record: {e}")))?;
    observation_from_record(&value).map_err(SourceError::Malformed)
}

/// Replays observations from a JSONL byte stream (file, socket, or any
/// reader).
#[derive(Debug)]
pub struct JsonlSource<R> {
    reader: BufReader<R>,
    line: Vec<u8>,
}

impl JsonlSource<std::fs::File> {
    /// Opens a `.events.jsonl` replay file.
    pub fn open(path: &std::path::Path) -> Result<Self, SourceError> {
        let file = std::fs::File::open(path)
            .map_err(|e| SourceError::Transport(format!("open {}: {e}", path.display())))?;
        Ok(JsonlSource::new(file))
    }
}

impl<R: Read> JsonlSource<R> {
    /// Wraps any reader producing JSONL records.
    pub fn new(reader: R) -> Self {
        JsonlSource {
            reader: BufReader::new(reader),
            line: Vec::new(),
        }
    }
}

impl<R: Read + std::fmt::Debug + Send> ObservationSource for JsonlSource<R> {
    fn next_observation(&mut self) -> Result<Option<StationObservation>, SourceError> {
        loop {
            self.line.clear();
            let n = self
                .reader
                .read_until(b'\n', &mut self.line)
                .map_err(|e| SourceError::Transport(format!("read: {e}")))?;
            if n == 0 {
                return Ok(None);
            }
            match decode_line(&self.line)? {
                Some(obs) => return Ok(Some(obs)),
                None => continue, // other telemetry, or a blank line
            }
        }
    }
}

/// Replays observations from a length-prefixed binary frame file: each
/// frame is a little-endian `u32` payload length followed by one JSON
/// record. A corrupt length prefix destroys framing, so the decoder
/// quarantines the frame and resynchronises by advancing one byte —
/// progress is guaranteed, and the per-source error budget bounds how
/// long a shredded file is chewed on.
#[derive(Debug)]
pub struct FrameSource {
    bytes: Vec<u8>,
    pos: usize,
}

impl FrameSource {
    /// Opens a frame file (fully buffered; feeds are replay-sized).
    pub fn open(path: &std::path::Path) -> Result<Self, SourceError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SourceError::Transport(format!("open {}: {e}", path.display())))?;
        Ok(FrameSource { bytes, pos: 0 })
    }

    /// Builds a frame file image from JSONL record lines.
    #[must_use]
    pub fn encode(lines: &[&str]) -> Vec<u8> {
        let mut out = Vec::new();
        for line in lines {
            let len = u32::try_from(line.len()).unwrap_or(u32::MAX);
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(line.as_bytes());
        }
        out
    }
}

impl ObservationSource for FrameSource {
    fn next_observation(&mut self) -> Result<Option<StationObservation>, SourceError> {
        loop {
            if self.pos >= self.bytes.len() {
                return Ok(None);
            }
            let Some(header) = self.bytes.get(self.pos..self.pos + 4) else {
                self.pos = self.bytes.len();
                return Err(SourceError::Malformed("truncated frame header".into()));
            };
            let mut len_bytes = [0u8; 4];
            len_bytes.copy_from_slice(header);
            let len = u32::from_le_bytes(len_bytes) as usize;
            if len == 0 || len > MAX_FRAME {
                // Resync one byte forward; the budget bounds the chew.
                self.pos += 1;
                return Err(SourceError::Malformed(format!(
                    "implausible frame length {len}"
                )));
            }
            let start = self.pos + 4;
            let Some(payload) = self.bytes.get(start..start + len) else {
                self.pos = self.bytes.len();
                return Err(SourceError::Malformed("truncated frame payload".into()));
            };
            self.pos = start + len;
            match decode_line(payload)? {
                Some(obs) => return Ok(Some(obs)),
                None => continue,
            }
        }
    }
}

/// Live feed: accepts JSONL connections on a TCP listener. Each
/// accepted connection streams records; when a peer disconnects the
/// source reports `Transport`, and the supervising wrapper re-opens it
/// by accepting the next connection.
#[derive(Debug)]
pub struct SocketSource {
    listener: Arc<TcpListener>,
    conn: Option<JsonlSource<std::net::TcpStream>>,
}

impl SocketSource {
    /// Binds the listener address.
    pub fn bind(addr: &str) -> Result<Self, SourceError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| SourceError::Transport(format!("bind {addr}: {e}")))?;
        Ok(SocketSource {
            listener: Arc::new(listener),
            conn: None,
        })
    }

    /// A second handle accepting from the same bound listener (the
    /// re-open factory for [`SupervisedSource`]).
    #[must_use]
    pub fn reopen_handle(&self) -> Arc<TcpListener> {
        Arc::clone(&self.listener)
    }

    /// The locally bound address (useful with port 0 in tests).
    pub fn local_addr(&self) -> Result<std::net::SocketAddr, SourceError> {
        self.listener
            .local_addr()
            .map_err(|e| SourceError::Transport(format!("local_addr: {e}")))
    }

    /// Builds a source from an already-shared listener.
    #[must_use]
    pub fn from_listener(listener: Arc<TcpListener>) -> Self {
        SocketSource {
            listener,
            conn: None,
        }
    }
}

impl ObservationSource for SocketSource {
    fn next_observation(&mut self) -> Result<Option<StationObservation>, SourceError> {
        if self.conn.is_none() {
            let (stream, _peer) = self
                .listener
                .accept()
                .map_err(|e| SourceError::Transport(format!("accept: {e}")))?;
            self.conn = Some(JsonlSource::new(stream));
        }
        let conn = self
            .conn
            .as_mut()
            .ok_or_else(|| SourceError::Transport("connection vanished".into()))?;
        match conn.next_observation() {
            // EOF on a socket is a peer disconnect, not end-of-feed:
            // surface it as Transport so the supervisor re-accepts.
            Ok(None) => {
                self.conn = None;
                Err(SourceError::Transport("peer closed the feed".into()))
            }
            Err(SourceError::Transport(e)) => {
                self.conn = None;
                Err(SourceError::Transport(e))
            }
            other => other,
        }
    }
}

/// Supervision wrapper: passes malformed records through (the engine
/// quarantines them), and turns transport failures into bounded
/// re-open attempts with exponential backoff, each reported as a
/// [`ObsEvent::LiveSourceReopened`].
pub struct SupervisedSource {
    factory: Box<dyn FnMut() -> Result<Box<dyn ObservationSource>, SourceError> + Send>,
    inner: Option<Box<dyn ObservationSource>>,
    /// Consecutive failed-transport count since the last clean pull.
    attempts: u32,
    /// Re-opens allowed per failure streak; exceeded → terminal error.
    max_reopens: u32,
    /// First retry delay; doubles per consecutive failure.
    backoff_base_ms: u64,
    /// Backoff ceiling.
    backoff_cap_ms: u64,
    sink: EventSink,
    source_id: u32,
}

impl std::fmt::Debug for SupervisedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisedSource")
            .field("attempts", &self.attempts)
            .field("max_reopens", &self.max_reopens)
            .finish_non_exhaustive()
    }
}

impl SupervisedSource {
    /// Supervises sources produced by `factory`. `source_id` labels the
    /// re-open events when a service watches several feeds.
    pub fn new(
        source_id: u32,
        sink: EventSink,
        max_reopens: u32,
        backoff_base_ms: u64,
        factory: impl FnMut() -> Result<Box<dyn ObservationSource>, SourceError> + Send + 'static,
    ) -> Self {
        SupervisedSource {
            factory: Box::new(factory),
            inner: None,
            attempts: 0,
            max_reopens,
            backoff_base_ms,
            backoff_cap_ms: 10_000,
            sink,
            source_id,
        }
    }

    /// Wraps an already-open source; the factory only runs on re-open.
    #[must_use]
    pub fn with_open(mut self, source: Box<dyn ObservationSource>) -> Self {
        self.inner = Some(source);
        self
    }

    fn backoff_ms(&self) -> u64 {
        let exp = self.attempts.saturating_sub(1).min(32);
        self.backoff_base_ms
            .saturating_mul(1u64 << exp)
            .min(self.backoff_cap_ms)
    }

    fn note_failure(&mut self, error: String) -> Result<(), SourceError> {
        self.inner = None;
        self.attempts += 1;
        if self.attempts > self.max_reopens {
            return Err(SourceError::Transport(format!(
                "source {id} gave up after {n} re-open attempts: {error}",
                id = self.source_id,
                n = self.max_reopens,
            )));
        }
        let backoff_ms = self.backoff_ms();
        if backoff_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
        }
        self.sink.emit(
            0,
            NO_NODE,
            ObsEvent::LiveSourceReopened {
                source: self.source_id,
                attempt: self.attempts,
                backoff_ms,
            },
        );
        Ok(())
    }
}

impl ObservationSource for SupervisedSource {
    fn next_observation(&mut self) -> Result<Option<StationObservation>, SourceError> {
        loop {
            if self.inner.is_none() {
                match (self.factory)() {
                    Ok(source) => self.inner = Some(source),
                    Err(SourceError::Transport(e)) => {
                        self.note_failure(e)?;
                        continue;
                    }
                    Err(other) => return Err(other),
                }
            }
            let inner = self
                .inner
                .as_mut()
                .ok_or_else(|| SourceError::Transport("source vanished".into()))?;
            match inner.next_observation() {
                Ok(obs) => {
                    self.attempts = 0;
                    return Ok(obs);
                }
                Err(SourceError::Malformed(m)) => return Err(SourceError::Malformed(m)),
                Err(SourceError::Transport(e)) => {
                    self.note_failure(e)?;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{FrameSource, JsonlSource, SupervisedSource};
    use airguard_core::{ObservationSource, SourceError};
    use airguard_obs::{Category, EventSink};

    fn record(t_us: u64, src: u32, assigned: f64, observed: f64) -> String {
        format!(
            "{{\"t_us\":{t_us},\"node\":0,\"cat\":\"monitor\",\"event\":\"backoff_assigned\",\"src\":{src},\"assigned_slots\":{assigned},\"observed_slots\":{observed},\"xid\":1}}"
        )
    }

    #[test]
    fn jsonl_replay_yields_backoff_records_and_skips_the_rest() {
        let feed = format!(
            "{}\n{{\"t_us\":5,\"node\":1,\"cat\":\"mac\",\"event\":\"rts_tx\",\"dst\":2,\"seq\":0,\"attempt\":1,\"xid\":9}}\n{}\n",
            record(10, 3, 14.0, 2.0),
            record(20, 4, 8.0, 8.0),
        );
        let mut src = JsonlSource::new(feed.as_bytes());
        let a = src.next_observation().expect("first").expect("some");
        assert_eq!((a.t_us, a.station), (10, 3));
        let b = src.next_observation().expect("second").expect("some");
        assert_eq!((b.t_us, b.station), (20, 4));
        assert_eq!(src.next_observation().expect("end"), None);
    }

    #[test]
    fn malformed_lines_are_quarantined_and_the_stream_continues() {
        let feed = format!(
            "not json at all\n{}\n{{\"t_us\":-4,\"cat\":\"monitor\",\"event\":\"backoff_assigned\",\"src\":1,\"assigned_slots\":1,\"observed_slots\":1}}\n{}\n",
            record(10, 3, 14.0, 2.0),
            record(20, 4, 8.0, 8.0),
        );
        let mut src = JsonlSource::new(feed.as_bytes());
        assert!(matches!(
            src.next_observation(),
            Err(SourceError::Malformed(_))
        ));
        assert_eq!(src.next_observation().expect("ok").expect("some").t_us, 10);
        assert!(matches!(
            src.next_observation(),
            Err(SourceError::Malformed(_))
        ));
        assert_eq!(src.next_observation().expect("ok").expect("some").t_us, 20);
        assert_eq!(src.next_observation().expect("end"), None);
    }

    #[test]
    fn out_of_range_slot_counts_are_malformed() {
        let feed = format!("{}\n", record(10, 3, 2e6, 2.0));
        let mut src = JsonlSource::new(feed.as_bytes());
        assert!(matches!(
            src.next_observation(),
            Err(SourceError::Malformed(_))
        ));
    }

    #[test]
    fn frame_codec_round_trips_and_resyncs_after_corruption() {
        let a = record(10, 3, 14.0, 2.0);
        let b = record(20, 4, 8.0, 8.0);
        let mut bytes = FrameSource::encode(&[&a]);
        // A flipped length prefix on the second frame.
        let mut broken = FrameSource::encode(&[&b]);
        broken[3] = 0xff;
        bytes.extend_from_slice(&broken);
        let mut src = FrameSource { bytes, pos: 0 };
        assert_eq!(src.next_observation().expect("ok").expect("some").t_us, 10);
        // The shredded frame produces a bounded run of malformed pulls,
        // never a panic, and always terminates.
        let mut malformed = 0;
        loop {
            match src.next_observation() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(SourceError::Malformed(_)) => malformed += 1,
                Err(SourceError::Transport(e)) => {
                    panic!("unexpected transport error: {e}");
                }
            }
            assert!(malformed < 1000, "resync failed to terminate");
        }
        assert!(malformed > 0);
    }

    #[test]
    fn supervised_source_reopens_with_backoff_events() {
        #[derive(Debug)]
        struct Flaky {
            fails_left: u32,
            yielded: bool,
        }
        impl ObservationSource for Flaky {
            fn next_observation(
                &mut self,
            ) -> Result<Option<airguard_core::StationObservation>, SourceError> {
                if self.fails_left > 0 {
                    self.fails_left -= 1;
                    return Err(SourceError::Transport("flaky".into()));
                }
                if self.yielded {
                    return Ok(None);
                }
                self.yielded = true;
                Ok(Some(airguard_core::StationObservation {
                    t_us: 1,
                    station: 7,
                    assigned_slots: 4.0,
                    observed_slots: 4.0,
                }))
            }
        }
        let sink = EventSink::enabled();
        // The initial source fails once; the first factory call fails
        // too; the second succeeds — two re-open attempts total.
        let mut factory_failures = 1u32;
        let mut supervised = SupervisedSource::new(9, sink.clone(), 5, 0, move || {
            if factory_failures > 0 {
                factory_failures -= 1;
                return Err(SourceError::Transport("still down".into()));
            }
            Ok(Box::new(Flaky {
                fails_left: 0,
                yielded: false,
            }) as Box<dyn ObservationSource>)
        })
        .with_open(Box::new(Flaky {
            fails_left: 1,
            yielded: false,
        }));
        let obs = supervised.next_observation().expect("ok").expect("some");
        assert_eq!(obs.station, 7);
        let reopens: Vec<_> = sink
            .records()
            .into_iter()
            .filter(|r| r.event.category() == Category::Live)
            .collect();
        assert_eq!(reopens.len(), 2, "{reopens:?}");
    }

    #[test]
    fn supervised_source_gives_up_past_the_reopen_budget() {
        let sink = EventSink::new();
        let mut supervised = SupervisedSource::new(1, sink, 2, 0, || {
            Err(SourceError::Transport("still down".into()))
        });
        let err = supervised.next_observation().expect_err("terminal");
        assert!(matches!(err, SourceError::Transport(m) if m.contains("gave up after 2")));
    }
}
