//! Satellite 3b: malformed-feed soak.
//!
//! A hostile or disk-damaged feed must cost the service exactly the
//! corrupted records and nothing else: no panic, no early exit, every
//! injected corruption quarantined and counted, and stations whose
//! records were untouched produce byte-identical verdicts.
//!
//! Corruption intensity is parameterised with the fault crate's
//! [`Corruption`] vocabulary — the same knobs the simulation uses for
//! observation-channel noise — so the soak's ≥1% floor is stated in the
//! workspace's own fault language rather than ad-hoc constants.

use airguard_fault::Corruption;
use airguard_live::engine::{run, LiveConfig, LiveOutcome};
use airguard_live::replay::JsonlSource;
use airguard_obs::{Category, EventSink};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeSet;

const STATIONS: u32 = 8;
const RECORDS: u64 = 1_500;

fn record(t_us: u64, src: u32, assigned: f64, observed: f64) -> String {
    format!(
        "{{\"t_us\":{t_us},\"node\":0,\"cat\":\"monitor\",\"event\":\"backoff_assigned\",\"src\":{src},\"assigned_slots\":{assigned},\"observed_slots\":{observed},\"xid\":1}}\n"
    )
}

/// The clean feed: station 0 cheats, everyone else is compliant.
fn clean_lines(seed: u64) -> Vec<(u32, String)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..RECORDS)
        .map(|i| {
            let src = rng.random_range(0..STATIONS);
            let assigned = f64::from(rng.random_range(8u32..32));
            let observed = if src == 0 {
                (assigned * 0.2).max(1.0)
            } else {
                assigned
            };
            (src, record((i + 1) * 100, src, assigned, observed))
        })
        .collect()
}

/// Damages lines in place, driven by the fault-crate corruption plan:
/// `backoff_prob` flips a record's slot count out of range (a flipped
/// high byte), `attempt_prob` shreds the line structurally (truncation
/// or raw non-UTF-8 bytes). Returns the injected count and the set of
/// stations whose records were touched.
fn corrupt(lines: &mut [(u32, Vec<u8>)], plan: &Corruption, seed: u64) -> (u64, BTreeSet<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut injected = 0u64;
    let mut touched = BTreeSet::new();
    for (src, line) in lines.iter_mut() {
        // Only the lower half of the station ids is eligible for
        // damage, so the upper half is a guaranteed-clean control
        // group for the verdict comparison below.
        if *src >= STATIONS / 2 {
            continue;
        }
        let roll: f64 = rng.random_range(0.0..1.0);
        if roll < plan.backoff_prob {
            // Out-of-range slot count: parses as JSON, rejected by the
            // schema validator.
            let bad = 1_000_001.0 + f64::from(plan.backoff_max_delta);
            *line = record(1, *src, bad, bad).into_bytes();
        } else if roll < plan.backoff_prob + plan.attempt_prob {
            match u32::from(plan.attempt_max_delta) % 3 {
                0 => line.truncate(line.len() / 2), // torn mid-record
                1 => {
                    line.clear();
                    line.extend_from_slice(&[0xFF, 0xFE, b'{', 0x80, b'\n']);
                }
                _ => {
                    line.clear();
                    line.extend_from_slice(b"{\"t_us\":not json at all\n");
                }
            }
        } else {
            continue;
        }
        injected += 1;
        touched.insert(*src);
    }
    (injected, touched)
}

fn run_bytes(feed: &[u8], sink: EventSink) -> LiveOutcome {
    let mut config = LiveConfig::new(3);
    config.sink = sink;
    let mut source = JsonlSource::new(feed);
    run(&config, &mut source).expect("soaked run must not fail")
}

#[test]
fn soak_quarantines_every_injected_corruption_and_spares_clean_stations() {
    let clean = clean_lines(2026);
    let baseline = run_bytes(
        clean
            .iter()
            .flat_map(|(_, l)| l.as_bytes().to_vec())
            .collect::<Vec<u8>>()
            .as_slice(),
        EventSink::new(),
    );

    // ~5% of the eligible (lower-half) records corrupted — ~2.5% of
    // the whole feed, comfortably past the 1% soak floor.
    let plan = Corruption {
        backoff_prob: 0.03,
        backoff_max_delta: 2_000,
        attempt_prob: 0.02,
        attempt_max_delta: 3,
    };
    let mut lines: Vec<(u32, Vec<u8>)> = clean
        .iter()
        .map(|(src, l)| (*src, l.clone().into_bytes()))
        .collect();
    let (injected, touched) = corrupt(&mut lines, &plan, 7);
    assert!(
        injected * 100 >= RECORDS,
        "soak needs >=1% corruption, got {injected}/{RECORDS}"
    );
    assert!(
        touched.len() < STATIONS as usize,
        "need at least one untouched station to compare"
    );

    let mut feed = Vec::new();
    for (_, line) in &lines {
        feed.extend_from_slice(line);
        if feed.last() != Some(&b'\n') {
            feed.push(b'\n');
        }
    }

    let sink = EventSink::enabled();
    let soaked = run_bytes(&feed, sink.clone());

    // Every injected corruption was quarantined — counter and events
    // agree — and the run still consumed the entire feed.
    assert_eq!(soaked.summary.counters["live.quarantined"], injected);
    let quarantine_events = sink
        .records()
        .into_iter()
        .filter(|r| r.event.category() == Category::Live && r.event.kind() == "quarantined")
        .count() as u64;
    assert_eq!(quarantine_events, injected);
    assert_eq!(
        soaked.summary.counters["live.observations"] + injected,
        RECORDS,
        "each corruption costs exactly one record"
    );

    // Stations whose records were never corrupted are untouched: their
    // verdicts are byte-identical to the clean run's.
    let mut compared = 0usize;
    for verdict in &soaked.verdicts {
        if touched.contains(&verdict.station) {
            continue;
        }
        let clean_verdict = baseline
            .verdicts
            .iter()
            .find(|v| v.station == verdict.station)
            .expect("station present in clean run");
        assert_eq!(verdict.to_json(), clean_verdict.to_json());
        compared += 1;
    }
    assert!(compared > 0, "at least one clean station compared");

    // The misbehaving station is still caught if its records survived.
    if !touched.contains(&0) {
        let cheat = soaked
            .verdicts
            .iter()
            .find(|v| v.station == 0)
            .expect("station 0");
        assert!(cheat.misbehaving());
    }
}

#[test]
fn soak_survives_a_fully_shredded_feed_up_to_the_budget() {
    // Every line structurally damaged: the run fails loudly on the
    // budget (not a panic, not silence) when the feed is hopeless.
    let mut config = LiveConfig::new(2);
    config.quarantine_budget = 16;
    let feed: Vec<u8> = (0..64)
        .flat_map(|i| format!("{{\"t_us\": broken {i}\n").into_bytes())
        .collect();
    let mut source = JsonlSource::new(feed.as_slice());
    let err = run(&config, &mut source).expect_err("budget must trip");
    assert!(err.contains("quarantine budget exhausted"), "{err}");
}
