//! Satellite 3a: snapshot/restore determinism.
//!
//! The headline robustness claim of `airguard-live` is that a crash is
//! invisible in the output: killing the service at *any* record
//! boundary and restarting from the newest checkpoint yields a final
//! summary byte-identical to an uninterrupted run — at every shard
//! count, and even when the newest checkpoint on disk is torn or
//! bit-flipped (the restore falls back to the previous good one and
//! replays the longer suffix).

use std::path::{Path, PathBuf};

use airguard_live::engine::{run, LiveConfig, LiveOutcome};
use airguard_live::replay::JsonlSource;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One monitor `backoff_assigned` line, exactly as `airguard_obs`
/// exports it.
fn record(t_us: u64, src: u32, assigned: f64, observed: f64) -> String {
    format!(
        "{{\"t_us\":{t_us},\"node\":0,\"cat\":\"monitor\",\"event\":\"backoff_assigned\",\"src\":{src},\"assigned_slots\":{assigned},\"observed_slots\":{observed},\"xid\":1}}\n"
    )
}

/// A deterministic feed: `records` observations over `stations`
/// senders, station 0 misbehaving (it backs off ~20% of its
/// assignment), everyone else compliant with small jitter. Unrelated
/// telemetry lines are sprinkled in to exercise the skip path.
fn build_feed(seed: u64, stations: u32, records: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut feed = String::new();
    for i in 0..records {
        let t_us = (i + 1) * 100;
        let src = rng.random_range(0..stations);
        let assigned = f64::from(rng.random_range(8u32..32));
        let observed = if src == 0 {
            (assigned * 0.2).max(1.0)
        } else {
            assigned
        };
        if i % 17 == 0 {
            feed.push_str(&format!(
                "{{\"t_us\":{t_us},\"node\":1,\"cat\":\"mac\",\"event\":\"tx_attempt\",\"xid\":9}}\n"
            ));
        }
        feed.push_str(&record(t_us, src, assigned, observed));
    }
    feed
}

/// Runs the engine over an in-memory JSONL feed.
fn run_feed(
    feed: &str,
    shards: u32,
    dir: Option<&Path>,
    every: u64,
    stop_after: Option<u64>,
) -> LiveOutcome {
    let mut config = LiveConfig::new(shards);
    config.checkpoint_dir = dir.map(Path::to_path_buf);
    config.checkpoint_every = every;
    config.stop_after = stop_after;
    let mut source = JsonlSource::new(feed.as_bytes());
    run(&config, &mut source).expect("live run")
}

/// A unique scratch directory per test case; proptest cases must not
/// see each other's checkpoints.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("airguard-live-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders the full observable output: summary plus every verdict.
fn render(outcome: &LiveOutcome) -> String {
    let mut out = outcome.summary.to_json();
    for v in &outcome.verdicts {
        out.push('\n');
        out.push_str(&v.to_json());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Kill at a random record boundary, restart, and the final output
    /// is byte-identical to never having crashed — at shards 1, 2, 4.
    #[test]
    fn kill_and_restore_is_byte_identical(seed in 1u64..5_000, kill_at in 1u64..119) {
        let feed = build_feed(seed, 6, 120);
        for shards in [1u32, 2, 4] {
            let baseline = render(&run_feed(&feed, shards, None, 0, None));
            let dir = scratch(&format!("restore-{seed}-{kill_at}-{shards}"));
            let crashed = run_feed(&feed, shards, Some(&dir), 7, Some(kill_at));
            prop_assert!(crashed.crashed);
            let resumed = run_feed(&feed, shards, Some(&dir), 7, None);
            prop_assert!(!resumed.crashed);
            prop_assert_eq!(render(&resumed), baseline, "shards={}", shards);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn restore_resumes_from_a_checkpoint_not_from_scratch() {
    let feed = build_feed(42, 5, 100);
    let dir = scratch("resume-point");
    run_feed(&feed, 2, Some(&dir), 10, Some(57));
    let resumed = run_feed(&feed, 2, Some(&dir), 10, None);
    // The crash ran 57 records with checkpoints every 10, so the newest
    // snapshot holds 50 consumed records; the resumed run replays only
    // the suffix but still reports the whole feed.
    let restored = resumed.restored_from.expect("restored from a snapshot");
    assert!(
        restored.to_string_lossy().contains("ckpt-000000000050"),
        "{restored:?}"
    );
    assert!(
        resumed.restore_warnings.is_empty(),
        "{:?}",
        resumed.restore_warnings
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_newest_checkpoint_falls_back_and_stays_byte_identical() {
    let feed = build_feed(7, 6, 120);
    let baseline = render(&run_feed(&feed, 2, None, 0, None));
    let dir = scratch("torn");
    run_feed(&feed, 2, Some(&dir), 9, Some(80));

    // Tear the newest checkpoint mid-file, as a crash during a
    // non-atomic write would (the engine writes temp+rename precisely
    // so this never happens to its own files — we simulate disk-level
    // damage).
    let newest = newest_checkpoint(&dir);
    let bytes = std::fs::read(&newest).expect("read newest");
    std::fs::write(&newest, &bytes[..bytes.len() / 2]).expect("tear");

    let resumed = run_feed(&feed, 2, Some(&dir), 9, None);
    assert!(
        !resumed.restore_warnings.is_empty(),
        "torn file must be reported"
    );
    let restored = resumed
        .restored_from
        .clone()
        .expect("fell back to an older snapshot");
    assert_ne!(restored, newest);
    assert_eq!(render(&resumed), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_checkpoint_falls_back_and_stays_byte_identical() {
    let feed = build_feed(11, 6, 120);
    let baseline = render(&run_feed(&feed, 4, None, 0, None));
    let dir = scratch("bitflip");
    run_feed(&feed, 4, Some(&dir), 9, Some(80));

    let newest = newest_checkpoint(&dir);
    let mut bytes = std::fs::read(&newest).expect("read newest");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&newest, &bytes).expect("flip");

    let resumed = run_feed(&feed, 4, Some(&dir), 9, None);
    assert!(!resumed.restore_warnings.is_empty());
    assert_eq!(render(&resumed), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn all_checkpoints_destroyed_is_a_clean_cold_start() {
    let feed = build_feed(13, 5, 90);
    let baseline = render(&run_feed(&feed, 2, None, 0, None));
    let dir = scratch("wiped");
    run_feed(&feed, 2, Some(&dir), 8, Some(60));
    for entry in std::fs::read_dir(&dir).expect("read_dir") {
        let path = entry.expect("entry").path();
        std::fs::write(&path, b"total garbage\n").expect("wipe");
    }
    let resumed = run_feed(&feed, 2, Some(&dir), 8, None);
    assert!(resumed.restored_from.is_none(), "nothing valid to restore");
    assert!(!resumed.restore_warnings.is_empty());
    assert_eq!(render(&resumed), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Lexicographically newest `.ckpt` file — the one `load_latest` would
/// try first.
fn newest_checkpoint(dir: &Path) -> PathBuf {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read_dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "ckpt"))
        .collect();
    paths.sort();
    paths.pop().expect("at least one checkpoint")
}
