//! Closed-form timing analysis of a DCF exchange.
//!
//! Used two ways: tests cross-validate the simulator against these
//! expressions (a single saturated sender must hit the analytic
//! saturation throughput), and the benches report measured/analytic
//! ratios. The model is exact for one contention-free sender and a
//! useful reference point everywhere else.

use airguard_sim::SimDuration;

use crate::dcf::AccessMode;
use crate::frames::FrameKind;
use crate::timing::MacTiming;

/// Analytic description of one RTS/CTS/DATA/ACK exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeModel {
    /// Time on air for the four frames plus the three SIFS gaps.
    pub frames_time: SimDuration,
    /// DIFS preceding the backoff.
    pub difs: SimDuration,
    /// Duration of the *average* fresh backoff (CWmin/2 slots).
    pub mean_backoff: SimDuration,
}

impl ExchangeModel {
    /// Builds the model for `payload` bytes under `timing` with the
    /// four-way RTS/CTS handshake.
    ///
    /// `extended` selects the modified protocol's slightly larger frames
    /// (attempt byte in RTS, assignment bytes in CTS/ACK).
    #[must_use]
    pub fn new(timing: &MacTiming, payload: u32, extended: bool) -> Self {
        ExchangeModel::with_access(timing, payload, extended, AccessMode::RtsCts)
    }

    /// Builds the model for an explicit [`AccessMode`].
    #[must_use]
    pub fn with_access(
        timing: &MacTiming,
        payload: u32,
        extended: bool,
        access: AccessMode,
    ) -> Self {
        let ext_rts = u32::from(extended);
        let ext_resp = if extended { 2 } else { 0 };
        let rts = timing.air_time(FrameKind::Rts.base_bytes() + ext_rts);
        let cts = timing.air_time(FrameKind::Cts.base_bytes() + ext_resp);
        let ack = timing.air_time(FrameKind::Ack.base_bytes() + ext_resp);
        let frames_time = match access {
            AccessMode::RtsCts => {
                let data = timing.air_time(FrameKind::Data.base_bytes() + payload);
                rts + cts + data + ack + timing.sifs * 3
            }
            AccessMode::Basic => {
                // Under basic access the attempt byte rides in the DATA.
                let data = timing.air_time(FrameKind::Data.base_bytes() + payload + ext_rts);
                data + ack + timing.sifs
            }
        };
        // Mean of uniform [0, CWmin] is CWmin/2; keep microsecond
        // precision by scaling the slot.
        let mean_backoff =
            SimDuration::from_micros(timing.slot.as_micros() * u64::from(timing.cw_min) / 2);
        ExchangeModel {
            frames_time,
            difs: timing.difs,
            mean_backoff,
        }
    }

    /// Expected duration of one complete, collision-free exchange,
    /// including DIFS and the mean backoff.
    #[must_use]
    pub fn mean_exchange_time(&self) -> SimDuration {
        self.difs + self.mean_backoff + self.frames_time
    }

    /// Saturation throughput of a single sender, in bits per second:
    /// `payload_bits / mean_exchange_time`.
    #[must_use]
    pub fn saturation_bps(&self, payload: u32) -> f64 {
        f64::from(payload) * 8.0 / self.mean_exchange_time().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_exchange_takes_about_3_5_ms() {
        let timing = MacTiming::dsss_2mbps();
        let m = ExchangeModel::new(&timing, 512, false);
        // RTS 272 + CTS 248 + DATA 2352 + ACK 248 + 3·SIFS 30 = 3150 µs;
        // plus DIFS 50 + mean backoff 310 = 3510 µs.
        assert_eq!(m.frames_time.as_micros(), 3_150);
        assert_eq!(m.mean_exchange_time().as_micros(), 3_510);
    }

    #[test]
    fn saturation_is_about_1_17_mbps() {
        let timing = MacTiming::dsss_2mbps();
        let m = ExchangeModel::new(&timing, 512, false);
        let bps = m.saturation_bps(512);
        assert!((1.16e6..1.18e6).contains(&bps), "saturation {bps}");
    }

    #[test]
    fn extended_frames_cost_a_little_capacity() {
        let timing = MacTiming::dsss_2mbps();
        let base = ExchangeModel::new(&timing, 512, false).saturation_bps(512);
        let ext = ExchangeModel::new(&timing, 512, true).saturation_bps(512);
        assert!(ext < base);
        // ...but well under one percent: 5 extra bytes against 3.5 ms.
        assert!(base / ext < 1.01, "overhead ratio {}", base / ext);
    }

    #[test]
    fn basic_access_is_faster_for_large_payloads() {
        let timing = MacTiming::dsss_2mbps();
        let four_way = ExchangeModel::new(&timing, 512, false).saturation_bps(512);
        let basic =
            ExchangeModel::with_access(&timing, 512, false, AccessMode::Basic).saturation_bps(512);
        // Basic access skips 780 µs of handshake per exchange.
        assert!(basic > 1.15 * four_way, "basic {basic} vs 4-way {four_way}");
    }

    #[test]
    fn larger_payloads_are_more_efficient() {
        let timing = MacTiming::dsss_2mbps();
        let small = ExchangeModel::new(&timing, 128, false).saturation_bps(128);
        let big = ExchangeModel::new(&timing, 1024, false).saturation_bps(1024);
        assert!(big > 1.5 * small);
    }
}
