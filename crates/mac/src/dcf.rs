//! The DCF state machine.
//!
//! [`Mac`] implements the IEEE 802.11 Distributed Coordination Function as
//! an *effect machine*: the runner (or a test) feeds it [`MacInput`]s and
//! applies the [`MacEffect`]s it returns. The machine never talks to a
//! scheduler, a medium, or another node directly, which is what makes the
//! protocol logic unit-testable in isolation.
//!
//! # Protocol summary
//!
//! A sender with a queued packet backs off: once the channel (physical
//! carrier sense ∨ NAV) has been idle for DIFS, it counts down one slot
//! per idle slot time, freezing whenever the channel goes busy. At zero it
//! transmits an RTS and waits for a CTS; on CTS it sends DATA after SIFS
//! and waits for an ACK. A missing CTS or ACK increments the attempt
//! number, widens the contention window (per the policy), and backs off
//! again; after `retry_limit` attempts the packet is dropped. Receivers
//! respond to RTS with CTS (when their NAV is idle), to DATA with ACK, and
//! filter duplicate DATA by sequence number. Overheard frames addressed to
//! others update the NAV from their Duration field.
//!
//! Everything the paper's modified protocol changes — who picks backoff
//! values, what rides in CTS/ACK, what the receiver measures — enters
//! through the [`BackoffPolicy`] and is exercised by the same machine.

use std::collections::{BTreeMap, VecDeque};

use airguard_obs::{exchange_id, ObsEvent};
use airguard_sim::trace::Trace;
use airguard_sim::{NodeId, RngStream, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::drift::ClockDriftState;
use crate::frames::{ExchangeDurations, Frame, FrameKind, FramePool, FrameRef};
use crate::idle::IdleSlotCounter;
use crate::policy::{BackoffObservation, BackoffPolicy, PacketVerdict};
use crate::timing::{MacTiming, Slots};

/// Timers the MAC can arm. At most one timer per kind is pending; setting
/// a kind that is already pending replaces it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimerKind {
    /// Backoff countdown completion (DIFS + remaining slots).
    Backoff,
    /// CTS was not decoded in time after our RTS.
    CtsTimeout,
    /// ACK was not decoded in time after our DATA.
    AckTimeout,
    /// SIFS gap before transmitting a queued response (CTS/DATA/ACK).
    Response,
    /// The NAV reservation expires.
    NavExpire,
    /// NAV-reset check (802.11 §9.2.5.4): a NAV set from an overheard RTS
    /// is cancelled if the exchange it announced never starts.
    NavReset,
}

impl TimerKind {
    /// Number of timer kinds (size of a dense per-node timer table).
    pub const COUNT: usize = 6;

    /// Dense index in `0..COUNT`, for array-backed timer tables on the
    /// simulation hot path.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            TimerKind::Backoff => 0,
            TimerKind::CtsTimeout => 1,
            TimerKind::AckTimeout => 2,
            TimerKind::Response => 3,
            TimerKind::NavExpire => 4,
            TimerKind::NavReset => 5,
        }
    }
}

/// Inputs to the MAC state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MacInput {
    /// The physical channel became busy (includes this node's own
    /// transmissions, as reported by the PHY reception tracker).
    ChannelBusy,
    /// The physical channel became idle.
    ChannelIdle,
    /// A frame was decoded intact at this node (any destination; the MAC
    /// filters and handles NAV for overheard frames). The handle is
    /// shared with the medium: decoding never copies the frame.
    Decoded(FrameRef),
    /// Our own transmission finished on air.
    OwnTxEnd,
    /// A previously set timer expired.
    Timer(TimerKind),
    /// The application queues a packet of `bytes` payload bytes for `dst`.
    Enqueue {
        /// Destination node.
        dst: NodeId,
        /// Payload size in bytes.
        bytes: u32,
    },
}

/// Effects the MAC asks its environment to perform.
#[derive(Debug, Clone, PartialEq)]
pub enum MacEffect {
    /// Put the frame on the air now. The environment must deliver
    /// [`MacInput::OwnTxEnd`] when its air time elapses. The handle is
    /// shared with the MAC's own `on_air` slot — one allocation serves
    /// the whole transmission.
    StartTx(FrameRef),
    /// Arm (or re-arm) the timer of this kind to fire after `after`.
    SetTimer {
        /// Which timer.
        kind: TimerKind,
        /// Delay from now.
        after: SimDuration,
    },
    /// Cancel the pending timer of this kind, if any.
    CancelTimer(TimerKind),
    /// A new (non-duplicate) data packet arrived for the application.
    Delivered {
        /// Originating sender.
        src: NodeId,
        /// Sender-local sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u32,
    },
    /// A packet we sent was acknowledged.
    SendComplete {
        /// The receiver that acknowledged.
        dst: NodeId,
        /// Sequence number of the acknowledged packet.
        seq: u64,
        /// Payload bytes.
        bytes: u32,
        /// How many transmission attempts it took.
        attempts: u8,
        /// Total MAC delay: enqueue to ACK reception (queueing + access
        /// + retries).
        delay: SimDuration,
    },
    /// A packet exhausted its retry limit and was dropped.
    Dropped {
        /// Intended receiver.
        dst: NodeId,
        /// Sequence number of the dropped packet.
        seq: u64,
        /// Attempts made (= retry limit).
        attempts: u8,
    },
    /// The receiver-side policy classified a delivered packet
    /// (the diagnosis scheme's per-packet output).
    Classified {
        /// The sender the verdict is about.
        src: NodeId,
        /// The verdict.
        verdict: PacketVerdict,
    },
}

/// A queued outgoing packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Packet {
    dst: NodeId,
    bytes: u32,
    seq: u64,
    enqueued_at: SimTime,
}

/// Sender-side protocol phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderState {
    /// Nothing to send.
    Idle,
    /// Backoff countdown in progress (possibly frozen).
    Backoff,
    /// RTS sent; waiting for CTS.
    AwaitCts,
    /// CTS received; DATA queued/sent; waiting for ACK.
    AwaitAck,
}

/// Channel-access mode: whether data transfer is preceded by an
/// RTS/CTS reservation.
///
/// The paper assumes RTS/CTS (footnote 2) but notes the scheme "can be
/// applied even when RTS/CTS exchange is not used"; under
/// [`AccessMode::Basic`] the attempt number rides in the DATA frame and
/// the receiver measures `B_act` up to the DATA arrival instead of the
/// RTS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AccessMode {
    /// Four-way handshake: RTS → CTS → DATA → ACK.
    #[default]
    RtsCts,
    /// Two-way handshake: DATA → ACK.
    Basic,
}

/// MAC-level configuration knobs beyond the shared timing set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacConfig {
    /// Timing and window parameters.
    pub timing: MacTiming,
    /// Channel-access mode.
    pub access: AccessMode,
    /// Maximum number of packets held in the transmit queue; excess
    /// enqueues are dropped (and counted).
    pub queue_limit: usize,
    /// Extra slack added to CTS/ACK timeouts beyond SIFS + response air
    /// time, covering propagation both ways.
    pub timeout_slack: SimDuration,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            timing: MacTiming::dsss_2mbps(),
            access: AccessMode::RtsCts,
            queue_limit: 512,
            timeout_slack: SimDuration::from_micros(30),
        }
    }
}

/// Counters exposed for metrics and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacCounters {
    /// RTS frames transmitted.
    pub rts_sent: u64,
    /// CTS timeouts experienced.
    pub cts_timeouts: u64,
    /// ACK timeouts experienced.
    pub ack_timeouts: u64,
    /// Packets dropped at the retry limit.
    pub retry_drops: u64,
    /// Packets dropped at enqueue because the queue was full.
    pub queue_drops: u64,
    /// Duplicate DATA frames filtered.
    pub duplicates: u64,
}

/// The DCF state machine for one node.
#[derive(Debug)]
pub struct Mac<P> {
    id: NodeId,
    cfg: MacConfig,
    policy: P,
    rng: RngStream,
    trace: Trace,

    // Channel view.
    phys_busy: bool,
    nav_until: SimTime,
    virtual_busy: bool,
    idle_counter: IdleSlotCounter,
    /// Injected clock drift applied to every idle-slot reading the
    /// diagnosis path consumes (identity unless a fault plan sets it).
    drift: ClockDriftState,
    /// When the channel last turned physically busy (for the NAV-reset
    /// rule).
    last_busy_start: SimTime,

    // Sender side.
    queue: VecDeque<Packet>,
    next_seq: u64,
    sender: SenderState,
    attempt: u8,
    remaining: Slots,
    countdown_base: Option<SimTime>,

    // Shared transmit path. Frames are pool-allocated so the steady
    // state recycles the same few allocations run-long.
    on_air: Option<FrameRef>,
    pending_response: Option<FrameRef>,
    pool: FramePool,

    // Receiver side.
    last_delivered: BTreeMap<NodeId, u64>,

    counters: MacCounters,
}

impl<P: BackoffPolicy> Mac<P> {
    /// Creates a MAC for node `id`. The channel is assumed idle at time
    /// zero.
    #[must_use]
    pub fn new(id: NodeId, cfg: MacConfig, policy: P, rng: RngStream) -> Self {
        let mut idle_counter = IdleSlotCounter::new(&cfg.timing);
        idle_counter.on_idle(SimTime::ZERO);
        Mac {
            id,
            cfg,
            policy,
            rng,
            trace: Trace::new(),
            phys_busy: false,
            nav_until: SimTime::ZERO,
            virtual_busy: false,
            idle_counter,
            drift: ClockDriftState::NONE,
            last_busy_start: SimTime::ZERO,
            queue: VecDeque::new(),
            next_seq: 0,
            sender: SenderState::Idle,
            attempt: 1,
            remaining: Slots::ZERO,
            countdown_base: None,
            on_air: None,
            pending_response: None,
            pool: FramePool::new(),
            last_delivered: BTreeMap::new(),
            counters: MacCounters::default(),
        }
    }

    /// Attaches a trace sink.
    pub fn set_trace(&mut self, trace: Trace) {
        self.trace = trace;
    }

    /// Injects clock drift into this node's diagnosis-path idle-slot
    /// readings (fault injection only; the default is no drift).
    pub fn set_clock_drift(&mut self, drift: ClockDriftState) {
        self.drift = drift;
    }

    /// The idle-slot reading the diagnosis path observes at `now`,
    /// through this node's (possibly drifting) clock.
    fn observed_idle(&self, now: SimTime) -> u64 {
        self.drift.observe(self.idle_counter.reading(now))
    }

    /// Simulates a node crash at `now`: every piece of transient MAC
    /// state — queue, exchange in progress, NAV, carrier view, idle
    /// counter — is wiped, as a power cycle would. Two things survive
    /// deliberately: the sequence counter (`next_seq` stays monotonic so
    /// peers' duplicate filters remain correct across the restart) and
    /// the policy, whose own reset the caller drives separately
    /// according to the fault plan's monitor-survival choice.
    pub fn crash_reset(&mut self, now: SimTime) {
        self.phys_busy = false;
        self.nav_until = SimTime::ZERO;
        self.virtual_busy = false;
        self.idle_counter = IdleSlotCounter::new(&self.cfg.timing);
        self.idle_counter.on_idle(now);
        self.last_busy_start = now;
        self.queue.clear();
        self.sender = SenderState::Idle;
        self.attempt = 1;
        self.remaining = Slots::ZERO;
        self.countdown_base = None;
        self.on_air = None;
        self.pending_response = None;
        self.last_delivered.clear();
    }

    /// This node's id.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The policy, for end-of-run inspection.
    #[must_use]
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the policy (used by tests and the runner to
    /// extract final monitor state).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Event counters.
    #[must_use]
    pub fn counters(&self) -> MacCounters {
        self.counters
    }

    /// Number of queued (not yet acknowledged) packets.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the MAC currently perceives the channel as busy
    /// (physical carrier sense or NAV).
    #[must_use]
    pub fn channel_busy(&self) -> bool {
        self.virtual_busy
    }

    /// Main entry point: process one input at virtual time `now`.
    ///
    /// Allocates a fresh effect vector per call; the hot loop in the
    /// simulation runner uses [`Mac::handle_into`] with a reused scratch
    /// buffer instead.
    pub fn handle(&mut self, now: SimTime, input: MacInput) -> Vec<MacEffect> {
        let mut fx = Vec::new();
        self.handle_into(now, input, &mut fx);
        fx
    }

    /// Allocation-free entry point: process one input, appending effects
    /// to a caller-owned buffer (which the caller typically clears and
    /// reuses across calls).
    pub fn handle_into(&mut self, now: SimTime, input: MacInput, fx: &mut Vec<MacEffect>) {
        match input {
            MacInput::ChannelBusy => {
                self.phys_busy = true;
                self.last_busy_start = now;
                self.update_virtual(now, fx);
            }
            MacInput::ChannelIdle => {
                self.phys_busy = false;
                self.update_virtual(now, fx);
            }
            MacInput::Decoded(frame) => self.on_decoded(now, &frame, fx),
            MacInput::OwnTxEnd => self.on_own_tx_end(now, fx),
            MacInput::Timer(kind) => self.on_timer(now, kind, fx),
            MacInput::Enqueue { dst, bytes } => self.on_enqueue(now, dst, bytes, fx),
        }
    }

    // ------------------------------------------------------------------
    // Channel state
    // ------------------------------------------------------------------

    fn update_virtual(&mut self, now: SimTime, fx: &mut Vec<MacEffect>) {
        let busy = self.phys_busy || now < self.nav_until;
        if busy == self.virtual_busy {
            return;
        }
        self.virtual_busy = busy;
        if busy {
            self.idle_counter.on_busy(now);
            self.freeze_countdown(now, fx);
        } else {
            self.idle_counter.on_idle(now);
            self.resume_countdown(now, fx);
        }
    }

    fn freeze_countdown(&mut self, now: SimTime, fx: &mut Vec<MacEffect>) {
        if let Some(base) = self.countdown_base.take() {
            let elapsed = now.saturating_since(base) / self.cfg.timing.slot;
            let elapsed = Slots::new(elapsed.min(u64::from(self.remaining.count())) as u32);
            self.remaining = self.remaining - elapsed;
            fx.push(MacEffect::CancelTimer(TimerKind::Backoff));
        }
    }

    fn resume_countdown(&mut self, now: SimTime, fx: &mut Vec<MacEffect>) {
        if self.sender == SenderState::Backoff
            && !self.virtual_busy
            && self.on_air.is_none()
            && self.countdown_base.is_none()
        {
            let difs = self.cfg.timing.difs;
            self.countdown_base = Some(now + difs);
            fx.push(MacEffect::SetTimer {
                kind: TimerKind::Backoff,
                after: difs + self.remaining.to_duration(&self.cfg.timing),
            });
        }
    }

    // ------------------------------------------------------------------
    // Sender side
    // ------------------------------------------------------------------

    fn on_enqueue(&mut self, now: SimTime, dst: NodeId, bytes: u32, fx: &mut Vec<MacEffect>) {
        assert!(dst != self.id, "node cannot send to itself");
        if self.queue.len() >= self.cfg.queue_limit {
            self.counters.queue_drops += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push_back(Packet {
            dst,
            bytes,
            seq,
            enqueued_at: now,
        });
        if self.sender == SenderState::Idle {
            self.begin_next_packet(now, fx);
        }
    }

    fn begin_next_packet(&mut self, now: SimTime, fx: &mut Vec<MacEffect>) {
        match self.queue.front() {
            None => self.sender = SenderState::Idle,
            Some(pkt) => {
                let dst = pkt.dst;
                self.attempt = 1;
                self.remaining = self
                    .policy
                    .fresh_backoff(dst, &self.cfg.timing, &mut self.rng);
                self.sender = SenderState::Backoff;
                self.trace.emit(
                    now,
                    self.id,
                    ObsEvent::BackoffDrawn {
                        dst: dst.value(),
                        slots: self.remaining.count(),
                    },
                );
                self.resume_countdown(now, fx);
            }
        }
    }

    fn transmit_access_frame(&mut self, now: SimTime, fx: &mut Vec<MacEffect>) {
        let pkt = *self.queue.front().expect("backoff without a packet"); // lint:allow(panic-expect) — a backoff countdown is only armed while the head-of-line packet exists; an empty queue here is state-machine corruption
        let ext = self.policy.uses_protocol_extensions();
        let durations = ExchangeDurations::compute(&self.cfg.timing, pkt.bytes, ext);
        let attempt_field = if ext {
            self.policy.report_attempt(self.attempt)
        } else {
            0
        };
        let frame = match self.cfg.access {
            AccessMode::RtsCts => {
                self.counters.rts_sent += 1;
                self.sender = SenderState::AwaitCts;
                Frame {
                    kind: FrameKind::Rts,
                    src: self.id,
                    dst: pkt.dst,
                    duration_field: durations.rts,
                    attempt: attempt_field,
                    assigned_backoff: None,
                    payload_bytes: 0,
                    seq: pkt.seq,
                }
            }
            AccessMode::Basic => {
                self.sender = SenderState::AwaitAck;
                Frame {
                    kind: FrameKind::Data,
                    src: self.id,
                    dst: pkt.dst,
                    duration_field: durations.data,
                    attempt: attempt_field,
                    assigned_backoff: None,
                    payload_bytes: pkt.bytes,
                    seq: pkt.seq,
                }
            }
        };
        let xid = exchange_id(self.id.value(), pkt.seq);
        let event = match frame.kind {
            FrameKind::Rts => ObsEvent::RtsTx {
                dst: pkt.dst.value(),
                seq: pkt.seq,
                attempt: self.attempt,
                xid,
            },
            _ => ObsEvent::DataTx {
                dst: pkt.dst.value(),
                seq: pkt.seq,
                attempt: self.attempt,
                xid,
            },
        };
        self.trace.emit(now, self.id, event);
        let frame = self.pool.alloc(frame);
        self.on_air = Some(frame.share());
        fx.push(MacEffect::StartTx(frame));
    }

    /// Forwards a monitor measurement to telemetry: every observation
    /// becomes a `BackoffAssigned` event, and a non-zero penalty
    /// additionally emits `PenaltyAdded`.
    fn emit_observation(
        &self,
        now: SimTime,
        src: NodeId,
        seq: u64,
        obs: Option<BackoffObservation>,
    ) {
        let Some(obs) = obs else { return };
        let xid = exchange_id(src.value(), seq);
        self.trace.emit(
            now,
            self.id,
            ObsEvent::BackoffAssigned {
                src: src.value(),
                assigned_slots: obs.assigned_slots,
                observed_slots: obs.observed_slots,
                xid,
            },
        );
        if obs.penalty_slots > 0.0 {
            self.trace.emit(
                now,
                self.id,
                ObsEvent::PenaltyAdded {
                    src: src.value(),
                    penalty_slots: obs.penalty_slots,
                    assigned_slots: obs.assigned_slots,
                    observed_slots: obs.observed_slots,
                    xid,
                },
            );
        }
    }

    fn response_air_time(&self, kind: FrameKind) -> SimDuration {
        let ext = if self.policy.uses_protocol_extensions() {
            2
        } else {
            0
        };
        self.cfg.timing.air_time(kind.base_bytes() + ext)
    }

    fn handle_failure(&mut self, now: SimTime, ack_timeout: bool, fx: &mut Vec<MacEffect>) {
        let pkt = *self.queue.front().expect("timeout without a packet"); // lint:allow(panic-expect) — CTS/ACK timeouts are cancelled when the head-of-line packet is dequeued, so a firing timeout implies the packet is still queued
        self.attempt += 1;
        if self.attempt > self.cfg.timing.retry_limit {
            self.counters.retry_drops += 1;
            self.trace.emit(
                now,
                self.id,
                ObsEvent::PacketDropped {
                    seq: pkt.seq,
                    attempts: self.attempt - 1,
                },
            );
            fx.push(MacEffect::Dropped {
                dst: pkt.dst,
                seq: pkt.seq,
                attempts: self.attempt - 1,
            });
            self.queue.pop_front();
            self.begin_next_packet(now, fx);
        } else {
            self.remaining =
                self.policy
                    .retry_backoff(pkt.dst, self.attempt, &self.cfg.timing, &mut self.rng);
            self.sender = SenderState::Backoff;
            self.trace.emit(
                now,
                self.id,
                ObsEvent::Retry {
                    ack: ack_timeout,
                    attempt: self.attempt,
                    slots: self.remaining.count(),
                },
            );
            self.resume_countdown(now, fx);
        }
    }

    // ------------------------------------------------------------------
    // Frame handling
    // ------------------------------------------------------------------

    fn on_decoded(&mut self, now: SimTime, frame: &Frame, fx: &mut Vec<MacEffect>) {
        if frame.dst != self.id {
            self.policy
                .observe_overheard(frame, self.observed_idle(now), &self.cfg.timing);
            self.apply_nav(now, frame, fx);
            return;
        }
        match frame.kind {
            FrameKind::Rts => self.on_rts(now, frame, fx),
            FrameKind::Cts => self.on_cts(now, frame, fx),
            FrameKind::Data => self.on_data(now, frame, fx),
            FrameKind::Ack => self.on_ack(now, frame, fx),
        }
    }

    fn apply_nav(&mut self, now: SimTime, frame: &Frame, fx: &mut Vec<MacEffect>) {
        if frame.duration_field.is_zero() {
            return;
        }
        let until = now + frame.duration_field;
        if until > self.nav_until {
            self.nav_until = until;
            fx.push(MacEffect::SetTimer {
                kind: TimerKind::NavExpire,
                after: frame.duration_field,
            });
            if frame.kind == FrameKind::Rts {
                // 802.11 NAV-reset: if the announced CTS never starts, drop
                // the reservation instead of idling through a dead exchange
                // (this also keeps B_act aligned between honest senders and
                // the receiver's monitor).
                let check = self.cfg.timing.sifs
                    + self.response_air_time(FrameKind::Cts)
                    + self.cfg.timing.slot * 2;
                fx.push(MacEffect::SetTimer {
                    kind: TimerKind::NavReset,
                    after: check,
                });
            }
            self.update_virtual(now, fx);
        }
    }

    fn on_rts(&mut self, now: SimTime, frame: &Frame, fx: &mut Vec<MacEffect>) {
        // 802.11: respond only if the NAV shows the medium free; also skip
        // if a response is already queued (we can only say one thing at a
        // time).
        if now < self.nav_until || self.pending_response.is_some() {
            self.trace.emit(
                now,
                self.id,
                ObsEvent::RtsIgnored {
                    src: frame.src.value(),
                },
            );
            return;
        }
        if !self
            .policy
            .should_respond_rts(frame.src, frame.seq, frame.attempt, &mut self.rng)
        {
            // Attempt-verification probe (§4.1): pretend the RTS was lost.
            self.trace.emit(
                now,
                self.id,
                ObsEvent::ProbeDropped {
                    src: frame.src.value(),
                },
            );
            return;
        }
        let observation = self.policy.observe_rts(
            frame.src,
            frame.seq,
            frame.attempt,
            self.observed_idle(now),
            &self.cfg.timing,
            &mut self.rng,
        );
        self.emit_observation(now, frame.src, frame.seq, observation);
        let assigned = self.policy.assignment_for(frame.src, &self.cfg.timing);
        let cts_air = self.response_air_time(FrameKind::Cts);
        let cts = Frame {
            kind: FrameKind::Cts,
            src: self.id,
            dst: frame.src,
            duration_field: frame
                .duration_field
                .saturating_sub(self.cfg.timing.sifs + cts_air),
            attempt: 0,
            assigned_backoff: assigned,
            payload_bytes: 0,
            seq: frame.seq,
        };
        self.pending_response = Some(self.pool.alloc(cts));
        fx.push(MacEffect::SetTimer {
            kind: TimerKind::Response,
            after: self.cfg.timing.sifs,
        });
    }

    fn on_cts(&mut self, now: SimTime, frame: &Frame, fx: &mut Vec<MacEffect>) {
        let Some(pkt) = self.queue.front().copied() else {
            return;
        };
        if self.sender != SenderState::AwaitCts || frame.src != pkt.dst {
            return;
        }
        fx.push(MacEffect::CancelTimer(TimerKind::CtsTimeout));
        let ext = self.policy.uses_protocol_extensions();
        let durations = ExchangeDurations::compute(&self.cfg.timing, pkt.bytes, ext);
        let data = Frame {
            kind: FrameKind::Data,
            src: self.id,
            dst: pkt.dst,
            duration_field: durations.data,
            attempt: 0,
            assigned_backoff: None,
            payload_bytes: pkt.bytes,
            seq: pkt.seq,
        };
        self.sender = SenderState::AwaitAck;
        self.pending_response = Some(self.pool.alloc(data));
        fx.push(MacEffect::SetTimer {
            kind: TimerKind::Response,
            after: self.cfg.timing.sifs,
        });
        self.trace.emit(
            now,
            self.id,
            ObsEvent::CtsRx {
                src: frame.src.value(),
                seq: pkt.seq,
                xid: exchange_id(self.id.value(), pkt.seq),
            },
        );
    }

    fn on_data(&mut self, now: SimTime, frame: &Frame, fx: &mut Vec<MacEffect>) {
        let duplicate = self
            .last_delivered
            .get(&frame.src)
            .is_some_and(|&s| frame.seq <= s);
        if duplicate {
            self.counters.duplicates += 1;
        } else {
            if self.cfg.access == AccessMode::Basic {
                // Without an RTS, the DATA frame itself is the access
                // event the monitor measures against.
                let observation = self.policy.observe_rts(
                    frame.src,
                    frame.seq,
                    frame.attempt,
                    self.observed_idle(now),
                    &self.cfg.timing,
                    &mut self.rng,
                );
                self.emit_observation(now, frame.src, frame.seq, observation);
            }
            self.last_delivered.insert(frame.src, frame.seq);
            fx.push(MacEffect::Delivered {
                src: frame.src,
                seq: frame.seq,
                bytes: frame.payload_bytes,
            });
            if let Some(verdict) = self.policy.observe_data(frame.src) {
                if verdict.flagged {
                    self.trace.emit(
                        now,
                        self.id,
                        ObsEvent::DiagnosisFlagged {
                            src: frame.src.value(),
                            window_sum: verdict.window_sum,
                            xid: exchange_id(frame.src.value(), frame.seq),
                        },
                    );
                }
                fx.push(MacEffect::Classified {
                    src: frame.src,
                    verdict,
                });
            }
        }
        // ACK even duplicates: the sender needs to stop retrying.
        if self.pending_response.is_some() {
            self.trace.emit(
                now,
                self.id,
                ObsEvent::AckSuppressed {
                    src: frame.src.value(),
                },
            );
            return;
        }
        let assigned = self.policy.assignment_for(frame.src, &self.cfg.timing);
        let ack = Frame {
            kind: FrameKind::Ack,
            src: self.id,
            dst: frame.src,
            duration_field: SimDuration::ZERO,
            attempt: 0,
            assigned_backoff: assigned,
            payload_bytes: 0,
            seq: frame.seq,
        };
        self.pending_response = Some(self.pool.alloc(ack));
        fx.push(MacEffect::SetTimer {
            kind: TimerKind::Response,
            after: self.cfg.timing.sifs,
        });
    }

    fn on_ack(&mut self, now: SimTime, frame: &Frame, fx: &mut Vec<MacEffect>) {
        let Some(pkt) = self.queue.front().copied() else {
            return;
        };
        if self.sender != SenderState::AwaitAck || frame.src != pkt.dst || frame.seq != pkt.seq {
            return;
        }
        fx.push(MacEffect::CancelTimer(TimerKind::AckTimeout));
        self.policy.observe_assignment(
            frame.src,
            frame.seq,
            frame.assigned_backoff,
            &self.cfg.timing,
        );
        fx.push(MacEffect::SendComplete {
            dst: pkt.dst,
            seq: pkt.seq,
            bytes: pkt.bytes,
            attempts: self.attempt,
            delay: now.saturating_since(pkt.enqueued_at),
        });
        self.trace.emit(
            now,
            self.id,
            ObsEvent::AckRx {
                src: frame.src.value(),
                seq: pkt.seq,
                xid: exchange_id(self.id.value(), pkt.seq),
            },
        );
        self.queue.pop_front();
        self.begin_next_packet(now, fx);
    }

    // ------------------------------------------------------------------
    // Own transmissions and timers
    // ------------------------------------------------------------------

    fn on_own_tx_end(&mut self, now: SimTime, fx: &mut Vec<MacEffect>) {
        let frame = self.on_air.take().expect("OwnTxEnd without a frame on air"); // lint:allow(panic-expect) — OwnTxEnd is only scheduled by our own TxStart, which sets on_air; a miss means the PHY/MAC contract is broken
        match frame.kind {
            FrameKind::Rts => {
                let after = self.cfg.timing.sifs
                    + self.response_air_time(FrameKind::Cts)
                    + self.cfg.timeout_slack;
                fx.push(MacEffect::SetTimer {
                    kind: TimerKind::CtsTimeout,
                    after,
                });
            }
            FrameKind::Data => {
                let after = self.cfg.timing.sifs
                    + self.response_air_time(FrameKind::Ack)
                    + self.cfg.timeout_slack;
                fx.push(MacEffect::SetTimer {
                    kind: TimerKind::AckTimeout,
                    after,
                });
            }
            FrameKind::Cts => {}
            FrameKind::Ack => {
                self.policy
                    .observe_ack_sent(frame.dst, self.observed_idle(now));
            }
        }
    }

    fn on_timer(&mut self, now: SimTime, kind: TimerKind, fx: &mut Vec<MacEffect>) {
        match kind {
            TimerKind::Backoff => {
                debug_assert_eq!(self.sender, SenderState::Backoff, "stray backoff timer");
                self.countdown_base = None;
                self.remaining = Slots::ZERO;
                if self.on_air.is_none() {
                    self.transmit_access_frame(now, fx);
                } else {
                    // Extremely rare tie with a response transmission;
                    // retry the access next time the channel goes idle.
                    self.trace
                        .emit(now, self.id, ObsEvent::Deferred { response: false });
                    self.resume_countdown(now, fx);
                }
            }
            TimerKind::CtsTimeout => {
                if self.sender == SenderState::AwaitCts {
                    self.counters.cts_timeouts += 1;
                    self.handle_failure(now, false, fx);
                }
            }
            TimerKind::AckTimeout => {
                if self.sender == SenderState::AwaitAck {
                    self.counters.ack_timeouts += 1;
                    self.handle_failure(now, true, fx);
                }
            }
            TimerKind::Response => {
                if let Some(frame) = self.pending_response.take() {
                    if self.on_air.is_some() {
                        self.trace
                            .emit(now, self.id, ObsEvent::Deferred { response: true });
                    } else {
                        let event = match frame.kind {
                            // CTS/ACK answer the exchange the *peer*
                            // originated, so their id carries the
                            // destination (the original sender), not us.
                            FrameKind::Cts => ObsEvent::CtsTx {
                                dst: frame.dst.value(),
                                xid: exchange_id(frame.dst.value(), frame.seq),
                            },
                            FrameKind::Ack => ObsEvent::AckTx {
                                dst: frame.dst.value(),
                                xid: exchange_id(frame.dst.value(), frame.seq),
                            },
                            _ => ObsEvent::DataTx {
                                dst: frame.dst.value(),
                                seq: frame.seq,
                                attempt: self.attempt,
                                xid: exchange_id(self.id.value(), frame.seq),
                            },
                        };
                        self.trace.emit(now, self.id, event);
                        self.on_air = Some(frame.share());
                        fx.push(MacEffect::StartTx(frame));
                    }
                }
            }
            TimerKind::NavExpire => {
                self.update_virtual(now, fx);
            }
            TimerKind::NavReset => {
                // No transmission started since shortly after the RTS that
                // set the NAV: the announced exchange is dead.
                let window = self.cfg.timing.sifs
                    + self.response_air_time(FrameKind::Cts)
                    + self.cfg.timing.slot * 2;
                if !self.phys_busy && now.saturating_since(self.last_busy_start) >= window {
                    self.nav_until = now;
                    fx.push(MacEffect::CancelTimer(TimerKind::NavExpire));
                    self.update_virtual(now, fx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Dcf80211;
    use airguard_sim::MasterSeed;

    fn mac() -> Mac<Dcf80211> {
        Mac::new(
            NodeId::new(1),
            MacConfig::default(),
            Dcf80211::new(),
            MasterSeed::new(11).stream("mac-test", 1),
        )
    }

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    fn rts_to(dst: u32, src: u32) -> Frame {
        let timing = MacTiming::dsss_2mbps();
        let d = ExchangeDurations::compute(&timing, 512, false);
        Frame {
            kind: FrameKind::Rts,
            src: NodeId::new(src),
            dst: NodeId::new(dst),
            duration_field: d.rts,
            attempt: 0,
            assigned_backoff: None,
            payload_bytes: 0,
            seq: 0,
        }
    }

    fn find_timer(fx: &[MacEffect], kind: TimerKind) -> Option<SimDuration> {
        fx.iter().find_map(|e| match e {
            MacEffect::SetTimer { kind: k, after } if *k == kind => Some(*after),
            _ => None,
        })
    }

    fn started_frame(fx: &[MacEffect]) -> Option<&Frame> {
        fx.iter().find_map(|e| match e {
            MacEffect::StartTx(f) => Some(&**f),
            _ => None,
        })
    }

    #[test]
    fn enqueue_on_idle_channel_arms_backoff_timer() {
        let mut m = mac();
        let fx = m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(0),
                bytes: 512,
            },
        );
        let after = find_timer(&fx, TimerKind::Backoff).expect("backoff timer armed");
        // DIFS + backoff in [0, 31] slots.
        assert!(after >= SimDuration::from_micros(50));
        assert!(after <= SimDuration::from_micros(50 + 31 * 20));
    }

    #[test]
    fn backoff_expiry_transmits_rts() {
        let mut m = mac();
        let fx = m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(0),
                bytes: 512,
            },
        );
        let after = find_timer(&fx, TimerKind::Backoff).unwrap();
        let fx = m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
        let frame = started_frame(&fx).expect("RTS transmitted");
        assert_eq!(frame.kind, FrameKind::Rts);
        assert_eq!(frame.dst, NodeId::new(0));
        assert_eq!(m.counters().rts_sent, 1);
    }

    #[test]
    fn busy_channel_freezes_and_resumes_countdown() {
        let mut m = mac();
        let fx = m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(0),
                bytes: 512,
            },
        );
        let total = find_timer(&fx, TimerKind::Backoff).unwrap();
        let slots = (total - SimDuration::from_micros(50)) / SimDuration::from_micros(20);
        if slots < 2 {
            return; // not enough slots to slice for this seed
        }
        // Freeze after DIFS + 1.5 slots: exactly 1 slot counted.
        let freeze_at = t(50 + 30);
        let fx = m.handle(freeze_at, MacInput::ChannelBusy);
        assert!(fx.contains(&MacEffect::CancelTimer(TimerKind::Backoff)));
        // Resume: remaining slots shrank by 1.
        let fx = m.handle(t(1_000), MacInput::ChannelIdle);
        let resumed = find_timer(&fx, TimerKind::Backoff).unwrap();
        assert_eq!(
            resumed,
            SimDuration::from_micros(50 + 20 * (slots - 1)),
            "one slot was consumed before the freeze"
        );
    }

    #[test]
    fn rts_gets_cts_after_sifs() {
        let mut m = mac();
        let fx = m.handle(t(100), MacInput::Decoded(rts_to(1, 5).into()));
        assert_eq!(
            find_timer(&fx, TimerKind::Response),
            Some(SimDuration::from_micros(10))
        );
        let fx = m.handle(t(110), MacInput::Timer(TimerKind::Response));
        let cts = started_frame(&fx).expect("CTS transmitted");
        assert_eq!(cts.kind, FrameKind::Cts);
        assert_eq!(cts.dst, NodeId::new(5));
        assert_eq!(cts.assigned_backoff, None, "baseline assigns nothing");
        // Duration shrinks by SIFS + CTS air time.
        let timing = MacTiming::dsss_2mbps();
        assert_eq!(
            cts.duration_field,
            rts_to(1, 5).duration_field - timing.sifs - timing.air_time(14)
        );
    }

    #[test]
    fn rts_ignored_while_nav_busy() {
        let mut m = mac();
        // Overhear a frame reserving the medium for 1000 µs.
        let mut overheard = rts_to(9, 5); // not addressed to us
        overheard.duration_field = SimDuration::from_micros(1_000);
        m.handle(t(0), MacInput::Decoded(overheard.into()));
        assert!(m.channel_busy(), "NAV makes channel virtually busy");
        let fx = m.handle(t(500), MacInput::Decoded(rts_to(1, 5).into()));
        assert!(
            find_timer(&fx, TimerKind::Response).is_none(),
            "no CTS during NAV"
        );
        // After NAV expiry the node responds again.
        m.handle(t(1_000), MacInput::Timer(TimerKind::NavExpire));
        assert!(!m.channel_busy());
        let fx = m.handle(t(1_100), MacInput::Decoded(rts_to(1, 5).into()));
        assert!(find_timer(&fx, TimerKind::Response).is_some());
    }

    #[test]
    fn data_is_delivered_once_and_acked_always() {
        let mut m = mac();
        let timing = MacTiming::dsss_2mbps();
        let d = ExchangeDurations::compute(&timing, 512, false);
        let mut data = rts_to(1, 5);
        data.kind = FrameKind::Data;
        data.payload_bytes = 512;
        data.duration_field = d.data;
        data.seq = 7;

        let fx = m.handle(t(0), MacInput::Decoded(data.clone().into()));
        assert!(fx.iter().any(|e| matches!(
            e,
            MacEffect::Delivered { src, seq: 7, bytes: 512 } if *src == NodeId::new(5)
        )));
        let fx = m.handle(t(10), MacInput::Timer(TimerKind::Response));
        assert_eq!(started_frame(&fx).unwrap().kind, FrameKind::Ack);
        m.handle(t(300), MacInput::OwnTxEnd);

        // Retransmission of the same seq: ACKed but not re-delivered.
        let fx = m.handle(t(5_000), MacInput::Decoded(data.into()));
        assert!(!fx.iter().any(|e| matches!(e, MacEffect::Delivered { .. })));
        assert_eq!(m.counters().duplicates, 1);
        let fx = m.handle(t(5_010), MacInput::Timer(TimerKind::Response));
        assert_eq!(started_frame(&fx).unwrap().kind, FrameKind::Ack);
    }

    #[test]
    fn full_sender_exchange_succeeds() {
        let mut m = mac();
        let timing = MacTiming::dsss_2mbps();
        // Enqueue and fire backoff.
        let fx = m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(0),
                bytes: 512,
            },
        );
        let after = find_timer(&fx, TimerKind::Backoff).unwrap();
        let mut clock = after.as_micros();
        let fx = m.handle(t(clock), MacInput::Timer(TimerKind::Backoff));
        let rts = started_frame(&fx).unwrap().clone();
        // RTS on air.
        m.handle(t(clock), MacInput::ChannelBusy);
        clock += rts.air_time(&timing).as_micros();
        let fx = m.handle(t(clock), MacInput::OwnTxEnd);
        assert!(find_timer(&fx, TimerKind::CtsTimeout).is_some());
        m.handle(t(clock), MacInput::ChannelIdle);
        // CTS arrives.
        clock += 260;
        let mut cts = rts_to(1, 0);
        cts.kind = FrameKind::Cts;
        let fx = m.handle(t(clock), MacInput::Decoded(cts.into()));
        assert!(fx.contains(&MacEffect::CancelTimer(TimerKind::CtsTimeout)));
        // DATA goes out after SIFS.
        clock += 10;
        let fx = m.handle(t(clock), MacInput::Timer(TimerKind::Response));
        let data = started_frame(&fx).unwrap().clone();
        assert_eq!(data.kind, FrameKind::Data);
        assert_eq!(data.payload_bytes, 512);
        m.handle(t(clock), MacInput::ChannelBusy);
        clock += data.air_time(&timing).as_micros();
        let fx = m.handle(t(clock), MacInput::OwnTxEnd);
        assert!(find_timer(&fx, TimerKind::AckTimeout).is_some());
        m.handle(t(clock), MacInput::ChannelIdle);
        // ACK arrives.
        clock += 260;
        let mut ack = rts_to(1, 0);
        ack.kind = FrameKind::Ack;
        let fx = m.handle(t(clock), MacInput::Decoded(ack.into()));
        assert!(fx.iter().any(|e| matches!(
            e,
            MacEffect::SendComplete {
                seq: 0,
                bytes: 512,
                attempts: 1,
                ..
            }
        )));
        // Delay spans from the enqueue at t=0 to the ACK decode.
        let delay = fx.iter().find_map(|e| match e {
            MacEffect::SendComplete { delay, .. } => Some(*delay),
            _ => None,
        });
        assert_eq!(delay, Some(SimDuration::from_micros(clock)));
        assert_eq!(m.queue_len(), 0);
    }

    #[test]
    fn cts_timeout_retries_with_incremented_attempt() {
        let mut m = mac();
        let fx = m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(0),
                bytes: 512,
            },
        );
        let after = find_timer(&fx, TimerKind::Backoff).unwrap();
        m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
        m.handle(t(after.as_micros()), MacInput::ChannelBusy);
        let end = after.as_micros() + 272;
        m.handle(t(end), MacInput::OwnTxEnd);
        m.handle(t(end), MacInput::ChannelIdle);
        // Timeout fires.
        let fx = m.handle(t(end + 300), MacInput::Timer(TimerKind::CtsTimeout));
        assert_eq!(m.counters().cts_timeouts, 1);
        assert!(
            find_timer(&fx, TimerKind::Backoff).is_some(),
            "re-enters backoff"
        );
    }

    #[test]
    fn retry_limit_drops_packet() {
        let mut m = mac();
        m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(0),
                bytes: 512,
            },
        );
        let mut clock = 0;
        let mut dropped = false;
        for round in 0..10 {
            clock += 100_000;
            let fx = m.handle(t(clock), MacInput::Timer(TimerKind::Backoff));
            if started_frame(&fx).is_none() {
                panic!("round {round}: no RTS");
            }
            m.handle(t(clock), MacInput::ChannelBusy);
            clock += 272;
            m.handle(t(clock), MacInput::OwnTxEnd);
            m.handle(t(clock), MacInput::ChannelIdle);
            clock += 300;
            let fx = m.handle(t(clock), MacInput::Timer(TimerKind::CtsTimeout));
            if fx
                .iter()
                .any(|e| matches!(e, MacEffect::Dropped { attempts: 7, .. }))
            {
                dropped = true;
                break;
            }
        }
        assert!(dropped, "packet should be dropped after 7 attempts");
        assert_eq!(m.counters().retry_drops, 1);
        assert_eq!(m.queue_len(), 0);
    }

    #[test]
    fn overheard_frames_set_nav_and_count_busy() {
        let mut m = mac();
        let mut overheard = rts_to(9, 5);
        overheard.duration_field = SimDuration::from_micros(500);
        let fx = m.handle(t(0), MacInput::Decoded(overheard.into()));
        assert_eq!(
            find_timer(&fx, TimerKind::NavExpire),
            Some(SimDuration::from_micros(500))
        );
        assert!(m.channel_busy());
        // A shorter overheard reservation does not shrink the NAV.
        let mut shorter = rts_to(9, 6);
        shorter.duration_field = SimDuration::from_micros(100);
        let fx = m.handle(t(200), MacInput::Decoded(shorter.into()));
        assert!(find_timer(&fx, TimerKind::NavExpire).is_none());
        m.handle(t(500), MacInput::Timer(TimerKind::NavExpire));
        assert!(!m.channel_busy());
    }

    #[test]
    fn ack_with_wrong_seq_is_ignored() {
        let mut m = mac();
        let fx = m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(0),
                bytes: 512,
            },
        );
        let after = find_timer(&fx, TimerKind::Backoff).unwrap();
        m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
        m.handle(t(after.as_micros() + 272), MacInput::OwnTxEnd);
        let mut cts = rts_to(1, 0);
        cts.kind = FrameKind::Cts;
        m.handle(t(after.as_micros() + 600), MacInput::Decoded(cts.into()));
        let mut ack = rts_to(1, 0);
        ack.kind = FrameKind::Ack;
        ack.seq = 99; // wrong
        let fx = m.handle(t(after.as_micros() + 700), MacInput::Decoded(ack.into()));
        assert!(!fx
            .iter()
            .any(|e| matches!(e, MacEffect::SendComplete { .. })));
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn queue_limit_drops_excess_enqueues() {
        let mut m = Mac::new(
            NodeId::new(1),
            MacConfig {
                queue_limit: 2,
                ..MacConfig::default()
            },
            Dcf80211::new(),
            MasterSeed::new(5).stream("mac-test", 2),
        );
        for _ in 0..5 {
            m.handle(
                t(0),
                MacInput::Enqueue {
                    dst: NodeId::new(0),
                    bytes: 512,
                },
            );
        }
        assert_eq!(m.queue_len(), 2);
        assert_eq!(m.counters().queue_drops, 3);
    }

    #[test]
    #[should_panic(expected = "cannot send to itself")]
    fn self_addressed_enqueue_panics() {
        let mut m = mac();
        m.handle(
            t(0),
            MacInput::Enqueue {
                dst: NodeId::new(1),
                bytes: 512,
            },
        );
    }
}
