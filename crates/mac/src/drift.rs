//! Injected receiver clock drift.
//!
//! The paper's monitor compares the backoff it *assigned* against the
//! idle slots it *observed* before the sender's access. A drifting
//! local clock miscounts those slots, so an honest sender can look like
//! it shrank (fast clock) or stretched (slow clock) its backoff — the
//! false-positive mechanism probed by the chaos experiments.
//!
//! This is a fault-injection site: the drift state is plain data, the
//! scaling is total (no panics, clamped at zero), and a zero drift is
//! exactly the identity so an unfaulted run never pays for the hook.

/// Per-node injected clock drift, applied to every idle-slot reading
/// the diagnosis path consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClockDriftState {
    /// Signed drift in parts per thousand (`+50` = 5 % fast clock).
    per_mille: i32,
}

impl ClockDriftState {
    /// A perfectly synchronised clock (the default).
    pub const NONE: ClockDriftState = ClockDriftState { per_mille: 0 };

    /// Creates a drift of `per_mille` parts per thousand.
    #[must_use]
    pub const fn new(per_mille: i32) -> Self {
        ClockDriftState { per_mille }
    }

    /// Whether the drift changes any reading.
    #[must_use]
    pub const fn is_none(self) -> bool {
        self.per_mille == 0
    }

    /// The idle-slot count this node's drifting clock reports for a
    /// true reading, rounded to the nearest slot and clamped at zero.
    #[must_use]
    pub fn observe(self, reading: u64) -> u64 {
        if self.per_mille == 0 {
            return reading;
        }
        let factor = i128::from(1000 + i64::from(self.per_mille));
        if factor <= 0 {
            return 0;
        }
        let scaled = (i128::from(reading) * factor + 500) / 1000;
        u64::try_from(scaled).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::ClockDriftState;

    #[test]
    fn zero_drift_is_the_identity() {
        for reading in [0, 1, 7, 1_023, u64::MAX] {
            assert_eq!(ClockDriftState::NONE.observe(reading), reading);
        }
        assert!(ClockDriftState::default().is_none());
    }

    #[test]
    fn fast_clock_counts_more_slots() {
        let fast = ClockDriftState::new(50);
        assert_eq!(fast.observe(100), 105);
        assert_eq!(fast.observe(0), 0);
        // 10 * 1.05 = 10.5 rounds to 11.
        assert_eq!(fast.observe(10), 11);
        assert!(!fast.is_none());
    }

    #[test]
    fn slow_clock_counts_fewer_slots() {
        let slow = ClockDriftState::new(-100);
        assert_eq!(slow.observe(100), 90);
        assert_eq!(slow.observe(4), 4, "3.6 rounds back up to 4");
    }

    #[test]
    fn degenerate_factors_clamp_instead_of_panicking() {
        assert_eq!(ClockDriftState::new(-1000).observe(100), 0);
        assert_eq!(ClockDriftState::new(-2000).observe(100), 0);
        assert_eq!(
            ClockDriftState::new(i32::MAX).observe(u64::MAX),
            u64::MAX,
            "overflow saturates"
        );
    }
}
