//! MAC frames.
//!
//! Frames are symbolic — a simulator needs their *sizes* (for on-air time)
//! and their *fields* (for protocol logic), not their bit layout. The two
//! protocol extensions from the paper are modelled as optional fields:
//!
//! * every RTS carries an `attempt` number (a new 1-byte header field in
//!   the modified protocol, §4.1);
//! * CTS and ACK frames may carry the receiver-assigned backoff for the
//!   sender's next transmission (a 2-byte field, §3.2).
//!
//! Frame sizes follow IEEE 802.11-1999: RTS 20 B, CTS/ACK 14 B, DATA
//! header 28 B, plus the extension bytes when the modified protocol is in
//! use.

use airguard_sim::{NodeId, SimDuration};
use serde::{Deserialize, Serialize};

use crate::timing::{MacTiming, Slots};

/// The four DCF frame types used by the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Request to send.
    Rts,
    /// Clear to send.
    Cts,
    /// The data MPDU.
    Data,
    /// Acknowledgement.
    Ack,
}

impl FrameKind {
    /// Base frame size in bytes under IEEE 802.11-1999 (data size excludes
    /// the payload).
    #[must_use]
    pub const fn base_bytes(self) -> u32 {
        match self {
            FrameKind::Rts => 20,
            FrameKind::Cts | FrameKind::Ack => 14,
            FrameKind::Data => 28,
        }
    }
}

/// One MAC frame in flight.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Frame type.
    pub kind: FrameKind,
    /// Transmitting node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The 802.11 Duration field: how long the medium is reserved *after*
    /// this frame ends. Overhearing nodes set their NAV from it.
    pub duration_field: SimDuration,
    /// Transmission attempt number (1-based). Present in every RTS of the
    /// modified protocol; the baseline keeps its retry counter private, so
    /// baseline receivers must not read it.
    pub attempt: u8,
    /// Receiver-assigned backoff for the sender's next packet (modified
    /// protocol only; `None` under plain 802.11).
    pub assigned_backoff: Option<Slots>,
    /// Payload bytes (DATA frames only; zero otherwise).
    pub payload_bytes: u32,
    /// Sender-local packet sequence number, used for duplicate filtering
    /// and throughput accounting.
    pub seq: u64,
}

impl Frame {
    /// Total frame size in bytes, including the modified protocol's
    /// extension fields when present.
    #[must_use]
    pub fn bytes(&self) -> u32 {
        let mut bytes = self.kind.base_bytes() + self.payload_bytes;
        if self.carries_attempt() {
            bytes += 1;
        }
        if self.assigned_backoff.is_some() {
            bytes += 2;
        }
        bytes
    }

    /// Whether this frame carries the modified protocol's attempt field:
    /// RTS frames under four-way access, DATA frames under basic access.
    ///
    /// The baseline protocol still *tracks* attempts internally (for its
    /// retry limit), but does not serialize them; the convention here is
    /// that baseline frames are built with `attempt = 0`.
    #[must_use]
    pub fn carries_attempt(&self) -> bool {
        matches!(self.kind, FrameKind::Rts | FrameKind::Data) && self.attempt > 0
    }

    /// On-air duration of this frame.
    #[must_use]
    pub fn air_time(&self, timing: &MacTiming) -> SimDuration {
        timing.air_time(self.bytes())
    }
}

/// A shared, immutable handle to one frame in flight.
///
/// One transmission is referenced from many places at once — the
/// sender's `on_air` slot, the `StartTx` effect, and one scheduled
/// arrival per listener. `FrameRef` lets all of them point at a single
/// allocation: [`FrameRef::share`] is a reference-count bump, never a
/// copy. Combined with a [`FramePool`] the allocation itself is
/// recycled, so the steady-state exchange loop allocates nothing.
///
/// The handle is deliberately read-only (`Deref<Target = Frame>`, no
/// `DerefMut`): a frame on the air is immutable physics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRef(std::rc::Rc<Frame>);

impl FrameRef {
    /// Wraps a frame in a fresh shared allocation. Hot paths should
    /// prefer [`FramePool::alloc`], which recycles allocations.
    #[must_use]
    pub fn new(frame: Frame) -> Self {
        FrameRef(std::rc::Rc::new(frame))
    }

    /// Shares the handle: a reference-count bump, not a frame copy.
    /// This is the hot-path alternative to cloning a [`Frame`].
    #[must_use]
    pub fn share(&self) -> Self {
        FrameRef(std::rc::Rc::clone(&self.0))
    }
}

impl std::ops::Deref for FrameRef {
    type Target = Frame;

    fn deref(&self) -> &Frame {
        &self.0
    }
}

impl From<Frame> for FrameRef {
    fn from(frame: Frame) -> Self {
        FrameRef::new(frame)
    }
}

/// A recycling allocator for [`FrameRef`]s.
///
/// The pool keeps one handle to every allocation it ever handed out and
/// reuses any whose other holders have all dropped (reference count back
/// to one). In-flight frames per node are bounded by the protocol — one
/// on air, one pending response, a handful of scheduled arrivals — so
/// the pool stays a few slots deep and the steady state allocates
/// nothing.
#[derive(Debug, Default)]
pub struct FramePool {
    slots: Vec<std::rc::Rc<Frame>>,
}

impl FramePool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        FramePool::default()
    }

    /// Returns a handle to `frame`, reusing a released allocation when
    /// one is available.
    pub fn alloc(&mut self, frame: Frame) -> FrameRef {
        for i in 0..self.slots.len() {
            if std::rc::Rc::strong_count(&self.slots[i]) == 1 {
                if let Some(slot) = std::rc::Rc::get_mut(&mut self.slots[i]) {
                    *slot = frame;
                    return FrameRef(std::rc::Rc::clone(&self.slots[i]));
                }
            }
        }
        let rc = std::rc::Rc::new(frame);
        self.slots.push(std::rc::Rc::clone(&rc));
        FrameRef(rc)
    }

    /// Distinct allocations the pool currently manages (diagnostics).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Computes the Duration fields for a full RTS/CTS/DATA/ACK exchange over
/// a `payload_bytes` MPDU, from the perspective of each frame.
///
/// Each value covers everything from the end of that frame to the end of
/// the exchange, as 802.11 specifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeDurations {
    /// Value for the RTS Duration field.
    pub rts: SimDuration,
    /// Value for the CTS Duration field.
    pub cts: SimDuration,
    /// Value for the DATA Duration field.
    pub data: SimDuration,
    /// Value for the ACK Duration field (always zero: nothing follows).
    pub ack: SimDuration,
}

impl ExchangeDurations {
    /// Computes duration fields given the frame sizes in force.
    ///
    /// `extended` selects the modified protocol's slightly larger frames.
    #[must_use]
    pub fn compute(timing: &MacTiming, payload_bytes: u32, extended: bool) -> Self {
        let ext_rts = u32::from(extended); // +1 attempt byte
        let ext_resp = if extended { 2 } else { 0 }; // +2 backoff bytes
        let cts = timing.air_time(FrameKind::Cts.base_bytes() + ext_resp);
        let data = timing.air_time(FrameKind::Data.base_bytes() + payload_bytes);
        let ack = timing.air_time(FrameKind::Ack.base_bytes() + ext_resp);
        let sifs = timing.sifs;
        let _ = ext_rts; // RTS size matters for air time, not for durations
        ExchangeDurations {
            rts: sifs + cts + sifs + data + sifs + ack,
            cts: sifs + data + sifs + ack,
            data: sifs + ack,
            ack: SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(kind: FrameKind) -> Frame {
        Frame {
            kind,
            src: NodeId::new(1),
            dst: NodeId::new(0),
            duration_field: SimDuration::ZERO,
            attempt: 0,
            assigned_backoff: None,
            payload_bytes: 0,
            seq: 0,
        }
    }

    #[test]
    fn baseline_sizes_match_standard() {
        assert_eq!(frame(FrameKind::Rts).bytes(), 20);
        assert_eq!(frame(FrameKind::Cts).bytes(), 14);
        assert_eq!(frame(FrameKind::Ack).bytes(), 14);
        let mut data = frame(FrameKind::Data);
        data.payload_bytes = 512;
        assert_eq!(data.bytes(), 540);
    }

    #[test]
    fn extension_fields_add_bytes() {
        let mut rts = frame(FrameKind::Rts);
        rts.attempt = 1;
        assert_eq!(rts.bytes(), 21, "attempt field adds one byte");
        let mut cts = frame(FrameKind::Cts);
        cts.assigned_backoff = Some(Slots::new(12));
        assert_eq!(cts.bytes(), 16, "assigned backoff adds two bytes");
    }

    #[test]
    fn air_time_uses_extended_size() {
        let t = MacTiming::dsss_2mbps();
        let mut rts = frame(FrameKind::Rts);
        rts.attempt = 3;
        assert_eq!(rts.air_time(&t), t.air_time(21));
    }

    #[test]
    fn exchange_durations_nest_properly() {
        let t = MacTiming::dsss_2mbps();
        let d = ExchangeDurations::compute(&t, 512, false);
        // Each later frame covers strictly less of the exchange.
        assert!(d.rts > d.cts && d.cts > d.data && d.data > d.ack);
        assert_eq!(d.ack, SimDuration::ZERO);
        // RTS duration = CTS + DATA + ACK air times + 3 SIFS.
        let expect = t.air_time(14) + t.air_time(540) + t.air_time(14) + t.sifs + t.sifs + t.sifs;
        assert_eq!(d.rts, expect);
    }

    #[test]
    fn extended_exchange_is_longer() {
        let t = MacTiming::dsss_2mbps();
        let base = ExchangeDurations::compute(&t, 512, false);
        let ext = ExchangeDurations::compute(&t, 512, true);
        assert!(ext.rts > base.rts);
        assert!(ext.cts > base.cts);
    }

    fn probe(seq: u64) -> Frame {
        Frame {
            kind: FrameKind::Rts,
            src: NodeId::new(1),
            dst: NodeId::new(0),
            duration_field: SimDuration::ZERO,
            attempt: 1,
            assigned_backoff: None,
            payload_bytes: 0,
            seq,
        }
    }

    #[test]
    fn frame_ref_shares_one_allocation() {
        let a = FrameRef::new(probe(7));
        let b = a.share();
        assert_eq!(a.seq, 7);
        assert_eq!(a, b);
        // Deref gives field access and &Frame coercion.
        let f: &Frame = &a;
        assert_eq!(f.seq, b.seq);
    }

    #[test]
    fn pool_recycles_released_allocations() {
        let mut pool = FramePool::new();
        let a = pool.alloc(probe(1));
        assert_eq!(pool.capacity(), 1);
        drop(a);
        // Slot free again: the next alloc reuses it.
        let b = pool.alloc(probe(2));
        assert_eq!(pool.capacity(), 1);
        assert_eq!(b.seq, 2);
    }

    #[test]
    fn pool_grows_while_handles_are_live() {
        let mut pool = FramePool::new();
        let a = pool.alloc(probe(1));
        let b = pool.alloc(probe(2));
        assert_eq!(pool.capacity(), 2, "live handles pin their slots");
        // Shares keep a slot busy too.
        let a2 = a.share();
        drop(a);
        let c = pool.alloc(probe(3));
        assert_eq!(pool.capacity(), 3, "shared handle still pins its slot");
        assert_eq!((a2.seq, b.seq, c.seq), (1, 2, 3));
    }
}
