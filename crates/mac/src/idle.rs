//! DIFS-gated idle-slot counting.
//!
//! Both sides of the paper's protocol count time the same way a DCF
//! backoff counter does: after the channel goes idle, a DIFS must elapse,
//! and only then do whole slot times count. The sender's backoff counter
//! *is* this rule; the receiver's `B_act` observation ("the number of idle
//! slots observed on the channel between sending an ACK and receiving the
//! next RTS", §4.1) must apply the identical rule or the comparison
//! `B_act < α·B_exp` would be biased even for honest senders.
//!
//! [`IdleSlotCounter`] therefore implements the rule once, and both the
//! MAC's backoff engine and the receiver-side monitor consume it.

use airguard_sim::{SimDuration, SimTime};

/// Cumulative count of post-DIFS idle slots, fed by busy/idle edges.
///
/// ```
/// use airguard_mac::IdleSlotCounter;
/// use airguard_sim::SimTime;
///
/// let timing = airguard_mac::MacTiming::dsss_2mbps();
/// let mut c = IdleSlotCounter::new(&timing);
/// // Channel goes idle at t=0; DIFS is 50 µs, slots are 20 µs.
/// c.on_idle(SimTime::from_micros(0));
/// // At t=130 µs: 80 µs past the DIFS = 4 whole slots.
/// assert_eq!(c.reading(SimTime::from_micros(130)), 4);
/// ```
#[derive(Debug, Clone)]
pub struct IdleSlotCounter {
    difs: SimDuration,
    slot: SimDuration,
    total: u64,
    idle_since: Option<SimTime>,
}

impl IdleSlotCounter {
    /// Creates a counter for the given timing parameters. The channel is
    /// assumed busy until the first [`IdleSlotCounter::on_idle`].
    #[must_use]
    pub fn new(timing: &crate::timing::MacTiming) -> Self {
        IdleSlotCounter {
            difs: timing.difs,
            slot: timing.slot,
            total: 0,
            idle_since: None,
        }
    }

    /// Records that the channel became idle at `now`.
    ///
    /// Redundant idle edges are ignored (the first one wins, which is the
    /// conservative reading: the DIFS gate restarts only on a busy edge).
    pub fn on_idle(&mut self, now: SimTime) {
        if self.idle_since.is_none() {
            self.idle_since = Some(now);
        }
    }

    /// Records that the channel became busy at `now`, banking the slots of
    /// the idle period that just ended.
    pub fn on_busy(&mut self, now: SimTime) {
        self.total += self.pending_slots(now);
        self.idle_since = None;
    }

    /// The cumulative idle-slot count as of `now`.
    #[must_use]
    pub fn reading(&self, now: SimTime) -> u64 {
        self.total + self.pending_slots(now)
    }

    /// Whether the counter currently believes the channel is idle.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.idle_since.is_some()
    }

    fn pending_slots(&self, now: SimTime) -> u64 {
        match self.idle_since {
            Some(since) => {
                let countable = now.saturating_since(since).saturating_sub(self.difs);
                countable / self.slot
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::MacTiming;

    fn counter() -> IdleSlotCounter {
        IdleSlotCounter::new(&MacTiming::dsss_2mbps())
    }

    fn t(micros: u64) -> SimTime {
        SimTime::from_micros(micros)
    }

    #[test]
    fn starts_busy_and_counts_nothing() {
        let c = counter();
        assert!(!c.is_idle());
        assert_eq!(c.reading(t(10_000)), 0);
    }

    #[test]
    fn difs_gates_the_count() {
        let mut c = counter();
        c.on_idle(t(0));
        assert_eq!(c.reading(t(49)), 0, "inside DIFS");
        assert_eq!(c.reading(t(50)), 0, "DIFS boundary: no slot yet");
        assert_eq!(c.reading(t(69)), 0, "first slot incomplete");
        assert_eq!(c.reading(t(70)), 1, "first slot complete");
        assert_eq!(c.reading(t(170)), 6);
    }

    #[test]
    fn busy_banks_completed_slots() {
        let mut c = counter();
        c.on_idle(t(0));
        c.on_busy(t(75)); // 25 µs past DIFS → 1 slot
        assert_eq!(c.reading(t(1_000)), 1, "busy channel accrues nothing");
        c.on_idle(t(1_000));
        assert_eq!(c.reading(t(1_090)), 3, "1 banked + 2 new");
    }

    #[test]
    fn short_gaps_count_zero() {
        // A SIFS-sized gap (10 µs) never produces a slot: the DIFS gate
        // filters the intra-exchange gaps out of B_act, matching the
        // sender's frozen backoff counter.
        let mut c = counter();
        c.on_idle(t(0));
        c.on_busy(t(10));
        assert_eq!(c.reading(t(10)), 0);
    }

    #[test]
    fn redundant_idle_edges_do_not_restart_gate() {
        let mut c = counter();
        c.on_idle(t(0));
        c.on_idle(t(60)); // ignored
        assert_eq!(c.reading(t(70)), 1);
    }

    #[test]
    fn interleaved_busy_periods_accumulate() {
        let mut c = counter();
        let mut expect = 0;
        let mut clock = 0;
        for _ in 0..10 {
            c.on_idle(t(clock));
            clock += 50 + 20 * 3; // DIFS + 3 slots
            c.on_busy(t(clock));
            expect += 3;
            clock += 500; // busy period
        }
        assert_eq!(c.reading(t(clock)), expect);
    }

    #[test]
    fn reading_is_monotonic() {
        let mut c = counter();
        c.on_idle(t(0));
        let mut last = 0;
        for micros in (0..2_000).step_by(7) {
            let r = c.reading(t(micros));
            assert!(r >= last);
            last = r;
        }
    }
}
