//! IEEE 802.11 DCF MAC layer with pluggable backoff policies and selfish
//! misbehavior strategies.
//!
//! This crate implements the Distributed Coordination Function as the
//! paper's evaluation requires it: slotted backoff with freeze/resume,
//! DIFS/SIFS interframe spacing, the RTS → CTS → DATA → ACK exchange,
//! virtual carrier sense (NAV), CTS/ACK timeouts, the binary-exponential
//! contention-window ladder, retry limits, and duplicate filtering.
//!
//! Two design decisions make the rest of the study possible:
//!
//! * **Effect style.** [`Mac`] is a pure state machine: it consumes typed
//!   [`MacInput`]s (channel busy/idle edges, decoded frames, timers) and
//!   emits [`MacEffect`]s (start a transmission, set a timer, deliver a
//!   packet). The simulation runner in `airguard-net` owns the event loop
//!   and applies effects; tests drive the machine directly with no
//!   simulator at all.
//! * **Pluggable backoff.** Everything the paper changes about 802.11 is
//!   behind the [`policy::BackoffPolicy`] trait: where fresh and retry
//!   backoff values come from, what gets embedded in CTS/ACK frames, and
//!   what the receiver observes. [`policy::Dcf80211`] is the faithful
//!   baseline; the paper's receiver-assigned scheme lives in
//!   `airguard-core`; selfish strategies are decorators in
//!   [`misbehavior`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod dcf;
pub mod drift;
pub mod frames;
pub mod idle;
pub mod misbehavior;
pub mod policy;
pub mod timing;

pub use analytic::ExchangeModel;
pub use dcf::{AccessMode, Mac, MacConfig, MacEffect, MacInput, TimerKind};
pub use drift::ClockDriftState;
pub use frames::{Frame, FrameKind, FramePool, FrameRef};
pub use idle::IdleSlotCounter;
pub use misbehavior::{Misbehavior, Selfish};
pub use policy::{BackoffObservation, BackoffPolicy, Dcf80211, PacketVerdict};
pub use timing::{MacTiming, Slots};
