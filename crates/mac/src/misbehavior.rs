//! Selfish misbehavior strategies.
//!
//! The paper studies senders that gain bandwidth by shrinking their
//! backoff. Three concrete strategies appear in it:
//!
//! * the headline *Percentage of Misbehavior* model (§5): a node with
//!   `PM = x %` counts down only `(100 − x) %` of whatever backoff the
//!   protocol tells it to use;
//! * the introduction's example: drawing backoff from `[0, CW/4]`
//!   instead of `[0, CW]`;
//! * a retry cheat: never doubling the contention window after a
//!   collision.
//!
//! All three are implemented as a decorator, [`Misbehavior`], over any
//! inner [`BackoffPolicy`], so the same cheat applies identically to the
//! 802.11 baseline and to the paper's modified protocol (where the
//! misbehaving sender shortchanges the *receiver-assigned* value). The
//! receiver-side hooks pass through untouched: a selfish sender still
//! behaves as an honest receiver, which is the paper's threat model.

use airguard_sim::{NodeId, RngStream};
use serde::{Deserialize, Serialize};

use crate::policy::{uniform_backoff, BackoffObservation, BackoffPolicy, PacketVerdict};
use crate::timing::{MacTiming, Slots};

/// A selfish sender strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Selfish {
    /// Fully protocol-compliant (identity decoration).
    None,
    /// Counts down only `(100 − pm) %` of every backoff. `pm` is the
    /// paper's *Percentage of Misbehavior*, in `[0, 100]`.
    BackoffScale {
        /// Percentage of misbehavior (PM).
        pm: f64,
    },
    /// Draws every backoff from a quarter of the window the protocol
    /// would use (the introduction's `[0, CW/4]` example).
    QuarterWindow,
    /// Ignores the binary-exponential ladder: every retry draws from
    /// `[0, CWmin]`.
    NoDoubling,
    /// Scales backoff like [`Selfish::BackoffScale`] *and* always reports
    /// attempt number 1 in the RTS, hiding retransmissions from the
    /// receiver's `B_exp` reconstruction (the misbehavior the §4.1
    /// attempt-verification probe exists to catch).
    AttemptSpoof {
        /// Percentage of misbehavior applied to backoff values.
        pm: f64,
    },
    /// *Receiver-side* misbehavior (§4.4): assign zero backoff to every
    /// sender, pulling data in faster than competing receivers. Only
    /// meaningful under the modified protocol; detected by the
    /// deterministic-`g` sender check.
    ZeroAssignment,
    /// *Receiver-side* collusion (§4.4): never add penalties — every
    /// assignment is clamped back into the base range `[0, CWmin]`, so a
    /// partnered cheating sender keeps its advantage. Invisible to the
    /// sender-side `g` check (the base is legitimate); caught by a
    /// third-party observer.
    NoPenalty,
}

impl Selfish {
    /// True for the compliant variant.
    #[must_use]
    pub fn is_none(&self) -> bool {
        matches!(self, Selfish::None)
    }

    /// The fraction of an assigned backoff this strategy actually waits,
    /// where meaningful (1.0 for strategies that do not scale).
    #[must_use]
    pub fn compliance_fraction(&self) -> f64 {
        match self {
            Selfish::BackoffScale { pm } | Selfish::AttemptSpoof { pm } => 1.0 - pm / 100.0,
            _ => 1.0,
        }
    }
}

/// Applies the PM scaling to a backoff value: a node at `PM = x %` counts
/// down to `(100 − x) %` of `slots`, rounding to the nearest slot.
#[must_use]
pub fn scale_backoff(slots: Slots, pm: f64) -> Slots {
    let fraction = (1.0 - pm / 100.0).clamp(0.0, 1.0);
    Slots::new((f64::from(slots.count()) * fraction).round() as u32)
}

/// Decorator wrapping an honest policy with a [`Selfish`] strategy.
///
/// ```
/// use airguard_mac::{BackoffPolicy, Dcf80211, MacTiming, Misbehavior, Selfish};
/// use airguard_sim::{MasterSeed, NodeId};
///
/// let timing = MacTiming::dsss_2mbps();
/// let mut rng = MasterSeed::new(1).stream("mac", 0);
/// // PM = 100 %: never backs off at all.
/// let mut cheat = Misbehavior::new(Dcf80211::new(), Selfish::BackoffScale { pm: 100.0 });
/// assert_eq!(cheat.fresh_backoff(NodeId::new(0), &timing, &mut rng).count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct Misbehavior<P> {
    inner: P,
    strategy: Selfish,
}

impl<P: BackoffPolicy> Misbehavior<P> {
    /// Wraps `inner` with `strategy`.
    ///
    /// # Panics
    ///
    /// Panics if a [`Selfish::BackoffScale`] percentage is outside
    /// `[0, 100]`.
    #[must_use]
    pub fn new(inner: P, strategy: Selfish) -> Self {
        if let Selfish::BackoffScale { pm } | Selfish::AttemptSpoof { pm } = strategy {
            assert!(
                (0.0..=100.0).contains(&pm),
                "percentage of misbehavior must be in [0, 100], got {pm}"
            );
        }
        Misbehavior { inner, strategy }
    }

    /// The wrapped strategy.
    #[must_use]
    pub fn strategy(&self) -> Selfish {
        self.strategy
    }

    /// Access to the wrapped honest policy.
    #[must_use]
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Mutable access to the wrapped honest policy (fault injection
    /// resets the inner state through this without disturbing the
    /// strategy decoration).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }
}

impl<P: BackoffPolicy> BackoffPolicy for Misbehavior<P> {
    fn uses_protocol_extensions(&self) -> bool {
        self.inner.uses_protocol_extensions()
    }

    fn fresh_backoff(&mut self, dst: NodeId, timing: &MacTiming, rng: &mut RngStream) -> Slots {
        match self.strategy {
            Selfish::None | Selfish::NoDoubling | Selfish::ZeroAssignment | Selfish::NoPenalty => {
                self.inner.fresh_backoff(dst, timing, rng)
            }
            Selfish::BackoffScale { pm } | Selfish::AttemptSpoof { pm } => {
                // The honest draw still happens (and under the modified
                // protocol records the assignment as used); the cheat is in
                // how much of it the node actually waits.
                scale_backoff(self.inner.fresh_backoff(dst, timing, rng), pm)
            }
            Selfish::QuarterWindow => {
                let _ = self.inner.fresh_backoff(dst, timing, rng);
                uniform_backoff(timing.cw_min / 4, rng)
            }
        }
    }

    fn retry_backoff(
        &mut self,
        dst: NodeId,
        attempt: u8,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Slots {
        match self.strategy {
            Selfish::None | Selfish::ZeroAssignment | Selfish::NoPenalty => {
                self.inner.retry_backoff(dst, attempt, timing, rng)
            }
            Selfish::BackoffScale { pm } | Selfish::AttemptSpoof { pm } => {
                scale_backoff(self.inner.retry_backoff(dst, attempt, timing, rng), pm)
            }
            Selfish::QuarterWindow => {
                let _ = self.inner.retry_backoff(dst, attempt, timing, rng);
                uniform_backoff(timing.cw_for_attempt(attempt) / 4, rng)
            }
            Selfish::NoDoubling => {
                let _ = self.inner.retry_backoff(dst, attempt, timing, rng);
                uniform_backoff(timing.cw_min, rng)
            }
        }
    }

    fn observe_assignment(
        &mut self,
        from: NodeId,
        seq: u64,
        assigned: Option<Slots>,
        timing: &MacTiming,
    ) {
        self.inner.observe_assignment(from, seq, assigned, timing);
    }

    fn observe_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        idle_reading: u64,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Option<BackoffObservation> {
        self.inner
            .observe_rts(src, seq, attempt, idle_reading, timing, rng)
    }

    fn assignment_for(&mut self, dst: NodeId, timing: &MacTiming) -> Option<Slots> {
        let honest = self.inner.assignment_for(dst, timing);
        match self.strategy {
            // Lowball every assignment (but only where the protocol
            // carries one at all).
            Selfish::ZeroAssignment => honest.map(|_| Slots::ZERO),
            // Strip penalties: clamp back into the base range.
            Selfish::NoPenalty => honest.map(|s| Slots::new(s.count().min(timing.cw_min))),
            _ => honest,
        }
    }

    fn observe_ack_sent(&mut self, dst: NodeId, idle_reading: u64) {
        self.inner.observe_ack_sent(dst, idle_reading);
    }

    fn observe_data(&mut self, src: NodeId) -> Option<PacketVerdict> {
        self.inner.observe_data(src)
    }

    fn should_respond_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        rng: &mut RngStream,
    ) -> bool {
        self.inner.should_respond_rts(src, seq, attempt, rng)
    }

    fn report_attempt(&mut self, actual: u8) -> u8 {
        match self.strategy {
            Selfish::AttemptSpoof { .. } => 1,
            _ => self.inner.report_attempt(actual),
        }
    }

    fn observe_overheard(
        &mut self,
        frame: &crate::frames::Frame,
        idle_reading: u64,
        timing: &MacTiming,
    ) {
        self.inner.observe_overheard(frame, idle_reading, timing);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Dcf80211;
    use airguard_sim::MasterSeed;

    fn rng() -> RngStream {
        MasterSeed::new(7).stream("misbehavior-test", 0)
    }

    #[test]
    fn scale_backoff_reference_points() {
        assert_eq!(scale_backoff(Slots::new(20), 0.0), Slots::new(20));
        assert_eq!(scale_backoff(Slots::new(20), 50.0), Slots::new(10));
        assert_eq!(scale_backoff(Slots::new(20), 100.0), Slots::ZERO);
        assert_eq!(
            scale_backoff(Slots::new(21), 50.0),
            Slots::new(11),
            "rounds"
        );
        assert_eq!(scale_backoff(Slots::ZERO, 50.0), Slots::ZERO);
    }

    #[test]
    fn none_strategy_is_transparent() {
        let timing = MacTiming::dsss_2mbps();
        let mut honest_rng = MasterSeed::new(9).stream("x", 0);
        let mut wrapped_rng = MasterSeed::new(9).stream("x", 0);
        let mut honest = Dcf80211::new();
        let mut wrapped = Misbehavior::new(Dcf80211::new(), Selfish::None);
        for _ in 0..100 {
            assert_eq!(
                honest.fresh_backoff(NodeId::new(0), &timing, &mut honest_rng),
                wrapped.fresh_backoff(NodeId::new(0), &timing, &mut wrapped_rng)
            );
        }
    }

    #[test]
    fn pm_scaling_halves_the_mean() {
        let timing = MacTiming::dsss_2mbps();
        let mut r = rng();
        let mut cheat = Misbehavior::new(Dcf80211::new(), Selfish::BackoffScale { pm: 50.0 });
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| u64::from(cheat.fresh_backoff(NodeId::new(0), &timing, &mut r).count()))
            .sum();
        let mean = sum as f64 / n as f64;
        // round(b/2) over b ∈ [0, 31] averages exactly 8.0 (rounding half
        // away from zero makes odd values round up).
        assert!((mean - 8.0).abs() < 0.2, "mean {mean}, want ≈ 8.0");
    }

    #[test]
    fn quarter_window_bounds() {
        let timing = MacTiming::dsss_2mbps();
        let mut r = rng();
        let mut cheat = Misbehavior::new(Dcf80211::new(), Selfish::QuarterWindow);
        for _ in 0..2_000 {
            assert!(cheat.fresh_backoff(NodeId::new(0), &timing, &mut r).count() <= 7);
            assert!(
                cheat
                    .retry_backoff(NodeId::new(0), 3, &timing, &mut r)
                    .count()
                    <= 31
            );
        }
    }

    #[test]
    fn no_doubling_caps_retries_at_cwmin() {
        let timing = MacTiming::dsss_2mbps();
        let mut r = rng();
        let mut cheat = Misbehavior::new(Dcf80211::new(), Selfish::NoDoubling);
        for attempt in 2..=7u8 {
            for _ in 0..500 {
                assert!(
                    cheat
                        .retry_backoff(NodeId::new(0), attempt, &timing, &mut r)
                        .count()
                        <= timing.cw_min
                );
            }
        }
    }

    #[test]
    fn zero_assignment_lowballs_only_when_protocol_assigns() {
        struct Assigner;
        impl BackoffPolicy for Assigner {
            fn fresh_backoff(&mut self, _: NodeId, t: &MacTiming, r: &mut RngStream) -> Slots {
                uniform_backoff(t.cw_min, r)
            }
            fn retry_backoff(
                &mut self,
                _: NodeId,
                a: u8,
                t: &MacTiming,
                r: &mut RngStream,
            ) -> Slots {
                uniform_backoff(t.cw_for_attempt(a), r)
            }
            fn assignment_for(&mut self, _: NodeId, _: &MacTiming) -> Option<Slots> {
                Some(Slots::new(17))
            }
        }
        let timing = MacTiming::dsss_2mbps();
        let mut selfish = Misbehavior::new(Assigner, Selfish::ZeroAssignment);
        assert_eq!(
            selfish.assignment_for(NodeId::new(1), &timing),
            Some(Slots::ZERO)
        );
        let mut baseline = Misbehavior::new(Dcf80211::new(), Selfish::ZeroAssignment);
        assert_eq!(baseline.assignment_for(NodeId::new(1), &timing), None);
    }

    #[test]
    fn no_penalty_clamps_to_base_range() {
        struct Assigner;
        impl BackoffPolicy for Assigner {
            fn fresh_backoff(&mut self, _: NodeId, t: &MacTiming, r: &mut RngStream) -> Slots {
                uniform_backoff(t.cw_min, r)
            }
            fn retry_backoff(
                &mut self,
                _: NodeId,
                a: u8,
                t: &MacTiming,
                r: &mut RngStream,
            ) -> Slots {
                uniform_backoff(t.cw_for_attempt(a), r)
            }
            fn assignment_for(&mut self, _: NodeId, _: &MacTiming) -> Option<Slots> {
                Some(Slots::new(90)) // base + large penalty
            }
        }
        let timing = MacTiming::dsss_2mbps();
        let mut colluder = Misbehavior::new(Assigner, Selfish::NoPenalty);
        assert_eq!(
            colluder.assignment_for(NodeId::new(1), &timing),
            Some(Slots::new(31)),
            "penalty stripped, base range kept"
        );
    }

    #[test]
    fn compliance_fraction_reflects_pm() {
        assert_eq!(Selfish::None.compliance_fraction(), 1.0);
        assert_eq!(
            Selfish::BackoffScale { pm: 30.0 }.compliance_fraction(),
            0.7
        );
        assert_eq!(Selfish::QuarterWindow.compliance_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 100]")]
    fn rejects_out_of_range_pm() {
        let _ = Misbehavior::new(Dcf80211::new(), Selfish::BackoffScale { pm: 130.0 });
    }
}
