//! The pluggable backoff policy: the seam between plain IEEE 802.11 and
//! the paper's modified protocol.
//!
//! A [`BackoffPolicy`] answers every question the DCF engine has about
//! backoff values and protocol observations:
//!
//! * **sender side** — how many slots to back off before a fresh
//!   transmission and before each retry, and what to do with a backoff
//!   assignment arriving in an ACK;
//! * **receiver side** — what backoff value (if any) to embed in CTS/ACK
//!   frames, and what to record when an RTS arrives, when an ACK finishes
//!   transmitting, and when a data packet is delivered.
//!
//! [`Dcf80211`] implements the unmodified standard: uniform backoff from
//! the local contention window, no assignments, no observations. The
//! paper's receiver-assigned protocol is `airguard_core::CorrectPolicy`,
//! implemented against this same trait.

use airguard_sim::{NodeId, RngStream};
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::timing::{MacTiming, Slots};

/// The receiver-side conclusion about one delivered packet, produced by
/// the diagnosis scheme and forwarded to metrics collection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketVerdict {
    /// Measured deviation `D = max(α·B_exp − B_act, 0)` for this packet's
    /// exchange, in slots.
    pub deviation_slots: f64,
    /// The signed window statistic `Σ(B_exp − B_act)` at classification
    /// time, in slots.
    pub window_sum: f64,
    /// Whether the diagnosis scheme flags the sender as misbehaving at
    /// this packet.
    pub flagged: bool,
}

/// One receiver-side backoff measurement, produced when a policy's
/// monitor compares the backoff it assigned to a sender against the
/// idle time it actually observed before the sender's access.
///
/// All quantities are in slots. `deviation_slots` is the paper's
/// per-packet `D = max(α·B_exp − B_act, 0)`; `penalty_slots` is the
/// correction added to the sender's next assigned backoff (zero for a
/// well-behaved exchange).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackoffObservation {
    /// `B_exp`: the total backoff the receiver expected, in slots.
    pub assigned_slots: f64,
    /// `B_act`: the idle time the receiver observed, in slots.
    pub observed_slots: f64,
    /// Per-packet deviation `D = max(α·B_exp − B_act, 0)`.
    pub deviation_slots: f64,
    /// Penalty added to the sender's next assignment.
    pub penalty_slots: f64,
}

/// Strategy object deciding backoff behaviour and protocol observations.
///
/// All methods take the node's own [`MacTiming`] so policies never cache
/// timing state, and an [`RngStream`] so all randomness stays on the
/// node's deterministic stream.
pub trait BackoffPolicy {
    /// Whether frames should carry the modified protocol's extension
    /// fields (RTS attempt number; CTS/ACK assigned backoff).
    fn uses_protocol_extensions(&self) -> bool {
        false
    }

    /// Backoff before the first transmission attempt of a new packet to
    /// `dst`.
    fn fresh_backoff(&mut self, dst: NodeId, timing: &MacTiming, rng: &mut RngStream) -> Slots;

    /// Backoff before retry `attempt` (≥ 2) of the current packet to
    /// `dst`.
    fn retry_backoff(
        &mut self,
        dst: NodeId,
        attempt: u8,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Slots;

    /// Called when an ACK from `from` is decoded, with the backoff value
    /// it carried (if any) and the sequence number it acknowledged. Under
    /// the modified protocol the sender must use this value for its next
    /// packet to `from`.
    fn observe_assignment(
        &mut self,
        from: NodeId,
        seq: u64,
        assigned: Option<Slots>,
        timing: &MacTiming,
    ) {
        let _ = (from, seq, assigned, timing);
    }

    /// Called when an RTS from `src` is decoded at this node (as
    /// receiver). `idle_reading` is this node's cumulative post-DIFS
    /// idle-slot count at the moment of reception (see
    /// [`crate::IdleSlotCounter`]).
    ///
    /// Policies that monitor sender backoff return the measurement they
    /// took (expected vs. observed slots, resulting deviation and
    /// penalty), which the MAC forwards to telemetry. Policies without
    /// a monitor return `None`.
    fn observe_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        idle_reading: u64,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Option<BackoffObservation> {
        let _ = (src, seq, attempt, idle_reading, timing, rng);
        None
    }

    /// The backoff value to embed in CTS/ACK frames addressed to `dst`,
    /// or `None` under the unmodified protocol.
    fn assignment_for(&mut self, dst: NodeId, timing: &MacTiming) -> Option<Slots> {
        let _ = (dst, timing);
        None
    }

    /// Called when this node's ACK to `dst` has finished transmitting.
    /// `idle_reading` is the idle-slot counter at that instant — the
    /// `B_act` measurement baseline for `dst`'s next exchange.
    fn observe_ack_sent(&mut self, dst: NodeId, idle_reading: u64) {
        let _ = (dst, idle_reading);
    }

    /// Called when a non-duplicate DATA frame from `src` is delivered.
    /// Returns the diagnosis verdict for this packet, if the policy runs
    /// one.
    fn observe_data(&mut self, src: NodeId) -> Option<PacketVerdict> {
        let _ = src;
        None
    }

    /// Whether to respond to a decoded RTS from `src` with a CTS.
    ///
    /// The paper's attempt-verification probe (§4.1) intentionally drops
    /// an occasional RTS and checks that the sender's retry carries an
    /// incremented attempt number; a policy implements that by returning
    /// `false` here. The default always responds.
    fn should_respond_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        rng: &mut RngStream,
    ) -> bool {
        let _ = (src, seq, attempt, rng);
        true
    }

    /// The attempt number to serialize into an outgoing RTS, given the
    /// true attempt count. Honest policies return `actual`; the
    /// attempt-lying misbehavior reports a stale number to hide its
    /// retransmissions.
    fn report_attempt(&mut self, actual: u8) -> u8 {
        actual
    }

    /// Called for every decoded frame *not* addressed to this node.
    /// `idle_reading` is this node's cumulative post-DIFS idle-slot
    /// count. Third-party observers (the paper's §4.4 collusion-watch
    /// building block) live entirely on this hook; the default ignores
    /// overheard traffic.
    fn observe_overheard(
        &mut self,
        frame: &crate::frames::Frame,
        idle_reading: u64,
        timing: &MacTiming,
    ) {
        let _ = (frame, idle_reading, timing);
    }
}

/// Draws a uniform backoff from `[0, cw]` inclusive, as IEEE 802.11
/// specifies.
#[must_use]
pub fn uniform_backoff(cw: u32, rng: &mut RngStream) -> Slots {
    Slots::new(rng.random_range(0..=cw))
}

/// The unmodified IEEE 802.11 DCF backoff policy.
///
/// Fresh packets draw from `[0, CWmin]`; retry `i` draws from
/// `[0, CW_i]` with the standard doubling ladder. Nothing is assigned,
/// observed, or diagnosed.
///
/// ```
/// use airguard_mac::{BackoffPolicy, Dcf80211, MacTiming};
/// use airguard_sim::{MasterSeed, NodeId};
///
/// let timing = MacTiming::dsss_2mbps();
/// let mut rng = MasterSeed::new(1).stream("mac", 0);
/// let mut policy = Dcf80211::new();
/// let b = policy.fresh_backoff(NodeId::new(0), &timing, &mut rng);
/// assert!(b.count() <= timing.cw_min);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Dcf80211;

impl Dcf80211 {
    /// Creates the baseline policy.
    #[must_use]
    pub fn new() -> Self {
        Dcf80211
    }
}

impl BackoffPolicy for Dcf80211 {
    fn fresh_backoff(&mut self, _dst: NodeId, timing: &MacTiming, rng: &mut RngStream) -> Slots {
        uniform_backoff(timing.cw_min, rng)
    }

    fn retry_backoff(
        &mut self,
        _dst: NodeId,
        attempt: u8,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Slots {
        uniform_backoff(timing.cw_for_attempt(attempt), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_sim::MasterSeed;

    fn rng() -> RngStream {
        MasterSeed::new(42).stream("policy-test", 0)
    }

    #[test]
    fn fresh_backoff_is_within_cwmin() {
        let timing = MacTiming::dsss_2mbps();
        let mut r = rng();
        let mut p = Dcf80211::new();
        for _ in 0..1_000 {
            let b = p.fresh_backoff(NodeId::new(0), &timing, &mut r);
            assert!(b.count() <= timing.cw_min);
        }
    }

    #[test]
    fn fresh_backoff_covers_the_range() {
        let timing = MacTiming::dsss_2mbps();
        let mut r = rng();
        let mut p = Dcf80211::new();
        let mut seen = vec![false; (timing.cw_min + 1) as usize];
        for _ in 0..5_000 {
            seen[p.fresh_backoff(NodeId::new(0), &timing, &mut r).count() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 32 values should occur");
    }

    #[test]
    fn fresh_backoff_mean_is_cw_half() {
        let timing = MacTiming::dsss_2mbps();
        let mut r = rng();
        let mut p = Dcf80211::new();
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| u64::from(p.fresh_backoff(NodeId::new(0), &timing, &mut r).count()))
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 15.5).abs() < 0.2, "mean backoff {mean}");
    }

    #[test]
    fn retry_backoff_uses_the_ladder() {
        let timing = MacTiming::dsss_2mbps();
        let mut r = rng();
        let mut p = Dcf80211::new();
        let mut max3 = 0;
        for _ in 0..5_000 {
            max3 = max3.max(p.retry_backoff(NodeId::new(0), 3, &timing, &mut r).count());
        }
        assert!(max3 > 63, "attempt 3 should exceed CW_2 range, saw {max3}");
        assert!(max3 <= 127);
    }

    #[test]
    fn baseline_has_no_extensions_or_assignments() {
        let timing = MacTiming::dsss_2mbps();
        let mut p = Dcf80211::new();
        assert!(!p.uses_protocol_extensions());
        assert_eq!(p.assignment_for(NodeId::new(1), &timing), None);
        assert_eq!(p.observe_data(NodeId::new(1)), None);
    }
}
