//! 802.11 timing constants, slot arithmetic, and the contention-window
//! ladder.
//!
//! Parameters are the IEEE 802.11-1999 DSSS PHY set, which is what ns-2
//! (and hence the paper) used: 20 µs slots, 10 µs SIFS, 50 µs DIFS,
//! CWmin = 31, CWmax = 1023, and a 192 µs PLCP preamble + header sent
//! before every frame. The channel bit rate in the paper's evaluation is
//! 2 Mb/s.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use airguard_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A count of backoff slots.
///
/// Backoff values, penalties, and idle-slot observations are all measured
/// in slots; the newtype keeps them from mixing with byte counts and raw
/// microseconds.
///
/// ```
/// use airguard_mac::{MacTiming, Slots};
///
/// let timing = MacTiming::dsss_2mbps();
/// assert_eq!(Slots::new(3).to_duration(&timing).as_micros(), 60);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Slots(u32);

impl Slots {
    /// Zero slots.
    pub const ZERO: Slots = Slots(0);

    /// Wraps a raw slot count.
    #[must_use]
    pub const fn new(count: u32) -> Self {
        Slots(count)
    }

    /// The raw slot count.
    #[must_use]
    pub const fn count(self) -> u32 {
        self.0
    }

    /// The on-air time these slots occupy.
    #[must_use]
    pub fn to_duration(self, timing: &MacTiming) -> SimDuration {
        timing.slot * u64::from(self.0)
    }

    /// `self - rhs`, clamped at zero.
    #[must_use]
    pub fn saturating_sub(self, rhs: Slots) -> Slots {
        Slots(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Slots {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} slots", self.0)
    }
}

impl Add for Slots {
    type Output = Slots;
    fn add(self, rhs: Slots) -> Slots {
        Slots(self.0 + rhs.0)
    }
}

impl AddAssign for Slots {
    fn add_assign(&mut self, rhs: Slots) {
        self.0 += rhs.0;
    }
}

impl Sub for Slots {
    type Output = Slots;
    fn sub(self, rhs: Slots) -> Slots {
        Slots(self.0 - rhs.0)
    }
}

/// Complete MAC/PHY timing parameter set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MacTiming {
    /// Backoff slot time.
    pub slot: SimDuration,
    /// Short interframe space (before CTS, DATA, ACK).
    pub sifs: SimDuration,
    /// DCF interframe space (idle time required before backoff countdown).
    pub difs: SimDuration,
    /// PLCP preamble + header prepended to every frame on air.
    pub plcp_overhead: SimDuration,
    /// Channel bit rate in bits per second.
    pub bit_rate: u64,
    /// Minimum contention window (CWmin), in slots.
    pub cw_min: u32,
    /// Maximum contention window (CWmax), in slots.
    pub cw_max: u32,
    /// Maximum number of transmission attempts before a packet is dropped.
    pub retry_limit: u8,
}

impl MacTiming {
    /// The paper's configuration: DSSS timing at a 2 Mb/s channel rate.
    #[must_use]
    pub fn dsss_2mbps() -> Self {
        MacTiming {
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            plcp_overhead: SimDuration::from_micros(192),
            bit_rate: 2_000_000,
            cw_min: 31,
            cw_max: 1023,
            retry_limit: 7,
        }
    }

    /// On-air time of a frame of `bytes` bytes: PLCP overhead plus the
    /// serialized bits at the channel rate, rounded up to a whole
    /// microsecond.
    #[must_use]
    pub fn air_time(&self, bytes: u32) -> SimDuration {
        let bits = u64::from(bytes) * 8;
        let micros = (bits * 1_000_000).div_ceil(self.bit_rate);
        self.plcp_overhead + SimDuration::from_micros(micros)
    }

    /// Contention window for the `attempt`-th transmission attempt
    /// (1-based), exactly as IEEE 802.11 computes it:
    /// `CW_i = min((CWmin+1)·2^(i−1) − 1, CWmax)`.
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero.
    #[must_use]
    pub fn cw_for_attempt(&self, attempt: u8) -> u32 {
        assert!(attempt >= 1, "attempts are 1-based");
        let exp = u32::from(attempt - 1).min(16);
        let cw = (self.cw_min + 1).saturating_mul(1 << exp).saturating_sub(1);
        cw.min(self.cw_max)
    }
}

impl Default for MacTiming {
    fn default() -> Self {
        MacTiming::dsss_2mbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsss_constants_match_standard() {
        let t = MacTiming::dsss_2mbps();
        assert_eq!(t.slot.as_micros(), 20);
        assert_eq!(t.sifs.as_micros(), 10);
        assert_eq!(t.difs.as_micros(), 50);
        // DIFS = SIFS + 2·slot for DSSS.
        assert_eq!(t.difs, t.sifs + t.slot * 2);
        assert_eq!(t.cw_min, 31);
        assert_eq!(t.cw_max, 1023);
    }

    #[test]
    fn air_time_examples() {
        let t = MacTiming::dsss_2mbps();
        // 20-byte RTS at 2 Mb/s: 192 + 80 µs.
        assert_eq!(t.air_time(20).as_micros(), 272);
        // 14-byte CTS/ACK: 192 + 56 µs.
        assert_eq!(t.air_time(14).as_micros(), 248);
        // 540-byte MPDU (512 payload + 28 header): 192 + 2160 µs.
        assert_eq!(t.air_time(540).as_micros(), 2352);
    }

    #[test]
    fn air_time_rounds_up() {
        let mut t = MacTiming::dsss_2mbps();
        t.bit_rate = 3_000_000; // 1 byte = 8/3 µs → rounds to 3
        assert_eq!(t.air_time(1), t.plcp_overhead + SimDuration::from_micros(3));
    }

    #[test]
    fn cw_ladder_doubles_and_caps() {
        let t = MacTiming::dsss_2mbps();
        assert_eq!(t.cw_for_attempt(1), 31);
        assert_eq!(t.cw_for_attempt(2), 63);
        assert_eq!(t.cw_for_attempt(3), 127);
        assert_eq!(t.cw_for_attempt(4), 255);
        assert_eq!(t.cw_for_attempt(5), 511);
        assert_eq!(t.cw_for_attempt(6), 1023);
        assert_eq!(t.cw_for_attempt(7), 1023, "capped at CWmax");
        assert_eq!(t.cw_for_attempt(30), 1023, "no overflow at huge attempts");
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn cw_rejects_attempt_zero() {
        let _ = MacTiming::dsss_2mbps().cw_for_attempt(0);
    }

    #[test]
    fn slots_arithmetic() {
        let t = MacTiming::dsss_2mbps();
        let a = Slots::new(5);
        assert_eq!(a + Slots::new(2), Slots::new(7));
        assert_eq!(a - Slots::new(2), Slots::new(3));
        assert_eq!(a.saturating_sub(Slots::new(9)), Slots::ZERO);
        assert_eq!(Slots::new(4).to_duration(&t).as_micros(), 80);
        assert_eq!(format!("{a}"), "5 slots");
    }
}
