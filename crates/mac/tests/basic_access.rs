//! Unit-level tests of the basic (two-way) access state machine, driven
//! without a simulator.

use airguard_mac::dcf::{AccessMode, Mac, MacConfig, MacEffect, MacInput, TimerKind};
use airguard_mac::frames::{ExchangeDurations, Frame, FrameKind};
use airguard_mac::{Dcf80211, MacTiming};
use airguard_sim::{MasterSeed, NodeId, SimDuration, SimTime};

fn t(micros: u64) -> SimTime {
    SimTime::from_micros(micros)
}

fn basic_mac() -> Mac<Dcf80211> {
    Mac::new(
        NodeId::new(1),
        MacConfig {
            access: AccessMode::Basic,
            ..MacConfig::default()
        },
        Dcf80211::new(),
        MasterSeed::new(8).stream("basic-test", 0),
    )
}

fn started(fx: &[MacEffect]) -> Option<&Frame> {
    fx.iter().find_map(|e| match e {
        MacEffect::StartTx(f) => Some(&**f),
        _ => None,
    })
}

fn timer(fx: &[MacEffect], kind: TimerKind) -> Option<SimDuration> {
    fx.iter().find_map(|e| match e {
        MacEffect::SetTimer { kind: k, after } if *k == kind => Some(*after),
        _ => None,
    })
}

#[test]
fn backoff_expiry_transmits_data_directly() {
    let mut m = basic_mac();
    let fx = m.handle(
        t(0),
        MacInput::Enqueue {
            dst: NodeId::new(0),
            bytes: 512,
        },
    );
    let after = timer(&fx, TimerKind::Backoff).expect("backoff armed");
    let fx = m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
    let frame = started(&fx).expect("frame transmitted");
    assert_eq!(frame.kind, FrameKind::Data, "no RTS under basic access");
    assert_eq!(frame.payload_bytes, 512);
    // Duration field reserves SIFS + ACK.
    let timing = MacTiming::dsss_2mbps();
    let d = ExchangeDurations::compute(&timing, 512, false);
    assert_eq!(frame.duration_field, d.data);
    assert_eq!(m.counters().rts_sent, 0);
}

#[test]
fn data_tx_end_arms_ack_timeout() {
    let mut m = basic_mac();
    let fx = m.handle(
        t(0),
        MacInput::Enqueue {
            dst: NodeId::new(0),
            bytes: 512,
        },
    );
    let after = timer(&fx, TimerKind::Backoff).unwrap();
    m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
    m.handle(t(after.as_micros()), MacInput::ChannelBusy);
    let end = after.as_micros() + 2352;
    let fx = m.handle(t(end), MacInput::OwnTxEnd);
    assert!(timer(&fx, TimerKind::AckTimeout).is_some());
    assert!(timer(&fx, TimerKind::CtsTimeout).is_none());
}

#[test]
fn ack_completes_the_two_way_exchange() {
    let mut m = basic_mac();
    let fx = m.handle(
        t(0),
        MacInput::Enqueue {
            dst: NodeId::new(0),
            bytes: 512,
        },
    );
    let after = timer(&fx, TimerKind::Backoff).unwrap();
    m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
    m.handle(t(after.as_micros()), MacInput::ChannelBusy);
    let end = after.as_micros() + 2352;
    m.handle(t(end), MacInput::OwnTxEnd);
    m.handle(t(end), MacInput::ChannelIdle);
    let ack = Frame {
        kind: FrameKind::Ack,
        src: NodeId::new(0),
        dst: NodeId::new(1),
        duration_field: SimDuration::ZERO,
        attempt: 0,
        assigned_backoff: None,
        payload_bytes: 0,
        seq: 0,
    };
    let fx = m.handle(t(end + 260), MacInput::Decoded(ack.into()));
    assert!(fx.iter().any(|e| matches!(
        e,
        MacEffect::SendComplete {
            seq: 0,
            attempts: 1,
            ..
        }
    )));
    assert_eq!(m.queue_len(), 0);
}

#[test]
fn ack_timeout_retries_the_data_frame() {
    let mut m = basic_mac();
    let fx = m.handle(
        t(0),
        MacInput::Enqueue {
            dst: NodeId::new(0),
            bytes: 512,
        },
    );
    let after = timer(&fx, TimerKind::Backoff).unwrap();
    m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
    m.handle(t(after.as_micros()), MacInput::ChannelBusy);
    let end = after.as_micros() + 2352;
    m.handle(t(end), MacInput::OwnTxEnd);
    m.handle(t(end), MacInput::ChannelIdle);
    let fx = m.handle(t(end + 300), MacInput::Timer(TimerKind::AckTimeout));
    assert_eq!(m.counters().ack_timeouts, 1);
    assert!(
        timer(&fx, TimerKind::Backoff).is_some(),
        "re-enters backoff"
    );
    // The retry transmits DATA again, not an RTS.
    let retry_at = end + 300 + timer(&fx, TimerKind::Backoff).unwrap().as_micros();
    let fx = m.handle(t(retry_at), MacInput::Timer(TimerKind::Backoff));
    assert_eq!(started(&fx).unwrap().kind, FrameKind::Data);
    assert_eq!(started(&fx).unwrap().seq, 0, "same packet");
}
