//! Edge-path tests of the DCF machine driven through a recording stub
//! policy: protocol-extension serialization, monitor hook timing, NAV
//! reset, and response-conflict handling.

use std::cell::RefCell;
use std::rc::Rc;

use airguard_mac::dcf::{Mac, MacConfig, MacEffect, MacInput, TimerKind};
use airguard_mac::frames::{ExchangeDurations, Frame, FrameKind};
use airguard_mac::policy::{uniform_backoff, BackoffObservation, BackoffPolicy};
use airguard_mac::timing::{MacTiming, Slots};
use airguard_sim::{MasterSeed, NodeId, RngStream, SimTime};

/// A policy that uses protocol extensions, assigns a fixed backoff, and
/// records every hook invocation.
#[derive(Debug, Clone, Default)]
struct RecordingPolicy {
    log: Rc<RefCell<Vec<String>>>,
    assign: u32,
}

impl BackoffPolicy for RecordingPolicy {
    fn uses_protocol_extensions(&self) -> bool {
        true
    }

    fn fresh_backoff(&mut self, _: NodeId, timing: &MacTiming, rng: &mut RngStream) -> Slots {
        uniform_backoff(timing.cw_min, rng)
    }

    fn retry_backoff(
        &mut self,
        _: NodeId,
        a: u8,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Slots {
        uniform_backoff(timing.cw_for_attempt(a), rng)
    }

    fn observe_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        idle_reading: u64,
        _: &MacTiming,
        _: &mut RngStream,
    ) -> Option<BackoffObservation> {
        self.log.borrow_mut().push(format!(
            "rts src={src} seq={seq} attempt={attempt} idle={idle_reading}"
        ));
        None
    }

    fn assignment_for(&mut self, _: NodeId, _: &MacTiming) -> Option<Slots> {
        Some(Slots::new(self.assign))
    }

    fn observe_ack_sent(&mut self, dst: NodeId, idle_reading: u64) {
        self.log
            .borrow_mut()
            .push(format!("ack-sent dst={dst} idle={idle_reading}"));
    }
}

fn t(micros: u64) -> SimTime {
    SimTime::from_micros(micros)
}

fn mac_with(assign: u32) -> (Mac<RecordingPolicy>, Rc<RefCell<Vec<String>>>) {
    let log = Rc::new(RefCell::new(Vec::new()));
    let policy = RecordingPolicy {
        log: Rc::clone(&log),
        assign,
    };
    (
        Mac::new(
            NodeId::new(0),
            MacConfig::default(),
            policy,
            MasterSeed::new(3).stream("edges", 0),
        ),
        log,
    )
}

fn rts(src: u32, dst: u32, seq: u64, attempt: u8) -> Frame {
    let timing = MacTiming::dsss_2mbps();
    let d = ExchangeDurations::compute(&timing, 512, true);
    Frame {
        kind: FrameKind::Rts,
        src: NodeId::new(src),
        dst: NodeId::new(dst),
        duration_field: d.rts,
        attempt,
        assigned_backoff: None,
        payload_bytes: 0,
        seq,
    }
}

fn started(fx: &[MacEffect]) -> Option<&Frame> {
    fx.iter().find_map(|e| match e {
        MacEffect::StartTx(f) => Some(&**f),
        _ => None,
    })
}

#[test]
fn cts_carries_the_policy_assignment() {
    let (mut m, _) = mac_with(23);
    m.handle(t(100), MacInput::Decoded(rts(5, 0, 0, 1).into()));
    let fx = m.handle(t(110), MacInput::Timer(TimerKind::Response));
    let cts = started(&fx).expect("CTS sent");
    assert_eq!(cts.kind, FrameKind::Cts);
    assert_eq!(cts.assigned_backoff, Some(Slots::new(23)));
    // Extension bytes are accounted in the air time.
    assert_eq!(cts.bytes(), 16);
}

#[test]
fn ack_carries_assignment_and_hook_fires_at_tx_end() {
    let (mut m, log) = mac_with(12);
    let timing = MacTiming::dsss_2mbps();
    let mut data = rts(5, 0, 7, 0);
    data.kind = FrameKind::Data;
    data.payload_bytes = 512;
    data.duration_field = ExchangeDurations::compute(&timing, 512, true).data;
    m.handle(t(1_000), MacInput::Decoded(data.into()));
    let fx = m.handle(t(1_010), MacInput::Timer(TimerKind::Response));
    let ack = started(&fx).expect("ACK sent");
    assert_eq!(ack.kind, FrameKind::Ack);
    assert_eq!(ack.assigned_backoff, Some(Slots::new(12)));
    assert!(
        !log.borrow().iter().any(|l| l.starts_with("ack-sent")),
        "hook must not fire before the ACK leaves the air"
    );
    m.handle(t(1_010), MacInput::ChannelBusy);
    m.handle(t(1_268), MacInput::OwnTxEnd);
    assert!(log
        .borrow()
        .iter()
        .any(|l| l.starts_with("ack-sent dst=n5")));
}

#[test]
fn observe_rts_gets_seq_attempt_and_idle_reading() {
    let (mut m, log) = mac_with(9);
    // 100 idle µs beyond DIFS at t=150: floor((150-50)/20) = 5 slots.
    m.handle(t(150), MacInput::Decoded(rts(5, 0, 42, 3).into()));
    let entries = log.borrow();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0], "rts src=n5 seq=42 attempt=3 idle=5");
}

#[test]
fn second_rts_during_pending_response_is_ignored() {
    let (mut m, log) = mac_with(9);
    m.handle(t(100), MacInput::Decoded(rts(5, 0, 0, 1).into()));
    let fx = m.handle(t(102), MacInput::Decoded(rts(6, 0, 0, 1).into()));
    assert!(started(&fx).is_none());
    assert_eq!(
        log.borrow().len(),
        1,
        "the ignored RTS must not reach the monitor"
    );
}

#[test]
fn nav_reset_clears_stale_reservation() {
    let (mut m, _) = mac_with(9);
    // Overhear an RTS for someone else: NAV armed for the full exchange.
    m.handle(t(0), MacInput::Decoded(rts(5, 9, 0, 1).into()));
    assert!(m.channel_busy(), "NAV set");
    // No CTS ever starts; the NavReset check fires (SIFS + CTS-air +
    // 2 slots = 306 µs later) with the channel idle since before the RTS
    // decode.
    let fx = m.handle(t(310), MacInput::Timer(TimerKind::NavReset));
    assert!(
        fx.contains(&MacEffect::CancelTimer(TimerKind::NavExpire)),
        "NAV expiry timer dropped"
    );
    assert!(!m.channel_busy(), "stale NAV cleared");
}

#[test]
fn nav_reset_keeps_reservation_when_exchange_proceeds() {
    let (mut m, _) = mac_with(9);
    m.handle(t(0), MacInput::Decoded(rts(5, 9, 0, 1).into()));
    // The CTS (someone transmitting) makes the channel busy before the
    // reset check.
    m.handle(t(20), MacInput::ChannelBusy);
    m.handle(t(270), MacInput::ChannelIdle);
    m.handle(t(310), MacInput::Timer(TimerKind::NavReset));
    assert!(m.channel_busy(), "NAV must survive a live exchange");
}

#[test]
fn rts_attempt_field_reflects_policy_report() {
    let (mut m, _) = mac_with(9);
    let fx = m.handle(
        t(0),
        MacInput::Enqueue {
            dst: NodeId::new(5),
            bytes: 512,
        },
    );
    let after = fx
        .iter()
        .find_map(|e| match e {
            MacEffect::SetTimer {
                kind: TimerKind::Backoff,
                after,
            } => Some(*after),
            _ => None,
        })
        .expect("backoff armed");
    let fx = m.handle(t(after.as_micros()), MacInput::Timer(TimerKind::Backoff));
    let frame = started(&fx).expect("RTS");
    assert_eq!(frame.attempt, 1, "extensions serialize the attempt number");
    assert_eq!(frame.bytes(), 21, "RTS grows by the attempt byte");
}

#[test]
fn duplicate_data_still_reaches_no_monitor_classification() {
    let (mut m, _) = mac_with(9);
    let timing = MacTiming::dsss_2mbps();
    let mut data = rts(5, 0, 3, 0);
    data.kind = FrameKind::Data;
    data.payload_bytes = 512;
    data.duration_field = ExchangeDurations::compute(&timing, 512, true).data;

    let fx = m.handle(t(0), MacInput::Decoded(data.clone().into()));
    assert!(fx.iter().any(|e| matches!(e, MacEffect::Delivered { .. })));
    m.handle(t(10), MacInput::Timer(TimerKind::Response));
    m.handle(t(10), MacInput::ChannelBusy);
    m.handle(t(300), MacInput::OwnTxEnd);
    m.handle(t(300), MacInput::ChannelIdle);

    let fx = m.handle(t(5_000), MacInput::Decoded(data.into()));
    assert!(
        !fx.iter().any(|e| matches!(e, MacEffect::Delivered { .. })),
        "duplicate must not deliver"
    );
    assert!(
        !fx.iter().any(|e| matches!(e, MacEffect::Classified { .. })),
        "duplicate must not classify"
    );
}
