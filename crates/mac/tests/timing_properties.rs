//! Property tests of timing arithmetic and the idle-slot counter.

use airguard_mac::{IdleSlotCounter, MacTiming};
use airguard_sim::SimTime;
use proptest::prelude::*;

proptest! {
    #[test]
    fn air_time_is_monotonic_in_bytes(a in 0u32..4096, b in 0u32..4096) {
        let t = MacTiming::dsss_2mbps();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.air_time(lo) <= t.air_time(hi));
    }

    #[test]
    fn cw_ladder_is_monotonic_and_bounded(a in 1u8..30, b in 1u8..30) {
        let t = MacTiming::dsss_2mbps();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.cw_for_attempt(lo) <= t.cw_for_attempt(hi));
        prop_assert!(t.cw_for_attempt(hi) <= t.cw_max);
        prop_assert!(t.cw_for_attempt(lo) >= t.cw_min);
    }

    #[test]
    fn idle_counter_equals_brute_force(
        // Alternating idle/busy segment lengths in microseconds.
        segments in proptest::collection::vec(1u64..3_000, 1..24),
    ) {
        let timing = MacTiming::dsss_2mbps();
        let mut counter = IdleSlotCounter::new(&timing);
        let slot = timing.slot.as_micros();
        let difs = timing.difs.as_micros();

        let mut clock = 0u64;
        let mut expected = 0u64;
        // Even segments are idle, odd are busy.
        for (i, &len) in segments.iter().enumerate() {
            if i % 2 == 0 {
                counter.on_idle(SimTime::from_micros(clock));
                clock += len;
                counter.on_busy(SimTime::from_micros(clock));
                expected += len.saturating_sub(difs) / slot;
            } else {
                clock += len; // stay busy
            }
        }
        prop_assert_eq!(counter.reading(SimTime::from_micros(clock)), expected);
    }

    #[test]
    fn idle_counter_never_decreases(
        segments in proptest::collection::vec(1u64..2_000, 2..16),
    ) {
        let timing = MacTiming::dsss_2mbps();
        let mut counter = IdleSlotCounter::new(&timing);
        let mut clock = 0u64;
        let mut last = 0u64;
        for (i, &len) in segments.iter().enumerate() {
            if i % 2 == 0 {
                counter.on_idle(SimTime::from_micros(clock));
            } else {
                counter.on_busy(SimTime::from_micros(clock));
            }
            clock += len;
            let r = counter.reading(SimTime::from_micros(clock));
            prop_assert!(r >= last);
            last = r;
        }
    }
}
