//! Multi-run aggregation: mean, standard deviation, confidence interval.
//!
//! Every data point in the paper averages 30 seeded runs. [`Summary`]
//! collapses a sample of per-run values into the statistics the harness
//! prints.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of per-run values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of runs.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the 95 % confidence interval (normal approximation;
    /// 0 for n < 2).
    pub ci95: f64,
}

impl Summary {
    /// Computes statistics over `values`.
    ///
    /// ```
    /// use airguard_metrics::Summary;
    ///
    /// let s = Summary::of(&[10.0, 12.0, 14.0]);
    /// assert_eq!(s.mean, 12.0);
    /// assert_eq!(s.n, 3);
    /// assert!((s.std_dev - 2.0).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        if n < 2 {
            return Summary {
                n,
                mean,
                std_dev: 0.0,
                ci95: 0.0,
            };
        }
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
        let std_dev = var.sqrt();
        let ci95 = 1.96 * std_dev / (n as f64).sqrt();
        Summary {
            n,
            mean,
            std_dev,
            ci95,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} (n={})", self.mean, self.ci95, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_value_has_no_spread() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std dev with n−1 = 7: sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_is_compact() {
        let s = Summary::of(&[1.0, 3.0]);
        // std = √2, ci95 = 1.96·√2/√2 = 1.96.
        assert_eq!(format!("{s}"), "2.00 ± 1.96 (n=2)");
    }

    proptest! {
        #[test]
        fn mean_within_min_max(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let s = Summary::of(&values);
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(s.mean >= min - 1e-6 && s.mean <= max + 1e-6);
            prop_assert!(s.std_dev >= 0.0);
        }

        #[test]
        fn constant_sample_has_zero_spread(v in -1e3f64..1e3, n in 2usize..20) {
            let s = Summary::of(&vec![v; n]);
            prop_assert!(s.std_dev < 1e-9);
            prop_assert!((s.mean - v).abs() < 1e-9);
        }
    }
}
