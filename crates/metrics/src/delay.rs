//! Per-sender MAC-delay accounting.
//!
//! The paper defines selfish misbehavior as seeking "higher throughput
//! or *lower delay*" (§3.1). This module measures the second incentive:
//! the enqueue-to-ACK delay of every acknowledged packet, per sender, so
//! experiments can show a backoff cheater also steals latency — and that
//! the correction scheme takes it back.

use std::collections::BTreeMap;

use airguard_sim::{NodeId, SimDuration};
use serde::{Deserialize, Serialize};

/// Accumulated delay statistics for one sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayStats {
    /// Acknowledged packets.
    pub packets: u64,
    /// Sum of delays (for the mean).
    pub total: SimDuration,
    /// Smallest observed delay.
    pub min: SimDuration,
    /// Largest observed delay.
    pub max: SimDuration,
}

impl DelayStats {
    fn new(first: SimDuration) -> Self {
        DelayStats {
            packets: 1,
            total: first,
            min: first,
            max: first,
        }
    }

    fn add(&mut self, delay: SimDuration) {
        self.packets += 1;
        self.total += delay;
        self.min = self.min.min(delay);
        self.max = self.max.max(delay);
    }

    fn combine(&mut self, other: &DelayStats) {
        self.packets += other.packets;
        self.total += other.total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean MAC delay in milliseconds.
    #[must_use]
    pub fn mean_ms(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total.as_secs_f64() * 1000.0 / self.packets as f64
        }
    }
}

/// Per-sender delay accounting.
///
/// ```
/// use airguard_metrics::delay::DelayAccount;
/// use airguard_sim::{NodeId, SimDuration};
///
/// let mut acc = DelayAccount::new();
/// acc.record(NodeId::new(1), SimDuration::from_millis(4));
/// acc.record(NodeId::new(1), SimDuration::from_millis(6));
/// assert_eq!(acc.sender(NodeId::new(1)).unwrap().mean_ms(), 5.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelayAccount {
    senders: BTreeMap<NodeId, DelayStats>,
}

impl DelayAccount {
    /// Creates an empty account.
    #[must_use]
    pub fn new() -> Self {
        DelayAccount::default()
    }

    /// Records one acknowledged packet's MAC delay.
    pub fn record(&mut self, sender: NodeId, delay: SimDuration) {
        self.senders
            .entry(sender)
            .and_modify(|s| s.add(delay))
            .or_insert_with(|| DelayStats::new(delay));
    }

    /// Statistics for one sender, if any packets were acknowledged.
    #[must_use]
    pub fn sender(&self, sender: NodeId) -> Option<DelayStats> {
        self.senders.get(&sender).copied()
    }

    /// Folds `other` into `self`, combining per-sender statistics.
    /// Senders partition across shards, but the combine is correct even
    /// when a sender appears on both sides.
    pub fn merge(&mut self, other: &DelayAccount) {
        for (&sender, stats) in &other.senders {
            self.senders
                .entry(sender)
                .and_modify(|s| s.combine(stats))
                .or_insert(*stats);
        }
    }

    /// Mean delay (ms) over a set of senders; senders without data are
    /// skipped. Returns 0 when none of them have data.
    #[must_use]
    pub fn mean_ms_over(&self, senders: &[NodeId]) -> f64 {
        let stats: Vec<DelayStats> = senders.iter().filter_map(|&s| self.sender(s)).collect();
        if stats.is_empty() {
            return 0.0;
        }
        stats.iter().map(DelayStats::mean_ms).sum::<f64>() / stats.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn stats_track_min_mean_max() {
        let mut acc = DelayAccount::new();
        for v in [5, 1, 9] {
            acc.record(n(1), ms(v));
        }
        let s = acc.sender(n(1)).unwrap();
        assert_eq!(s.packets, 3);
        assert_eq!(s.min, ms(1));
        assert_eq!(s.max, ms(9));
        assert_eq!(s.mean_ms(), 5.0);
    }

    #[test]
    fn unknown_sender_is_none() {
        let acc = DelayAccount::new();
        assert!(acc.sender(n(5)).is_none());
        assert_eq!(acc.mean_ms_over(&[n(5)]), 0.0);
    }

    #[test]
    fn mean_over_population() {
        let mut acc = DelayAccount::new();
        acc.record(n(1), ms(2));
        acc.record(n(2), ms(4));
        assert_eq!(acc.mean_ms_over(&[n(1), n(2)]), 3.0);
        assert_eq!(
            acc.mean_ms_over(&[n(1), n(2), n(9)]),
            3.0,
            "missing skipped"
        );
    }
}
