//! Diagnosis-accuracy accounting.
//!
//! Every delivered packet is classified by the receiver's diagnosis
//! scheme ("from a misbehaving sender" or not). Crossing that with the
//! ground truth — which senders actually misbehave — yields the paper's
//! two accuracy metrics:
//!
//! * **correct diagnosis %** — flagged packets over all packets from
//!   *misbehaving* senders;
//! * **misdiagnosis %** — flagged packets over all packets from
//!   *well-behaved* senders.

use std::collections::{BTreeMap, BTreeSet};

use airguard_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Per-sender classification counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SenderTally {
    /// Packets delivered from this sender.
    pub packets: u64,
    /// Packets classified as misbehaving.
    pub flagged: u64,
}

/// Accumulates per-packet verdicts against ground truth.
///
/// ```
/// use airguard_metrics::DiagnosisTally;
/// use airguard_sim::NodeId;
///
/// let cheat = NodeId::new(3);
/// let honest = NodeId::new(4);
/// let mut tally = DiagnosisTally::new([cheat]);
/// tally.record(cheat, true);
/// tally.record(cheat, false);
/// tally.record(honest, false);
/// assert_eq!(tally.correct_diagnosis_percent(), 50.0);
/// assert_eq!(tally.misdiagnosis_percent(), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiagnosisTally {
    misbehaving: BTreeSet<NodeId>,
    senders: BTreeMap<NodeId, SenderTally>,
}

impl DiagnosisTally {
    /// Creates a tally with the given ground-truth set of misbehaving
    /// senders.
    #[must_use]
    pub fn new(misbehaving: impl IntoIterator<Item = NodeId>) -> Self {
        DiagnosisTally {
            misbehaving: misbehaving.into_iter().collect(),
            senders: BTreeMap::new(),
        }
    }

    /// Whether `node` is in the ground-truth misbehaving set.
    #[must_use]
    pub fn is_misbehaving(&self, node: NodeId) -> bool {
        self.misbehaving.contains(&node)
    }

    /// Records the classification of one delivered packet.
    pub fn record(&mut self, src: NodeId, flagged: bool) {
        let tally = self.senders.entry(src).or_default();
        tally.packets += 1;
        if flagged {
            tally.flagged += 1;
        }
    }

    /// Counts for one sender.
    #[must_use]
    pub fn sender(&self, src: NodeId) -> SenderTally {
        self.senders.get(&src).copied().unwrap_or_default()
    }

    fn percent_over(&self, misbehaving: bool) -> f64 {
        let (mut packets, mut flagged) = (0u64, 0u64);
        for (&node, tally) in &self.senders {
            if self.misbehaving.contains(&node) == misbehaving {
                packets += tally.packets;
                flagged += tally.flagged;
            }
        }
        if packets == 0 {
            0.0
        } else {
            100.0 * flagged as f64 / packets as f64
        }
    }

    /// Percentage of packets from misbehaving senders that were flagged.
    #[must_use]
    pub fn correct_diagnosis_percent(&self) -> f64 {
        self.percent_over(true)
    }

    /// Percentage of packets from well-behaved senders that were flagged.
    #[must_use]
    pub fn misdiagnosis_percent(&self) -> f64 {
        self.percent_over(false)
    }

    /// Total packets recorded.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.senders.values().map(|t| t.packets).sum()
    }

    /// Folds `other` into `self`: ground-truth sets union, per-sender
    /// counts sum. Used to reassemble one tally from per-shard tallies.
    pub fn merge(&mut self, other: &DiagnosisTally) {
        self.misbehaving.extend(other.misbehaving.iter().copied());
        for (&node, tally) in &other.senders {
            let mine = self.senders.entry(node).or_default();
            mine.packets += tally.packets;
            mine.flagged += tally.flagged;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn separates_populations() {
        let mut t = DiagnosisTally::new([n(3)]);
        // Misbehaving sender: 3 of 4 packets flagged.
        for flagged in [true, true, true, false] {
            t.record(n(3), flagged);
        }
        // Honest sender: 1 of 5 flagged.
        for flagged in [false, false, true, false, false] {
            t.record(n(4), flagged);
        }
        assert_eq!(t.correct_diagnosis_percent(), 75.0);
        assert_eq!(t.misdiagnosis_percent(), 20.0);
        assert_eq!(t.total_packets(), 9);
    }

    #[test]
    fn empty_populations_report_zero() {
        let t = DiagnosisTally::new([n(3)]);
        assert_eq!(t.correct_diagnosis_percent(), 0.0);
        assert_eq!(t.misdiagnosis_percent(), 0.0);
    }

    #[test]
    fn multiple_misbehaving_senders_pool() {
        let mut t = DiagnosisTally::new([n(1), n(2)]);
        t.record(n(1), true);
        t.record(n(2), false);
        assert_eq!(t.correct_diagnosis_percent(), 50.0);
        assert!(t.is_misbehaving(n(1)));
        assert!(!t.is_misbehaving(n(9)));
    }

    #[test]
    fn sender_lookup_defaults_to_zero() {
        let t = DiagnosisTally::new([]);
        assert_eq!(t.sender(n(7)), SenderTally::default());
    }
}
