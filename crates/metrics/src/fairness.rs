//! Jain's fairness index.

/// Jain's fairness index over per-flow throughputs (§5, citing Jain et
/// al.):
///
/// ```text
/// FI = (Σ T_f)² / (N · Σ T_f²)
/// ```
///
/// The index is 1 when all flows are equal, and `1/N` when one flow takes
/// everything. An empty slice, or one where every flow is zero, yields 0
/// (no traffic means no fairness to speak of).
///
/// ```
/// use airguard_metrics::jain_index;
///
/// assert_eq!(jain_index(&[100.0, 100.0, 100.0]), 1.0);
/// assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
/// ```
#[must_use]
pub fn jain_index(throughputs: &[f64]) -> f64 {
    let n = throughputs.len() as f64;
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|t| t * t).sum();
    // Exact zero iff the slice is empty or every throughput is exactly
    // zero; a tolerance here would misclassify tiny-but-real throughput.
    // lint:allow(float-eq) — sum of squares is exactly 0.0 iff all inputs are ±0.0
    if throughputs.is_empty() || sum_sq == 0.0 {
        0.0
    } else {
        (sum * sum) / (n * sum_sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_flows_are_perfectly_fair() {
        assert!((jain_index(&[5.0; 8]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.001; 3]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monopolized_channel_scores_one_over_n() {
        let mut t = vec![0.0; 10];
        t[3] = 42.0;
        assert!((jain_index(&t) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_score_zero() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn mild_unfairness_scores_below_one() {
        let fi = jain_index(&[100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 100.0, 50.0]);
        assert!(fi > 0.9 && fi < 1.0, "got {fi}");
    }

    proptest! {
        #[test]
        fn index_is_bounded(t in proptest::collection::vec(0.0f64..1e6, 1..64)) {
            let fi = jain_index(&t);
            let n = t.len() as f64;
            prop_assert!(fi >= 0.0);
            prop_assert!(fi <= 1.0 + 1e-9);
            if t.iter().any(|&x| x > 0.0) {
                prop_assert!(fi >= 1.0 / n - 1e-9);
            }
        }

        #[test]
        fn index_is_scale_invariant(
            t in proptest::collection::vec(0.1f64..1e3, 2..32),
            k in 0.1f64..100.0,
        ) {
            let scaled: Vec<f64> = t.iter().map(|x| x * k).collect();
            prop_assert!((jain_index(&t) - jain_index(&scaled)).abs() < 1e-9);
        }
    }
}
