//! Measurement machinery for the paper's evaluation metrics.
//!
//! The paper evaluates four quantities (§5):
//!
//! 1. **Correct diagnosis** — % of packets from misbehaving senders that
//!    the receiver classifies as misbehaving ([`diagnosis`]);
//! 2. **Misdiagnosis** — % of packets from well-behaved senders wrongly
//!    classified ([`diagnosis`]);
//! 3. **Per-node throughput** — average of well-behaved senders ("AVG")
//!    and of misbehaving senders ("MSB") ([`throughput`]);
//! 4. **Jain's fairness index** over flow throughputs ([`fairness`]).
//!
//! Fig. 8 additionally needs diagnosis accuracy *over time*, provided by
//! [`series::TimeBinned`]. Every figure averages 30 seeded runs;
//! [`aggregate`] supplies the mean/std/CI machinery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod delay;
pub mod diagnosis;
pub mod fairness;
pub mod series;
pub mod throughput;

pub use aggregate::Summary;
pub use delay::DelayAccount;
pub use diagnosis::DiagnosisTally;
pub use fairness::jain_index;
pub use series::{Bin, TimeBinned};
pub use throughput::ThroughputAccount;
