//! Time-binned classification series (Fig. 8).
//!
//! Fig. 8 plots the correct-diagnosis percentage per one-second interval,
//! showing how quickly the scheme starts flagging after time zero.
//! [`TimeBinned`] buckets per-packet verdicts by arrival time.

use airguard_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One bin's counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bin {
    /// Packets recorded in this bin.
    pub packets: u64,
    /// Flagged packets in this bin.
    pub flagged: u64,
}

impl Bin {
    /// Flagged percentage for this bin (0 when empty).
    #[must_use]
    pub fn percent(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            100.0 * self.flagged as f64 / self.packets as f64
        }
    }
}

/// Fixed-width time bins of classification outcomes.
///
/// ```
/// use airguard_metrics::TimeBinned;
/// use airguard_sim::{SimDuration, SimTime};
///
/// let mut s = TimeBinned::new(SimDuration::from_secs(1), SimDuration::from_secs(3));
/// s.record(SimTime::from_micros(1_500_000), true);
/// s.record(SimTime::from_micros(1_700_000), false);
/// assert_eq!(s.bins()[1].percent(), 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBinned {
    width: SimDuration,
    bins: Vec<Bin>,
}

impl TimeBinned {
    /// Creates bins of `width` covering `[0, horizon)`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or `horizon < width`.
    #[must_use]
    pub fn new(width: SimDuration, horizon: SimDuration) -> Self {
        assert!(!width.is_zero(), "bin width must be positive");
        let count = horizon / width;
        assert!(count > 0, "horizon must cover at least one bin");
        TimeBinned {
            width,
            bins: vec![Bin::default(); count as usize],
        }
    }

    /// Records a verdict at time `at`. Events at or beyond the horizon are
    /// folded into the last bin.
    pub fn record(&mut self, at: SimTime, flagged: bool) {
        let idx = (at.saturating_since(SimTime::ZERO) / self.width) as usize;
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx].packets += 1;
        if flagged {
            self.bins[idx].flagged += 1;
        }
    }

    /// The bins, in time order.
    #[must_use]
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Bin width.
    #[must_use]
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Merges another series with identical geometry into this one
    /// (used to pool the 30 runs of Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if the two series have different width or bin count.
    pub fn merge(&mut self, other: &TimeBinned) {
        assert_eq!(self.width, other.width, "mismatched bin widths");
        assert_eq!(self.bins.len(), other.bins.len(), "mismatched bin counts");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            a.packets += b.packets;
            a.flagged += b.flagged;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn events_land_in_their_bins() {
        let mut s = TimeBinned::new(secs(1), secs(5));
        s.record(SimTime::from_micros(0), true);
        s.record(SimTime::from_micros(999_999), false);
        s.record(SimTime::from_secs(3), true);
        assert_eq!(s.bins()[0].packets, 2);
        assert_eq!(s.bins()[0].flagged, 1);
        assert_eq!(s.bins()[3].packets, 1);
        assert_eq!(s.bins()[1].packets, 0);
    }

    #[test]
    fn overflow_folds_into_last_bin() {
        let mut s = TimeBinned::new(secs(1), secs(2));
        s.record(SimTime::from_secs(50), true);
        assert_eq!(s.bins()[1].packets, 1);
    }

    #[test]
    fn percent_handles_empty_bins() {
        let s = TimeBinned::new(secs(1), secs(2));
        assert_eq!(s.bins()[0].percent(), 0.0);
    }

    #[test]
    fn merge_pools_runs() {
        let mut a = TimeBinned::new(secs(1), secs(2));
        let mut b = TimeBinned::new(secs(1), secs(2));
        a.record(SimTime::from_micros(10), true);
        b.record(SimTime::from_micros(20), false);
        b.record(SimTime::from_micros(30), true);
        a.merge(&b);
        assert_eq!(a.bins()[0].packets, 3);
        assert_eq!(a.bins()[0].flagged, 2);
    }

    #[test]
    #[should_panic(expected = "mismatched bin widths")]
    fn merge_rejects_mismatched_geometry() {
        let mut a = TimeBinned::new(secs(1), secs(2));
        let b = TimeBinned::new(secs(2), secs(4));
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = TimeBinned::new(SimDuration::ZERO, secs(1));
    }
}
