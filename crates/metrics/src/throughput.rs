//! Per-flow delivery accounting.

use std::collections::BTreeMap;

use airguard_sim::{NodeId, SimDuration};
use serde::{Deserialize, Serialize};

/// Delivery statistics for one sender→receiver flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Payload bytes delivered (duplicates excluded).
    pub bytes: u64,
    /// Packets delivered.
    pub packets: u64,
}

/// Accumulates deliveries per flow and answers the paper's throughput
/// questions.
///
/// ```
/// use airguard_metrics::ThroughputAccount;
/// use airguard_sim::{NodeId, SimDuration};
///
/// let mut acc = ThroughputAccount::new();
/// let (s, r) = (NodeId::new(3), NodeId::new(0));
/// acc.record(s, r, 512);
/// acc.record(s, r, 512);
/// // 1024 bytes over 1 s = 8192 bit/s.
/// let bps = acc.sender_throughput_bps(s, SimDuration::from_secs(1));
/// assert_eq!(bps, 8192.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputAccount {
    flows: BTreeMap<(NodeId, NodeId), FlowStats>,
}

impl ThroughputAccount {
    /// Creates an empty account.
    #[must_use]
    pub fn new() -> Self {
        ThroughputAccount::default()
    }

    /// Records the delivery of `bytes` payload bytes from `src` to `dst`.
    pub fn record(&mut self, src: NodeId, dst: NodeId, bytes: u32) {
        let stats = self.flows.entry((src, dst)).or_default();
        stats.bytes += u64::from(bytes);
        stats.packets += 1;
    }

    /// Statistics for one flow, if any packets were delivered on it.
    #[must_use]
    pub fn flow(&self, src: NodeId, dst: NodeId) -> Option<FlowStats> {
        self.flows.get(&(src, dst)).copied()
    }

    /// All flows, ordered by (src, dst).
    pub fn flows(&self) -> impl Iterator<Item = ((NodeId, NodeId), FlowStats)> + '_ {
        self.flows.iter().map(|(&k, &v)| (k, v))
    }

    /// Total payload bytes delivered from `src` across all destinations.
    #[must_use]
    pub fn sender_bytes(&self, src: NodeId) -> u64 {
        self.flows
            .iter()
            .filter(|((s, _), _)| *s == src)
            .map(|(_, st)| st.bytes)
            .sum()
    }

    /// Throughput of `src` in bits per second over `elapsed`.
    ///
    /// # Panics
    ///
    /// Panics if `elapsed` is zero.
    #[must_use]
    pub fn sender_throughput_bps(&self, src: NodeId, elapsed: SimDuration) -> f64 {
        assert!(!elapsed.is_zero(), "throughput over zero elapsed time");
        self.sender_bytes(src) as f64 * 8.0 / elapsed.as_secs_f64()
    }

    /// Per-flow throughputs in bit/s, ordered by flow key — the input to
    /// Jain's fairness index. Flows listed in `expected` but absent from
    /// the account contribute 0 (a starved flow must drag fairness down).
    #[must_use]
    pub fn flow_throughputs_bps(
        &self,
        expected: &[(NodeId, NodeId)],
        elapsed: SimDuration,
    ) -> Vec<f64> {
        assert!(!elapsed.is_zero(), "throughput over zero elapsed time");
        expected
            .iter()
            .map(|&(s, d)| {
                self.flow(s, d)
                    .map_or(0.0, |st| st.bytes as f64 * 8.0 / elapsed.as_secs_f64())
            })
            .collect()
    }

    /// Mean per-sender throughput over a set of senders, in bit/s.
    /// Senders that delivered nothing count as zero. Returns 0 for an
    /// empty set.
    #[must_use]
    pub fn mean_sender_throughput_bps(&self, senders: &[NodeId], elapsed: SimDuration) -> f64 {
        if senders.is_empty() {
            return 0.0;
        }
        senders
            .iter()
            .map(|&s| self.sender_throughput_bps(s, elapsed))
            .sum::<f64>()
            / senders.len() as f64
    }

    /// Total delivered payload across all flows, in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.flows.values().map(|s| s.bytes).sum()
    }

    /// Folds `other` into `self`, summing per-flow bytes and packets.
    /// Shard merging relies on flows partitioning across components, but
    /// the sum is correct even if a flow appears on both sides.
    pub fn merge(&mut self, other: &ThroughputAccount) {
        for (&key, stats) in &other.flows {
            let mine = self.flows.entry(key).or_default();
            mine.bytes += stats.bytes;
            mine.packets += stats.packets;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn records_accumulate_per_flow() {
        let mut acc = ThroughputAccount::new();
        acc.record(n(1), n(0), 512);
        acc.record(n(1), n(0), 512);
        acc.record(n(2), n(0), 256);
        assert_eq!(
            acc.flow(n(1), n(0)),
            Some(FlowStats {
                bytes: 1024,
                packets: 2
            })
        );
        assert_eq!(acc.flow(n(2), n(0)).unwrap().packets, 1);
        assert_eq!(acc.flow(n(3), n(0)), None);
        assert_eq!(acc.total_bytes(), 1280);
    }

    #[test]
    fn sender_totals_span_destinations() {
        let mut acc = ThroughputAccount::new();
        acc.record(n(1), n(0), 100);
        acc.record(n(1), n(2), 50);
        assert_eq!(acc.sender_bytes(n(1)), 150);
    }

    #[test]
    fn throughput_scales_with_time() {
        let mut acc = ThroughputAccount::new();
        acc.record(n(1), n(0), 1000);
        assert_eq!(
            acc.sender_throughput_bps(n(1), SimDuration::from_secs(2)),
            4000.0
        );
    }

    #[test]
    fn starved_flows_report_zero() {
        let acc = ThroughputAccount::new();
        let t = acc.flow_throughputs_bps(&[(n(1), n(0)), (n(2), n(0))], SimDuration::from_secs(1));
        assert_eq!(t, vec![0.0, 0.0]);
    }

    #[test]
    fn mean_sender_throughput_averages() {
        let mut acc = ThroughputAccount::new();
        acc.record(n(1), n(0), 1000);
        acc.record(n(2), n(0), 3000);
        let mean = acc.mean_sender_throughput_bps(&[n(1), n(2)], SimDuration::from_secs(1));
        assert_eq!(mean, 16_000.0);
        assert_eq!(
            acc.mean_sender_throughput_bps(&[], SimDuration::from_secs(1)),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "zero elapsed")]
    fn zero_elapsed_panics() {
        let acc = ThroughputAccount::new();
        let _ = acc.sender_throughput_bps(n(1), SimDuration::ZERO);
    }
}
