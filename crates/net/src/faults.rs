//! Runtime state of injected faults inside the simulation runner.
//!
//! `airguard-fault` describes *what* to inject ([`FaultPlan`] is plain
//! data); this module holds the mutable machinery the runner needs while
//! a faulted run executes: the control-frame corruption channel and the
//! per-node crash bookkeeping. Burst loss lives in the medium
//! (`airguard_phy::Medium::set_burst_loss`) and clock drift in the MAC
//! (`airguard_mac::ClockDriftState`); this file covers the rest.
//!
//! Everything here is on the injected-fault path, so the `fault-path-
//! unwrap` lint rule bans `unwrap`/`expect` in this file: a fault
//! injector that panics turns a simulated failure into a real one.

use airguard_fault::{Corruption, FaultPlan};
use airguard_mac::{Frame, Slots};
use airguard_obs::ObsEvent;
use airguard_sim::{MasterSeed, RngStream, SimDuration, SimTime};
use rand::RngExt;

/// What a corruption injector did to one listener's copy of a frame.
pub(crate) enum Corrupted {
    /// The CTS/ACK-carried assigned backoff was altered.
    Backoff {
        /// Value the receiver actually assigned.
        original_slots: u32,
        /// Value the listener will decode.
        corrupted_slots: u32,
    },
    /// The RTS/DATA-carried attempt number was altered.
    Attempt {
        /// Attempt number the sender actually serialized.
        original: u8,
        /// Attempt number the listener will decode.
        corrupted: u8,
    },
}

impl Corrupted {
    /// The telemetry event describing this corruption at `listener`.
    pub(crate) fn event(&self, listener: u32) -> ObsEvent {
        match *self {
            Corrupted::Backoff {
                original_slots,
                corrupted_slots,
            } => ObsEvent::FaultCorruptedBackoff {
                listener,
                original_slots,
                corrupted_slots,
            },
            Corrupted::Attempt {
                original,
                corrupted,
            } => ObsEvent::FaultCorruptedAttempt {
                listener,
                original,
                corrupted,
            },
        }
    }
}

/// Mutable fault state owned by one [`crate::Simulation`].
pub(crate) struct FaultRuntime {
    corruption: Option<Corruption>,
    /// Dedicated stream for corruption decisions, consumed in listener
    /// order per transmission — fault randomness never perturbs the
    /// scenario's own streams.
    corrupt_rng: RngStream,
    /// Per-node crash depth. A depth above zero means the node is down;
    /// overlapping crash windows nest instead of double-resetting.
    down: Vec<u8>,
    /// When the node's current outage began (depth edge 0 → 1).
    down_since: Vec<Option<SimTime>>,
    /// Latched `preserve_monitor` flag of the outage (last crash wins).
    preserve: Vec<bool>,
}

impl FaultRuntime {
    /// Builds the runtime for `plan` over a network of `node_count`
    /// nodes. A `None` plan yields inert state: no RNG draws, no downed
    /// nodes, every hook a cheap no-op.
    pub(crate) fn new(plan: Option<&FaultPlan>, node_count: usize, seed: MasterSeed) -> Self {
        FaultRuntime {
            corruption: plan.and_then(|p| p.corruption),
            corrupt_rng: seed.stream("fault.corrupt", 0),
            down: vec![0; node_count],
            down_since: vec![None; node_count],
            preserve: vec![false; node_count],
        }
    }

    /// Whether `node` is currently crashed (inputs must be gated).
    pub(crate) fn is_down(&self, node: usize) -> bool {
        self.down.get(node).is_some_and(|&d| d > 0)
    }

    /// Records a crash of `node` at `now`. Returns `true` on the
    /// up → down edge (the caller emits telemetry and cancels timers
    /// only then); nested crash windows just deepen the outage.
    pub(crate) fn on_crash(&mut self, node: usize, preserve_monitor: bool, now: SimTime) -> bool {
        let Some(depth) = self.down.get_mut(node) else {
            return false;
        };
        *depth = depth.saturating_add(1);
        self.preserve[node] = preserve_monitor;
        if *depth == 1 {
            self.down_since[node] = Some(now);
            true
        } else {
            false
        }
    }

    /// Records the end of one crash window of `node` at `now`. Returns
    /// `Some((downtime, preserve_monitor))` on the down → up edge, when
    /// the caller must actually restart the node.
    pub(crate) fn on_restart(&mut self, node: usize, now: SimTime) -> Option<(SimDuration, bool)> {
        let depth = self.down.get_mut(node)?;
        if *depth == 0 {
            return None;
        }
        *depth -= 1;
        if *depth > 0 {
            return None;
        }
        let downtime = match self.down_since[node].take() {
            Some(since) => now.saturating_since(since),
            None => SimDuration::ZERO,
        };
        Some((downtime, self.preserve[node]))
    }

    /// Rolls the corruption dice for one listener's copy of `frame`.
    ///
    /// Returns the mutated frame plus a description of the change, or
    /// `None` when no corruption applies (no injector configured, the
    /// frame carries no corruptible field, the dice said no, or the
    /// delta saturated back to the original value). Exactly the
    /// applicable draws are consumed, in a fixed order, so same-seed
    /// runs corrupt identically.
    pub(crate) fn corrupt(&mut self, frame: &Frame) -> Option<(Frame, Corrupted)> {
        let cfg = self.corruption?;
        if let Some(assigned) = frame.assigned_backoff {
            if cfg.backoff_prob > 0.0 && self.corrupt_rng.random_range(0.0..1.0) < cfg.backoff_prob
            {
                let delta = self
                    .corrupt_rng
                    .random_range(1..=u32::from(cfg.backoff_max_delta));
                let shrink = self.corrupt_rng.random_range(0..2u32) == 0;
                let original_slots = assigned.count();
                let corrupted_slots = if shrink {
                    original_slots.saturating_sub(delta)
                } else {
                    original_slots.saturating_add(delta)
                };
                if corrupted_slots == original_slots {
                    return None;
                }
                let mut mutated = frame.clone();
                mutated.assigned_backoff = Some(Slots::new(corrupted_slots));
                return Some((
                    mutated,
                    Corrupted::Backoff {
                        original_slots,
                        corrupted_slots,
                    },
                ));
            }
        }
        if frame.carries_attempt()
            && cfg.attempt_prob > 0.0
            && self.corrupt_rng.random_range(0.0..1.0) < cfg.attempt_prob
        {
            let delta = self.corrupt_rng.random_range(1..=cfg.attempt_max_delta);
            let shrink = self.corrupt_rng.random_range(0..2u32) == 0;
            let original = frame.attempt;
            // A frame that carries an attempt always carries one ≥ 1;
            // keep the corrupted value in that invariant's range.
            let corrupted = if shrink {
                original.saturating_sub(delta).max(1)
            } else {
                original.saturating_add(delta)
            };
            if corrupted == original {
                return None;
            }
            let mut mutated = frame.clone();
            mutated.attempt = corrupted;
            return Some((
                mutated,
                Corrupted::Attempt {
                    original,
                    corrupted,
                },
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use airguard_mac::frames::FrameKind;
    use airguard_sim::NodeId;

    fn seed() -> MasterSeed {
        MasterSeed::new(11)
    }

    fn cts_with_backoff(slots: u32) -> Frame {
        Frame {
            kind: FrameKind::Cts,
            src: NodeId::new(0),
            dst: NodeId::new(1),
            duration_field: SimDuration::ZERO,
            attempt: 0,
            assigned_backoff: Some(Slots::new(slots)),
            payload_bytes: 0,
            seq: 0,
        }
    }

    fn rts(attempt: u8) -> Frame {
        Frame {
            kind: FrameKind::Rts,
            src: NodeId::new(1),
            dst: NodeId::new(0),
            duration_field: SimDuration::ZERO,
            attempt,
            assigned_backoff: None,
            payload_bytes: 0,
            seq: 0,
        }
    }

    fn always_corrupt() -> FaultPlan {
        FaultPlan {
            corruption: Some(Corruption {
                backoff_prob: 1.0,
                backoff_max_delta: 4,
                attempt_prob: 1.0,
                attempt_max_delta: 2,
            }),
            ..FaultPlan::default()
        }
    }

    #[test]
    fn no_plan_is_inert() {
        let mut rt = FaultRuntime::new(None, 3, seed());
        assert!(rt.corrupt(&cts_with_backoff(10)).is_none());
        assert!(!rt.is_down(0));
        assert!(rt.on_restart(0, SimTime::ZERO).is_none());
    }

    #[test]
    fn crash_depth_nests_and_reports_edges() {
        let mut rt = FaultRuntime::new(None, 2, seed());
        let t0 = SimTime::from_micros(100);
        assert!(rt.on_crash(1, true, t0), "first crash is the down edge");
        assert!(!rt.on_crash(1, false, SimTime::from_micros(200)));
        assert!(rt.is_down(1));
        assert!(rt.on_restart(1, SimTime::from_micros(300)).is_none());
        let (downtime, preserve) = rt
            .on_restart(1, SimTime::from_micros(500))
            .unwrap_or((SimDuration::ZERO, true)); // lint:allow(fault-path-unwrap) — n/a: unwrap_or is total
        assert_eq!(downtime, SimDuration::from_micros(400));
        assert!(!preserve, "last crash's preserve flag wins");
        assert!(!rt.is_down(1));
    }

    #[test]
    fn certain_corruption_always_changes_the_backoff() {
        let plan = always_corrupt();
        let mut rt = FaultRuntime::new(Some(&plan), 2, seed());
        for slots in [0u32, 3, 17, 31] {
            if let Some((
                mutated,
                Corrupted::Backoff {
                    original_slots,
                    corrupted_slots,
                },
            )) = rt.corrupt(&cts_with_backoff(slots))
            {
                assert_eq!(original_slots, slots);
                assert_ne!(corrupted_slots, slots);
                assert_eq!(mutated.assigned_backoff, Some(Slots::new(corrupted_slots)));
            } else {
                // A shrink draw on slots=0 saturates to 0 and is
                // reported as no corruption — also acceptable.
                assert_eq!(slots, 0, "non-zero backoff must corrupt at prob 1");
            }
        }
    }

    #[test]
    fn attempt_corruption_stays_at_least_one() {
        let plan = always_corrupt();
        let mut rt = FaultRuntime::new(Some(&plan), 2, seed());
        for _ in 0..64 {
            if let Some((mutated, Corrupted::Attempt { corrupted, .. })) = rt.corrupt(&rts(1)) {
                assert!(corrupted >= 1);
                assert_eq!(mutated.attempt, corrupted);
            }
        }
    }

    #[test]
    fn corruption_is_reproducible_per_seed() {
        let plan = always_corrupt();
        let outcomes = |s: u64| {
            let mut rt = FaultRuntime::new(Some(&plan), 2, MasterSeed::new(s));
            (0..32)
                .map(|i| {
                    rt.corrupt(&cts_with_backoff(10 + i))
                        .map(|(f, _)| f.assigned_backoff)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(outcomes(5), outcomes(5));
        assert_ne!(outcomes(5), outcomes(6));
    }
}
