//! Scenario substrate: nodes, topologies, traffic, and the simulation
//! runner.
//!
//! This crate wires the pieces together: it owns the event loop that
//! connects every node's [`airguard_mac::Mac`] state machine to the
//! shared [`airguard_phy::Medium`], generates the paper's CBR traffic,
//! builds its topologies (the Fig. 3 sender circle with optional
//! interferer flows, and the 40-node random placements of Fig. 9), and
//! collects the metrics every figure needs.
//!
//! The one-stop entry point is [`ScenarioConfig`]:
//!
//! ```
//! use airguard_net::{Protocol, ScenarioConfig, StandardScenario};
//!
//! let report = ScenarioConfig::new(StandardScenario::ZeroFlow)
//!     .protocol(Protocol::Correct)
//!     .misbehavior_percent(80.0)
//!     .sim_time_secs(2)
//!     .seed(1)
//!     .run();
//! assert!(report.throughput.total_bytes() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
pub mod node_policy;
pub mod runner;
pub mod scenario;
pub mod shard;
pub mod topology;
pub mod traffic;

pub use airguard_fault::{BurstLoss, ClockDrift, Corruption, CrashEvent, FaultError, FaultPlan};
pub use node_policy::NodePolicy;
pub use runner::{RunBudget, RunReport, Simulation, SimulationConfig};
pub use scenario::{Protocol, ScenarioConfig, StandardScenario};
pub use topology::{Flow, Topology};
