//! The concrete per-node policy: either baseline 802.11 or the paper's
//! modified protocol, each optionally wrapped in a selfish strategy.
//!
//! An enum (rather than `Box<dyn BackoffPolicy>`) keeps end-of-run
//! introspection simple: the runner can pattern-match to pull the
//! [`MonitorReport`] out of a `Correct` node without downcasting.

use airguard_core::monitor::MonitorReport;
use airguard_core::{CorrectConfig, CorrectPolicy, DetectorConfig, PairStats};
use airguard_mac::{
    BackoffObservation, BackoffPolicy, Dcf80211, MacTiming, Misbehavior, PacketVerdict, Selfish,
    Slots,
};
use airguard_sim::{NodeId, RngStream};

/// The policy stack of one simulated node.
///
/// The variants differ greatly in size (the modified protocol carries
/// per-sender monitor state), but nodes are created once per run and
/// never moved, so boxing the large variant would only add indirection
/// to the per-frame hot path.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum NodePolicy {
    /// Plain IEEE 802.11 DCF (optionally selfish).
    Dot11(Misbehavior<Dcf80211>),
    /// The paper's receiver-assigned-backoff protocol (optionally
    /// selfish as a sender; always honest as a receiver).
    Correct(Misbehavior<CorrectPolicy>),
}

impl NodePolicy {
    /// Builds a baseline-protocol node with the given strategy.
    #[must_use]
    pub fn dot11(strategy: Selfish) -> Self {
        NodePolicy::Dot11(Misbehavior::new(Dcf80211::new(), strategy))
    }

    /// Builds a modified-protocol node with the given strategy and the
    /// default (window) detector.
    #[must_use]
    pub fn correct(id: NodeId, cfg: CorrectConfig, strategy: Selfish) -> Self {
        NodePolicy::correct_with_detector(id, cfg, DetectorConfig::default(), strategy)
    }

    /// Builds a modified-protocol node whose monitor runs the given
    /// detector.
    #[must_use]
    pub fn correct_with_detector(
        id: NodeId,
        cfg: CorrectConfig,
        detector: DetectorConfig,
        strategy: Selfish,
    ) -> Self {
        NodePolicy::Correct(Misbehavior::new(
            CorrectPolicy::with_detector(id, cfg, detector),
            strategy,
        ))
    }

    /// The short name of the detector this node's monitor runs
    /// (`window`/`cusum`/`cw`), when it runs the modified protocol.
    #[must_use]
    pub fn detector_kind(&self) -> Option<&'static str> {
        match self {
            NodePolicy::Dot11(_) => None,
            NodePolicy::Correct(p) => Some(p.inner().detector().kind()),
        }
    }

    /// The monitor report, when this node runs the modified protocol.
    #[must_use]
    pub fn monitor_report(&self) -> Option<MonitorReport> {
        match self {
            NodePolicy::Dot11(_) => None,
            NodePolicy::Correct(p) => Some(p.inner().monitor_report()),
        }
    }

    /// Third-party observation report, when this node runs the modified
    /// protocol with the observer extension enabled.
    #[must_use]
    pub fn observer_report(&self) -> Option<Vec<PairStats>> {
        match self {
            NodePolicy::Dot11(_) => None,
            NodePolicy::Correct(p) => p.inner().observer_report(),
        }
    }

    /// Receiver-assignment violations this node detected via the `g`
    /// check (modified protocol with `verify_receiver` only).
    #[must_use]
    pub fn receiver_violations(&self) -> Option<u64> {
        match self {
            NodePolicy::Dot11(_) => None,
            NodePolicy::Correct(p) => Some(p.inner().receiver_violations()),
        }
    }

    /// The selfish strategy this node runs.
    #[must_use]
    pub fn strategy(&self) -> Selfish {
        match self {
            NodePolicy::Dot11(p) => p.strategy(),
            NodePolicy::Correct(p) => p.strategy(),
        }
    }

    /// Wipes policy state as an injected node crash would, keeping the
    /// strategy decoration intact. For modified-protocol nodes,
    /// `preserve_monitor` decides whether the receiver-side diagnosis
    /// tables survive the reboot (stable storage) or start cold.
    pub fn fault_reset(&mut self, preserve_monitor: bool) {
        match self {
            // The baseline policy is stateless; nothing to wipe.
            NodePolicy::Dot11(_) => {}
            NodePolicy::Correct(p) => p.inner_mut().crash_reset(preserve_monitor),
        }
    }
}

impl BackoffPolicy for NodePolicy {
    fn uses_protocol_extensions(&self) -> bool {
        match self {
            NodePolicy::Dot11(p) => p.uses_protocol_extensions(),
            NodePolicy::Correct(p) => p.uses_protocol_extensions(),
        }
    }

    fn fresh_backoff(&mut self, dst: NodeId, timing: &MacTiming, rng: &mut RngStream) -> Slots {
        match self {
            NodePolicy::Dot11(p) => p.fresh_backoff(dst, timing, rng),
            NodePolicy::Correct(p) => p.fresh_backoff(dst, timing, rng),
        }
    }

    fn retry_backoff(
        &mut self,
        dst: NodeId,
        attempt: u8,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Slots {
        match self {
            NodePolicy::Dot11(p) => p.retry_backoff(dst, attempt, timing, rng),
            NodePolicy::Correct(p) => p.retry_backoff(dst, attempt, timing, rng),
        }
    }

    fn observe_assignment(
        &mut self,
        from: NodeId,
        seq: u64,
        assigned: Option<Slots>,
        timing: &MacTiming,
    ) {
        match self {
            NodePolicy::Dot11(p) => p.observe_assignment(from, seq, assigned, timing),
            NodePolicy::Correct(p) => p.observe_assignment(from, seq, assigned, timing),
        }
    }

    fn observe_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        idle_reading: u64,
        timing: &MacTiming,
        rng: &mut RngStream,
    ) -> Option<BackoffObservation> {
        match self {
            NodePolicy::Dot11(p) => p.observe_rts(src, seq, attempt, idle_reading, timing, rng),
            NodePolicy::Correct(p) => p.observe_rts(src, seq, attempt, idle_reading, timing, rng),
        }
    }

    fn assignment_for(&mut self, dst: NodeId, timing: &MacTiming) -> Option<Slots> {
        match self {
            NodePolicy::Dot11(p) => p.assignment_for(dst, timing),
            NodePolicy::Correct(p) => p.assignment_for(dst, timing),
        }
    }

    fn observe_ack_sent(&mut self, dst: NodeId, idle_reading: u64) {
        match self {
            NodePolicy::Dot11(p) => p.observe_ack_sent(dst, idle_reading),
            NodePolicy::Correct(p) => p.observe_ack_sent(dst, idle_reading),
        }
    }

    fn observe_data(&mut self, src: NodeId) -> Option<PacketVerdict> {
        match self {
            NodePolicy::Dot11(p) => p.observe_data(src),
            NodePolicy::Correct(p) => p.observe_data(src),
        }
    }

    fn should_respond_rts(
        &mut self,
        src: NodeId,
        seq: u64,
        attempt: u8,
        rng: &mut RngStream,
    ) -> bool {
        match self {
            NodePolicy::Dot11(p) => p.should_respond_rts(src, seq, attempt, rng),
            NodePolicy::Correct(p) => p.should_respond_rts(src, seq, attempt, rng),
        }
    }

    fn report_attempt(&mut self, actual: u8) -> u8 {
        match self {
            NodePolicy::Dot11(p) => p.report_attempt(actual),
            NodePolicy::Correct(p) => p.report_attempt(actual),
        }
    }

    fn observe_overheard(
        &mut self,
        frame: &airguard_mac::frames::Frame,
        idle_reading: u64,
        timing: &MacTiming,
    ) {
        match self {
            NodePolicy::Dot11(p) => p.observe_overheard(frame, idle_reading, timing),
            NodePolicy::Correct(p) => p.observe_overheard(frame, idle_reading, timing),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_extension_flag_tracks_variant() {
        let d = NodePolicy::dot11(Selfish::None);
        let c = NodePolicy::correct(
            NodeId::new(1),
            CorrectConfig::paper_default(),
            Selfish::None,
        );
        assert!(!d.uses_protocol_extensions());
        assert!(c.uses_protocol_extensions());
    }

    #[test]
    fn monitor_report_only_for_correct_nodes() {
        let d = NodePolicy::dot11(Selfish::None);
        let c = NodePolicy::correct(
            NodeId::new(1),
            CorrectConfig::paper_default(),
            Selfish::None,
        );
        assert!(d.monitor_report().is_none());
        assert!(c.monitor_report().is_some());
    }

    #[test]
    fn strategy_is_preserved() {
        let p = NodePolicy::dot11(Selfish::BackoffScale { pm: 40.0 });
        assert_eq!(p.strategy(), Selfish::BackoffScale { pm: 40.0 });
    }
}
